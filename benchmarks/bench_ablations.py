"""Ablation benchmarks: adj(p) search, hash family, naive-sampling bias.

* The Section 6.2 ablation times the DFS-pruned adjacency search against
  the naive full-neighbourhood enumeration (compare the two benchmark
  rows per dimension).
* The hash-family ablation times a stream pass under splitmix64 vs the
  Theta(log m)-wise polynomial hash.
* The bias ablation quantifies the motivation experiment in extra_info.
"""

from __future__ import annotations

import random

import pytest

from repro.baselines.naive import NaiveReservoirSampler
from repro.core.infinite_window import RobustL0SamplerIW
from repro.datasets.near_duplicates import add_near_duplicates, power_law_counts
from repro.datasets.synthetic import random_points
from repro.geometry.adjacency import brute_force_adjacent_cells, collect_adjacent
from repro.geometry.grid import Grid
from repro.streams.point import StreamPoint


def _points(dim, n=100, seed=0):
    rng = random.Random(seed)
    return [tuple(rng.uniform(0, 50) for _ in range(dim)) for _ in range(n)]


@pytest.mark.parametrize("dim", [4, 8])
def test_adj_pruned(benchmark, dim):
    grid = Grid(side=float(dim), dim=dim, rng=random.Random(1))
    points = _points(dim)

    def sweep():
        return sum(len(collect_adjacent(grid, p, 1.0)) for p in points)

    total = benchmark(sweep)
    benchmark.extra_info.update(
        {"dim": dim, "mean_adj_cells": round(total / len(points), 2)}
    )


@pytest.mark.parametrize("dim", [4, 8])
def test_adj_naive(benchmark, dim):
    grid = Grid(side=float(dim), dim=dim, rng=random.Random(1))
    points = _points(dim)

    def sweep():
        return sum(
            len(brute_force_adjacent_cells(grid, p, 1.0)) for p in points
        )

    total = benchmark(sweep)
    benchmark.extra_info.update(
        {"dim": dim, "mean_adj_cells": round(total / len(points), 2)}
    )


def _noisy_stream(seed=0, num_groups=120):
    rng = random.Random(seed)
    base = random_points(num_groups, 5, rng=rng)
    counts = [rng.randint(1, 5) for _ in range(num_groups)]
    vectors, labels, alpha = add_near_duplicates(base, rng=rng, counts=counts)
    order = list(range(len(vectors)))
    rng.shuffle(order)
    points = [StreamPoint(vectors[j], i) for i, j in enumerate(order)]
    return points, [labels[j] for j in order], alpha


@pytest.mark.parametrize("kwise", [None, 20], ids=["splitmix64", "kwise20"])
def test_hash_family(benchmark, kwise):
    points, _, alpha = _noisy_stream()

    def stream_pass():
        sampler = RobustL0SamplerIW(
            alpha,
            5,
            seed=31,
            kwise=kwise,
            expected_stream_length=len(points),
        )
        for p in points:
            sampler.insert(p)
        return sampler

    sampler = benchmark(stream_pass)
    assert sampler.accept_size > 0
    benchmark.extra_info["hash"] = "kwise20" if kwise else "splitmix64"


def test_naive_bias(benchmark, query_rng):
    rng = random.Random(7)
    num_groups = 60
    base = random_points(num_groups, 5, rng=rng)
    counts = power_law_counts(num_groups, rng=rng)
    vectors, labels, alpha = add_near_duplicates(base, rng=rng, counts=counts)
    sizes = [0] * num_groups
    for label in labels:
        sizes[label] += 1
    biggest = max(range(num_groups), key=sizes.__getitem__)

    runs = 150

    def trial_loop():
        robust_hits = 0
        naive_hits = 0
        for run in range(runs):
            shuffle = random.Random(run)
            order = list(range(len(vectors)))
            shuffle.shuffle(order)
            robust = RobustL0SamplerIW(
                alpha, 5, seed=run, expected_stream_length=len(vectors)
            )
            naive = NaiveReservoirSampler(rng=random.Random(run ^ 0xF))
            label_of = {}
            for i, j in enumerate(order):
                label_of[i] = labels[j]
                point = StreamPoint(vectors[j], i)
                robust.insert(point)
                naive.insert(point)
            robust_hits += label_of[robust.sample(query_rng).index] == biggest
            naive_hits += label_of[naive.sample().index] == biggest
        return robust_hits, naive_hits

    robust_hits, naive_hits = benchmark.pedantic(
        trial_loop, rounds=1, iterations=1
    )
    target = runs / num_groups
    benchmark.extra_info.update(
        {
            "largest_group_share_of_points": round(sizes[biggest] / len(vectors), 3),
            "robust_overweight_x": round(robust_hits / target, 2),
            "naive_overweight_x": round(naive_hits / target, 2),
        }
    )
    assert naive_hits > 3 * robust_hits
