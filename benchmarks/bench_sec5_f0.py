"""Section 5: robust F0 estimation vs noiseless sketch baselines.

Benchmarks the estimator's stream pass; ``extra_info`` records the
reproduction table: robust estimate tracks the true group count while a
noiseless sketch fed raw noisy points counts every near-duplicate.
"""

from __future__ import annotations

import random

import pytest

from repro.baselines.bjkst import BJKSTSketch
from repro.baselines.hyperloglog import HyperLogLog
from repro.core.f0_infinite import RobustF0EstimatorIW
from repro.core.f0_sliding import RobustF0EstimatorSW
from repro.datasets.near_duplicates import add_near_duplicates
from repro.datasets.synthetic import random_points
from repro.streams.point import StreamPoint
from repro.streams.windows import SequenceWindow


def build(num_groups=250, seed=2):
    rng = random.Random(seed)
    base = random_points(num_groups, 5, rng=rng)
    counts = [rng.randint(1, 6) for _ in range(num_groups)]
    vectors, labels, alpha = add_near_duplicates(base, rng=rng, counts=counts)
    order = list(range(len(vectors)))
    rng.shuffle(order)
    points = [StreamPoint(vectors[j], i) for i, j in enumerate(order)]
    return points, [labels[j] for j in order], alpha


def test_f0_infinite(benchmark):
    points, labels, alpha = build()
    truth = len(set(labels))

    def estimate_pass():
        estimator = RobustF0EstimatorIW(
            alpha, 5, epsilon=0.25, copies=5, seed=21
        )
        for p in points:
            estimator.insert(p)
        return estimator.estimate()

    estimate = benchmark(estimate_pass)

    oracle = BJKSTSketch(epsilon=0.25, seed=21)
    raw = BJKSTSketch(epsilon=0.25, seed=21)
    hll = HyperLogLog(bucket_bits=10, seed=21)
    for p, label in zip(points, labels):
        oracle.insert(label)
        hll.insert(label)
        raw.insert(p.vector)

    benchmark.extra_info.update(
        {
            "true_groups": truth,
            "points": len(points),
            "robust_estimate": round(estimate, 1),
            "robust_rel_error": round(abs(estimate - truth) / truth, 3),
            "bjkst_oracle": round(oracle.estimate(), 1),
            "hll_oracle": round(hll.estimate(), 1),
            "bjkst_on_raw_points": round(raw.estimate(), 1),
        }
    )
    assert abs(estimate - truth) / truth < 0.4
    assert raw.estimate() > 2 * truth  # noiseless sketch fails on noise


@pytest.mark.parametrize("mode", ["ht", "fm"])
def test_f0_sliding(benchmark, mode):
    points, labels, alpha = build(num_groups=150, seed=4)
    window = SequenceWindow(len(points) // 2)

    def estimate_pass():
        estimator = RobustF0EstimatorSW(
            alpha, 5, window, copies=6, mode=mode, seed=22
        )
        for p in points:
            estimator.insert(p)
        return estimator.estimate()

    estimate = benchmark(estimate_pass)
    benchmark.extra_info.update(
        {"mode": mode, "window": int(window.size), "estimate": round(estimate, 1)}
    )
    assert estimate > 0
