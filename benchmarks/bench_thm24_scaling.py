"""Theorem 2.4: O(log m) space and flat per-item time, infinite window.

Parametrised over stream sizes; ``extra_info`` records peak words and the
words/log2(m) ratio, which must stay roughly flat as the stream grows.
"""

from __future__ import annotations

import math
import random

import pytest

from repro.core.infinite_window import RobustL0SamplerIW
from repro.datasets.near_duplicates import add_near_duplicates
from repro.datasets.synthetic import random_points
from repro.streams.point import StreamPoint


def build_stream(num_groups: int, seed: int = 0):
    rng = random.Random(seed)
    base = random_points(num_groups, 5, rng=rng)
    counts = [rng.randint(1, 6) for _ in range(num_groups)]
    vectors, _, alpha = add_near_duplicates(base, rng=rng, counts=counts)
    order = list(range(len(vectors)))
    rng.shuffle(order)
    return [StreamPoint(vectors[j], i) for i, j in enumerate(order)], alpha


@pytest.mark.parametrize("num_groups", [100, 400, 1600])
def test_scaling(benchmark, num_groups):
    points, alpha = build_stream(num_groups)
    m = len(points)

    def stream_pass():
        sampler = RobustL0SamplerIW(
            alpha, 5, seed=8, expected_stream_length=m
        )
        for p in points:
            sampler.insert(p)
        return sampler

    sampler = benchmark(stream_pass)
    benchmark.extra_info.update(
        {
            "groups": num_groups,
            "stream_length": m,
            "peak_words": sampler.peak_space_words,
            "words_per_log2_m": round(
                sampler.peak_space_words / math.log2(m), 1
            ),
            "final_rate_denominator": sampler.rate_denominator,
        }
    )
    # O(log m) space: far below the m * (dim + 2) words needed to store
    # the stream.  Only meaningful once the stream dwarfs the
    # kappa0*log(m) threshold, i.e. at the larger parametrisations.
    assert sampler.peak_space_words > 0
    if m > 2000:
        assert sampler.peak_space_words < m * (5 + 2) / 2
