"""Theorem 2.7: sliding-window sampler - throughput, space, correctness.

Benchmarks the hierarchy's insert path for sequence- and time-based
windows; ``extra_info`` records peak words (O(log w log m)) and verifies
that queries always return points from the live window.
"""

from __future__ import annotations

import random

import pytest

from repro.core.sliding_window import RobustL0SamplerSW
from repro.datasets.near_duplicates import add_near_duplicates
from repro.datasets.synthetic import random_points
from repro.streams.point import StreamPoint
from repro.streams.windows import SequenceWindow, TimeWindow


def build_stream(num_groups=80, copies=4, seed=1):
    rng = random.Random(seed)
    base = random_points(num_groups, 5, rng=rng)
    vectors, _, alpha = add_near_duplicates(
        base, rng=rng, counts=[copies] * num_groups
    )
    order = list(range(len(vectors)))
    rng.shuffle(order)
    return [StreamPoint(vectors[j], i) for i, j in enumerate(order)], alpha


@pytest.mark.parametrize(
    "model,window,capacity",
    [
        ("sequence", SequenceWindow(128), None),
        ("time", TimeWindow(128.0), 512),
    ],
    ids=["sequence", "time"],
)
def test_sliding_pass(benchmark, model, window, capacity, query_rng):
    points, alpha = build_stream()

    def stream_pass():
        sampler = RobustL0SamplerSW(
            alpha,
            5,
            window,
            window_capacity=capacity,
            seed=9,
            expected_stream_length=len(points),
        )
        for p in points:
            sampler.insert(p)
        return sampler

    sampler = benchmark(stream_pass)
    sample = sampler.sample(query_rng)
    assert window.in_window(sample, points[-1])
    benchmark.extra_info.update(
        {
            "window_model": model,
            "points": len(points),
            "levels": sampler.num_levels,
            "peak_words": sampler.peak_space_words,
            "window_f0_estimate": round(sampler.estimate_f0(), 1),
        }
    )


@pytest.mark.parametrize(
    "model,window,capacity",
    [
        ("sequence", SequenceWindow(128), None),
        ("time", TimeWindow(128.0), 512),
    ],
    ids=["sequence", "time"],
)
def test_sliding_batched_pass(benchmark, model, window, capacity, query_rng):
    """Batched twin of :func:`test_sliding_pass`.

    Same stream through ``extend`` (the batched hot path); ``extra_info``
    records the batched/per-point speedup measured inside this run and
    asserts the state-equivalence contract on the way.
    """
    from repro.engine.equivalence import state_fingerprint

    points, alpha = build_stream()

    def make():
        return RobustL0SamplerSW(
            alpha,
            5,
            window,
            window_capacity=capacity,
            seed=9,
            expected_stream_length=len(points),
        )

    def batched_pass():
        sampler = make()
        sampler.extend(points, batch_size=256)
        return sampler

    sampler = benchmark(batched_pass)
    sample = sampler.sample(query_rng)
    assert window.in_window(sample, points[-1])

    # Equivalence + an in-run speedup measurement for the report.
    import time

    reference = make()
    start = time.perf_counter()
    for p in points:
        reference.insert(p)
    per_elapsed = time.perf_counter() - start
    assert state_fingerprint(reference) == state_fingerprint(sampler)
    start = time.perf_counter()
    batched_pass()
    batch_elapsed = time.perf_counter() - start
    benchmark.extra_info.update(
        {
            "window_model": model,
            "points": len(points),
            "levels": sampler.num_levels,
            "peak_words": sampler.peak_space_words,
            "batched_speedup": round(per_elapsed / batch_elapsed, 2),
        }
    )
