"""Theorem 4.1: high-dimensional sparse datasets, native and JL-projected.

Benchmarks a stream pass at several dimensions; ``extra_info`` carries the
peak words (linear in the effective dimension) so the JL variant's space
saving is visible.
"""

from __future__ import annotations

import random

import pytest

from repro.datasets.synthetic import sparse_high_dim
from repro.highdim.sparse import HighDimSamplerIW
from repro.streams.point import StreamPoint


def build(dim, num_groups=30, seed=3):
    vectors, _, alpha = sparse_high_dim(
        num_groups, 4, dim, rng=random.Random(seed)
    )
    order = list(range(len(vectors)))
    random.Random(seed + 1).shuffle(order)
    return [StreamPoint(vectors[j], i) for i, j in enumerate(order)], alpha


@pytest.mark.parametrize(
    "dim,project_to",
    [(10, None), (20, None), (40, None), (40, 10)],
    ids=["d10", "d20", "d40", "d40-jl10"],
)
def test_highdim_pass(benchmark, dim, project_to, query_rng):
    points, alpha = build(dim)

    def stream_pass():
        sampler = HighDimSamplerIW(
            alpha,
            dim,
            seed=12,
            expected_stream_length=len(points),
            project_to=project_to,
        )
        for p in points:
            sampler.insert(p)
        return sampler

    sampler = benchmark(stream_pass)
    sample = sampler.sample(query_rng)
    effective_dim = project_to if project_to else dim
    assert sample.dim == effective_dim
    benchmark.extra_info.update(
        {
            "native_dim": dim,
            "effective_dim": effective_dim,
            "points": len(points),
            "peak_words": sampler.peak_space_words,
        }
    )
