"""Shared fixtures for the benchmark harness.

Each ``bench_*`` module regenerates one table/figure of the paper (see
DESIGN.md's per-experiment index).  pytest-benchmark measures the hot
loop; the figure's actual rows (deviation metrics, space words, estimates)
are attached to ``benchmark.extra_info`` so ``--benchmark-json`` output
contains the full reproduction data.

Run:  pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import random

import pytest

from repro.datasets.catalog import make_dataset


#: The two quickest paper datasets; the full eight are exercised by the
#: experiment harness (python -m repro.experiments).
BENCH_DATASETS = ["Seeds", "Yacht"]


@pytest.fixture(scope="session")
def catalog():
    """Materialised benchmark datasets (shared across bench modules)."""
    datasets = {}
    for name in BENCH_DATASETS:
        datasets[name] = make_dataset(name, seed=0)
        power = make_dataset(name, seed=0, power_law=True)
        datasets[power.name] = power
    return datasets


@pytest.fixture()
def query_rng():
    """Deterministic query-side randomness."""
    return random.Random(0xBEEF)
