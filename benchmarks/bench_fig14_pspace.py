"""Figure 14: peak space usage (pSpace) per dataset.

Benchmarks a full stream pass while the sampler tracks its own peak
footprint; ``extra_info`` carries the pSpace words for the robust sampler
and the Omega(n) exact baseline.  The paper's observation to reproduce:
space is modest and grows with the point dimension.
"""

from __future__ import annotations

import random

import pytest

from repro.baselines.exact import ExactDistinctSampler
from repro.core.infinite_window import RobustL0SamplerIW


@pytest.mark.parametrize("name", ["Seeds", "Seeds-pl", "Yacht", "Yacht-pl"])
def test_pspace(benchmark, catalog, name):
    dataset = catalog[name]
    points, _ = dataset.shuffled_stream(random.Random(4))

    def stream_pass():
        sampler = RobustL0SamplerIW(
            dataset.alpha,
            dataset.dim,
            seed=6,
            expected_stream_length=dataset.num_points,
        )
        for p in points:
            sampler.insert(p)
        return sampler

    sampler = benchmark(stream_pass)

    exact = ExactDistinctSampler(dataset.alpha, dataset.dim, seed=6)
    for p in points:
        exact.insert(p)

    benchmark.extra_info.update(
        {
            "dataset": name,
            "dim": dataset.dim,
            "groups": dataset.num_groups,
            "robust_peak_words": sampler.peak_space_words,
            "exact_peak_words": exact.space_words(),
        }
    )
    assert 0 < sampler.peak_space_words < 12 * exact.space_words()
