#!/usr/bin/env python
"""Throughput benchmark: batched vs per-point ingestion.

Measures points/sec of ``insert`` loops against ``process_many`` chunks
for the infinite-window sampler (the acceptance gate: >= 3x at 10^5
points), the sliding-window hierarchy, and the sharded
:class:`~repro.engine.pipeline.BatchPipeline` - and, on every run,
verifies the state-equivalence contract by comparing
:func:`~repro.engine.equivalence.state_fingerprint` of the batch-fed and
point-fed samplers.

Not collected by pytest (``bench_`` prefix); run directly::

    PYTHONPATH=src python benchmarks/bench_throughput.py            # full
    PYTHONPATH=src python benchmarks/bench_throughput.py --smoke    # CI

``--smoke`` runs a few thousand points: it exercises the whole batch
path and the equivalence checks but skips the speedup assertion (CI
machines are too noisy to gate on a timing ratio).
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from pathlib import Path

if __package__ in (None, ""):  # running as a script
    _SRC = Path(__file__).resolve().parents[1] / "src"
    if str(_SRC) not in sys.path:
        sys.path.insert(0, str(_SRC))

from repro.core.infinite_window import RobustL0SamplerIW
from repro.core.sliding_window import RobustL0SamplerSW
from repro.engine.batching import chunked
from repro.engine.equivalence import state_fingerprint
from repro.engine.pipeline import BatchPipeline
from repro.streams.windows import SequenceWindow


def make_stream(
    n: int, groups: int, dim: int, seed: int
) -> list[tuple[float, ...]]:
    """A noisy stream: ``groups`` tight clusters on a 25-spaced lattice."""
    rng = random.Random(seed)
    points = []
    for _ in range(n):
        g = rng.randrange(groups)
        base = [25.0 * (g % 100), 25.0 * (g // 100)]
        point = tuple(
            (base[axis] if axis < 2 else 0.0) + rng.uniform(0.0, 0.4)
            for axis in range(dim)
        )
        points.append(point)
    return points


def _rate(n: int, elapsed: float) -> float:
    return n / elapsed if elapsed > 0 else float("inf")


def bench_infinite(points, batch_size: int, seed: int):
    """Per-point vs batch on the infinite-window sampler."""
    per = RobustL0SamplerIW(alpha=1.0, dim=len(points[0]), seed=seed)
    start = time.perf_counter()
    insert = per.insert
    for p in points:
        insert(p)
    per_elapsed = time.perf_counter() - start

    bat = RobustL0SamplerIW(alpha=1.0, dim=len(points[0]), seed=seed)
    start = time.perf_counter()
    for chunk in chunked(points, batch_size):
        bat.process_many(chunk)
    bat_elapsed = time.perf_counter() - start

    assert state_fingerprint(per) == state_fingerprint(bat), (
        "state-equivalence violation on the infinite-window sampler"
    )
    return _rate(len(points), per_elapsed), _rate(len(points), bat_elapsed)


def bench_sliding(points, batch_size: int, seed: int, window: int):
    """Per-point vs batch on the sliding-window hierarchy."""
    spec = SequenceWindow(window)
    dim = len(points[0])
    per = RobustL0SamplerSW(1.0, dim, spec, seed=seed)
    start = time.perf_counter()
    insert = per.insert
    for p in points:
        insert(p)
    per_elapsed = time.perf_counter() - start

    bat = RobustL0SamplerSW(1.0, dim, spec, seed=seed)
    start = time.perf_counter()
    for chunk in chunked(points, batch_size):
        bat.process_many(chunk)
    bat_elapsed = time.perf_counter() - start

    assert state_fingerprint(per) == state_fingerprint(bat), (
        "state-equivalence violation on the sliding-window sampler"
    )
    return _rate(len(points), per_elapsed), _rate(len(points), bat_elapsed)


def bench_pipeline(points, batch_size: int, seed: int, shards: int):
    """Sharded batch ingestion throughput (no per-point twin)."""
    pipeline = BatchPipeline(
        1.0,
        len(points[0]),
        num_shards=shards,
        batch_size=batch_size,
        seed=seed,
    )
    start = time.perf_counter()
    pipeline.extend(points)
    elapsed = time.perf_counter() - start
    merged = pipeline.merge()
    return _rate(len(points), elapsed), merged.num_candidate_groups


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--points", type=int, default=100_000)
    parser.add_argument("--groups", type=int, default=2000)
    parser.add_argument("--dim", type=int, default=2)
    parser.add_argument("--window", type=int, default=2000)
    parser.add_argument("--batch-size", type=int, default=4096)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--smoke", action="store_true",
        help="a few thousand points, equivalence checks only "
        "(no speedup assertion) - the CI mode",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=3.0,
        help="fail unless batch/per-point >= this on the infinite-window "
        "sampler (ignored with --smoke)",
    )
    args = parser.parse_args(argv)

    n = 4000 if args.smoke else args.points
    groups = min(args.groups, max(8, n // 50))
    points = make_stream(n, groups, args.dim, args.seed)

    per_iw, bat_iw = bench_infinite(points, args.batch_size, args.seed)
    speedup_iw = bat_iw / per_iw
    print(
        f"infinite-window  n={n}  per-point {per_iw:12,.0f} pts/s   "
        f"batch {bat_iw:12,.0f} pts/s   speedup {speedup_iw:5.2f}x"
    )

    per_sw, bat_sw = bench_sliding(
        points, args.batch_size, args.seed, args.window
    )
    print(
        f"sliding-window   n={n}  per-point {per_sw:12,.0f} pts/s   "
        f"batch {bat_sw:12,.0f} pts/s   speedup {bat_sw / per_sw:5.2f}x"
    )

    pipe_rate, merged_groups = bench_pipeline(
        points, args.batch_size, args.seed, args.shards
    )
    print(
        f"batch pipeline   n={n}  {args.shards} shards "
        f"{pipe_rate:12,.0f} pts/s   merged groups {merged_groups}"
    )

    print("state equivalence: OK (batch == per-point fingerprints)")
    if not args.smoke and speedup_iw < args.min_speedup:
        print(
            f"FAIL: infinite-window speedup {speedup_iw:.2f}x is below "
            f"the required {args.min_speedup:.1f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
