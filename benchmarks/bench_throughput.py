#!/usr/bin/env python
"""Throughput benchmark: batched vs per-point ingestion.

Measures points/sec of ``insert`` loops against ``process_many`` chunks
for the infinite-window sampler, the sliding-window hierarchy (on two
workloads: the cascade-dominated one - many re-founded groups feeding
Split/Merge promotions - and a steady-window one where the per-arrival
walk dominates), and the sharded
:class:`~repro.engine.pipeline.BatchPipeline` - and, on every run,
verifies the state-equivalence contract by comparing
:func:`~repro.engine.equivalence.state_fingerprint` of the batch-fed and
point-fed samplers.

Regression gates (committed floors, conservative against CI noise; the
actually measured ratios are higher - see BENCH_sliding.json for the
tracked trajectory):

* infinite window: batch/per-point >= 1.7x.  The floor was 3x before the
  shared-store/incremental-space PR, whose optimisations (memoised
  adjacency hashing, O(1) space accounting) accelerated the *per-point*
  baseline ~1.8x while batch throughput held, shrinking the ratio.
* sliding, cascade-dominated: >= 1.15x (both paths share the founding/
  promotion costs that dominate this workload).
* sliding, steady-window: >= 2.0x (the batch walk advantage).
* pipeline, process executor at ONE worker: >= 1.0x *wall-clock* over
  the serial executor - the parallel-no-slower-than-serial contract of
  the zero-copy shared-memory chunk transport.  Gated in full mode on
  EVERY machine; the floor is 1.0x with >= 2 CPU cores (a 1-worker
  pipeline is two processes - submitter plus worker - and with a
  second core the transport work overlaps worker compute), and a
  strict transport-overhead bound of 0.92x on a literally 1-core box,
  where the submitter's asarray/memcpy, the worker's tuple recovery
  and the state ship all serialise onto the single core and exact
  parity is physically out of reach (measured ~0.97x; the seed
  regression this gate exists for was 0.91x at 1 worker and 0.40x at
  4).  Pipeline configurations are timed over ``--pipeline-repeats``
  interleaved rounds with the best rate winning, which is what makes
  the ratio stable on shared/1-core boxes.
* pipeline, process executor at 4 workers: >= 1.5x *wall-clock* over
  the serial executor on the infinite-window workload.  This is the one
  gate that needs real cores: it is enforced in full mode only when
  ``os.cpu_count()`` covers the worker count (a 1-core box would only
  measure IPC overhead), and the measured trajectory is always recorded.
* geometry kernels: vectorised vs scalar chunk geometry on the dim-3
  high-cardinality workload >= 1.3x (>= 1.2x in --smoke).  Both runs
  take the batched path; the toggle isolates the kernel layer, and for
  dim > 2 the scalar mode also has no batch ignore filter (the
  pre-kernel behaviour), so this gate covers the un-gated filter too.
  The dup-heavy dim-2 and sliding-cascade geometry ratios are recorded
  ungated (memoisation already made the scalar dim-2 path near-optimal).
* ``--smoke`` (CI): sliding >= 1.3x on the small duplicate-heavy stream;
  the pipeline scaling section runs ungated (2 process workers, mostly
  an end-to-end executor-equivalence check).

Every run overwrites ``BENCH_sliding.json`` (sliding measurements),
``BENCH_pipeline.json`` (pipeline executor scaling) and
``BENCH_geometry.json`` (geometry kernels) at the repo root; the files
are committed, so the cross-PR trajectory is their git history (CI also
uploads the freshly measured records as artifacts, including on gate
failures).

Not collected by pytest (``bench_`` prefix); run directly::

    PYTHONPATH=src python benchmarks/bench_throughput.py            # full
    PYTHONPATH=src python benchmarks/bench_throughput.py --smoke    # CI
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from pathlib import Path

if __package__ in (None, ""):  # running as a script
    _SRC = Path(__file__).resolve().parents[1] / "src"
    if str(_SRC) not in sys.path:
        sys.path.insert(0, str(_SRC))

from repro.core.infinite_window import RobustL0SamplerIW
from repro.core.sliding_window import RobustL0SamplerSW
from repro.engine.batching import chunked, set_vectorized_geometry
from repro.engine.equivalence import state_fingerprint
from repro.engine.pipeline import BatchPipeline
from repro.streams.windows import SequenceWindow


def make_stream(
    n: int, groups: int, dim: int, seed: int
) -> list[tuple[float, ...]]:
    """A noisy stream: ``groups`` tight clusters on a 25-spaced lattice."""
    rng = random.Random(seed)
    points = []
    for _ in range(n):
        g = rng.randrange(groups)
        base = [25.0 * (g % 100), 25.0 * (g // 100)]
        point = tuple(
            (base[axis] if axis < 2 else 0.0) + rng.uniform(0.0, 0.4)
            for axis in range(dim)
        )
        points.append(point)
    return points


def _rate(n: int, elapsed: float) -> float:
    return n / elapsed if elapsed > 0 else float("inf")


def bench_infinite(points, batch_size: int, seed: int):
    """Per-point vs batch on the infinite-window sampler."""
    per = RobustL0SamplerIW(alpha=1.0, dim=len(points[0]), seed=seed)
    start = time.perf_counter()
    insert = per.insert
    for p in points:
        insert(p)
    per_elapsed = time.perf_counter() - start

    bat = RobustL0SamplerIW(alpha=1.0, dim=len(points[0]), seed=seed)
    start = time.perf_counter()
    for chunk in chunked(points, batch_size):
        bat.process_many(chunk)
    bat_elapsed = time.perf_counter() - start

    assert state_fingerprint(per) == state_fingerprint(bat), (
        "state-equivalence violation on the infinite-window sampler"
    )
    return _rate(len(points), per_elapsed), _rate(len(points), bat_elapsed)


def bench_sliding(points, batch_size: int, seed: int, window: int):
    """Per-point vs batch on the sliding-window hierarchy."""
    spec = SequenceWindow(window)
    dim = len(points[0])
    per = RobustL0SamplerSW(1.0, dim, spec, seed=seed)
    start = time.perf_counter()
    insert = per.insert
    for p in points:
        insert(p)
    per_elapsed = time.perf_counter() - start

    bat = RobustL0SamplerSW(1.0, dim, spec, seed=seed)
    start = time.perf_counter()
    for chunk in chunked(points, batch_size):
        bat.process_many(chunk)
    bat_elapsed = time.perf_counter() - start

    assert state_fingerprint(per) == state_fingerprint(bat), (
        "state-equivalence violation on the sliding-window sampler"
    )
    return _rate(len(points), per_elapsed), _rate(len(points), bat_elapsed)


def make_highdim_stream(
    n: int, dim: int, seed: int
) -> list[tuple[float, ...]]:
    """High-cardinality stream: almost every point is its own group.

    This is the workload the dim > 2 batch ignore filter exists for: the
    rate halves repeatedly, so most arrivals are untracked points whose
    only question is "is any cell of adj(p) sampled?".
    """
    rng = random.Random(seed)
    return [
        tuple(rng.uniform(0.0, 3000.0) for _ in range(dim))
        for _ in range(n)
    ]


def bench_geometry(points, dim: int, batch_size: int, seed: int, sliding=None):
    """Scalar vs vectorised chunk geometry on one batched workload.

    Both runs take the *batched* path; the only difference is the
    :func:`repro.engine.batching.set_vectorized_geometry` toggle, so the
    ratio isolates what the geometry kernel layer buys (for dim > 2 the
    scalar mode also has no batch ignore filter - the pre-kernel
    behaviour, where the conservative neighbourhood was exponential and
    gated off).  Fingerprints of both runs are compared, which makes the
    benchmark double as an end-to-end kernel-equivalence check.
    """

    def build():
        if sliding is not None:
            return RobustL0SamplerSW(
                1.0, dim, SequenceWindow(sliding), seed=seed
            )
        return RobustL0SamplerIW(alpha=1.0, dim=dim, seed=seed)

    rates = {}
    fingerprints = {}
    for vectorised in (False, True):
        previous = set_vectorized_geometry(vectorised)
        try:
            sampler = build()
            start = time.perf_counter()
            for chunk in chunked(points, batch_size):
                sampler.process_many(chunk)
            elapsed = time.perf_counter() - start
        finally:
            set_vectorized_geometry(previous)
        rates[vectorised] = _rate(len(points), elapsed)
        fingerprints[vectorised] = state_fingerprint(sampler)
    assert fingerprints[True] == fingerprints[False], (
        "state-equivalence violation between scalar and vectorised "
        "chunk geometry"
    )
    return rates[False], rates[True]


def bench_pipeline(points, batch_size: int, seed: int, shards: int):
    """Sharded batch ingestion throughput (no per-point twin)."""
    pipeline = BatchPipeline(
        1.0,
        len(points[0]),
        num_shards=shards,
        batch_size=batch_size,
        seed=seed,
    )
    start = time.perf_counter()
    pipeline.extend(points)
    elapsed = time.perf_counter() - start
    merged = pipeline.merge()
    return _rate(len(points), elapsed), merged.num_candidate_groups


def _transport_record(stats) -> dict | None:
    """The transport-counter block kept per worker count in
    ``BENCH_pipeline.json`` - chunk counts per transport kind, bytes
    through shared memory, shard migrations, and the submit-side
    per-chunk overhead (the number the zero-copy transport exists to
    keep small)."""
    if not stats:
        return None
    chunks = stats.get("chunks") or 0
    submit_seconds = stats.get("submit_seconds", 0.0)
    return {
        "kind": stats.get("transport"),
        "chunks": chunks,
        "shm_chunks": stats.get("shm_chunks", 0),
        "array_chunks": stats.get("array_chunks", 0),
        "pickle_chunks": stats.get("pickle_chunks", 0),
        "shm_bytes": stats.get("shm_bytes", 0),
        "migrations": stats.get("migrations", 0),
        "submit_us_per_chunk": (
            round(submit_seconds / chunks * 1e6, 1) if chunks else 0.0
        ),
    }


def bench_pipeline_scaling(
    points, batch_size: int, seed: int, shards: int, workers_list,
    repeats: int = 1,
):
    """Wall-clock pipeline scaling: serial executor vs process workers.

    Every parallel run is fingerprint-checked against the serial
    pipeline (the executor-equivalence contract), and timing includes
    the final ``sync()`` - shipping the shard states home is part of the
    wall-clock cost a real deployment pays.  Executor startup (worker
    fork, queue setup) happens *before* the clock starts, identically
    for every configuration: the bench measures steady-state ingestion,
    not one-time process launch.

    With ``repeats`` > 1 every configuration is timed that many times,
    rounds interleaved (every configuration once per round, order
    alternating between rounds so in-round clock drift cannot
    systematically favour one side) and the best rate per configuration
    wins - the minimum-of-N estimator a shared or 1-core box needs for
    a stable speedup ratio.  Immediately before each timed region the
    accumulated heap (input streams, earlier regions' leftovers) is
    collected and ``gc.freeze``-exempted from collection, off the
    clock, so in-region GC work - which stays ENABLED: real
    deployments run with it - is proportional to the region's own
    allocations instead of quasi-randomly re-traversing whatever the
    harness happened to retain.  Returns
    ``(serial_rate, process_rates, transport_stats)`` where
    ``transport_stats[workers]`` is the executor's transport/scheduling
    counter snapshot (:meth:`repro.engine.executors.ShardExecutor.stats`)
    from that configuration's fastest run.
    """
    from repro.api.specs import PipelineSpec

    def spec(executor, workers=None):
        return PipelineSpec(
            alpha=1.0,
            dim=len(points[0]),
            seed=seed,
            num_shards=shards,
            batch_size=batch_size,
            executor=executor,
            num_workers=workers,
        )

    serial_rate = 0.0
    reference = None
    process_rates: dict[int, float] = {}
    transport_stats: dict[int, dict] = {}
    import gc

    def settle_heap():
        """Collect-then-freeze, off the clock: each timed region starts
        from a frozen heap, so its in-region GC work (which stays
        enabled - real deployments run with it) is proportional to its
        own allocations instead of quasi-randomly re-traversing
        whatever the harness and earlier rounds happened to retain."""
        gc.collect()
        gc.freeze()

    def time_serial():
        nonlocal serial_rate, reference
        serial = BatchPipeline(spec=spec("serial"))
        serial._ensure_executor()  # startup outside the timed region
        settle_heap()
        start = time.perf_counter()
        serial.extend(points)
        elapsed = time.perf_counter() - start
        serial_rate = max(serial_rate, _rate(len(points), elapsed))
        if reference is None:
            reference = state_fingerprint(serial)

    def time_process(workers):
        pipeline = BatchPipeline(spec=spec("process", workers))
        pipeline._ensure_executor()  # fork/attach outside, like serial
        try:
            settle_heap()
            start = time.perf_counter()
            pipeline.extend(points)
            pipeline.sync()
            elapsed = time.perf_counter() - start
            assert state_fingerprint(pipeline) == reference, (
                "executor-equivalence violation: process pipeline "
                f"({workers} workers) diverged from the serial one"
            )
            stats = pipeline.executor_stats()
        finally:
            pipeline.close()
        rate = _rate(len(points), elapsed)
        if rate > process_rates.get(workers, 0.0):
            process_rates[workers] = rate
            transport_stats[workers] = stats

    try:
        for round_index in range(max(1, repeats)):
            # Alternate the in-round order: clock-frequency drift
            # (thermal throttling, turbo decay) is roughly monotone
            # within a round, so a fixed serial-first order would
            # systematically favour one side of the speedup ratio.
            if round_index % 2 == 0:
                time_serial()
                for workers in workers_list:
                    time_process(workers)
            else:
                for workers in workers_list:
                    time_process(workers)
                time_serial()
    finally:
        gc.unfreeze()
        gc.collect()
    return serial_rate, process_rates, transport_stats


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--points", type=int, default=100_000)
    parser.add_argument("--groups", type=int, default=2000)
    parser.add_argument("--dim", type=int, default=2)
    parser.add_argument("--window", type=int, default=2000)
    parser.add_argument("--batch-size", type=int, default=4096)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--smoke", action="store_true",
        help="a few thousand points: the full batch path, the equivalence "
        "checks and the conservative sliding floor - the CI mode",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=1.7,
        help="fail unless batch/per-point >= this on the infinite-window "
        "sampler (ignored with --smoke)",
    )
    parser.add_argument(
        "--min-sliding-speedup", type=float, default=1.35,
        help="committed floor for the cascade-dominated sliding workload "
        "(ignored with --smoke; raised from 1.15 when the array-backed "
        "candidate/heap hot path landed - measured 1.57x)",
    )
    parser.add_argument(
        "--min-sliding-steady-speedup", type=float, default=2.2,
        help="committed floor for the steady-window sliding workload "
        "(ignored with --smoke; measured 2.49x)",
    )
    parser.add_argument(
        "--min-sliding-smoke-speedup", type=float, default=1.5,
        help="committed floor for the sliding ratio in --smoke mode "
        "(raised from 1.3 with the array-backed hot path - measured "
        "2.2x; kept conservative against CI-runner noise)",
    )
    parser.add_argument(
        "--min-geometry-speedup", type=float, default=1.3,
        help="committed floor for the vectorised-vs-scalar chunk "
        "geometry ratio on the dim-3 high-cardinality workload (the "
        "batch ignore filter the kernels un-gated); gated in full mode",
    )
    parser.add_argument(
        "--min-geometry-smoke-speedup", type=float, default=1.2,
        help="committed floor for the dim-3 geometry ratio in --smoke "
        "mode (smaller stream, conservative against CI noise)",
    )
    parser.add_argument(
        "--geometry-json-out",
        default=str(
            Path(__file__).resolve().parents[1] / "BENCH_geometry.json"
        ),
        help="where to write the geometry-kernel perf record",
    )
    parser.add_argument(
        "--min-pipeline-speedup", type=float, default=1.5,
        help="committed wall-clock floor for the process-executor "
        "pipeline at --pipeline-workers workers vs the serial executor "
        "(gated in full mode on machines with enough cores; always "
        "recorded in BENCH_pipeline.json)",
    )
    parser.add_argument(
        "--pipeline-workers", type=int, default=4,
        help="process worker count the pipeline floor is gated at",
    )
    parser.add_argument(
        "--min-pipeline-1worker-speedup", type=float, default=1.0,
        help="committed wall-clock floor for the process executor at ONE "
        "worker vs the serial executor - the parallel-no-slower-than-"
        "serial contract of the shared-memory transport; gated in full "
        "mode on every machine with >= 2 CPU cores (no 4-core "
        "requirement; see --min-pipeline-1worker-1core-speedup)",
    )
    parser.add_argument(
        "--min-pipeline-1worker-1core-speedup", type=float, default=0.92,
        help="committed floor for the 1-worker process executor on a "
        "literally 1-core machine, where the submitter and the worker "
        "serialise onto one core and the transport's residual cost "
        "(tuple recovery, state ship) cannot overlap anything; still "
        "gated in full mode - it bounds transport overhead at 8%%",
    )
    parser.add_argument(
        "--pipeline-repeats", type=int, default=5,
        help="interleaved timing rounds per pipeline configuration in "
        "full mode (best rate wins; --smoke always runs one round)",
    )
    parser.add_argument(
        "--pipeline-points", type=int, default=250_000,
        help="stream length for the pipeline scaling section in full "
        "mode (used when larger than --points).  The executor gates "
        "measure steady-state transport overhead; the per-sync fixed "
        "cost - shipping the shard states home once - amortises with "
        "stream length, so the scaling section uses a longer stream "
        "than the batch sections to keep the parity gate from mostly "
        "measuring the one-time sync edge",
    )
    parser.add_argument(
        "--json-out",
        default=str(Path(__file__).resolve().parents[1] / "BENCH_sliding.json"),
        help="where to write the sliding perf-trajectory record",
    )
    parser.add_argument(
        "--pipeline-json-out",
        default=str(
            Path(__file__).resolve().parents[1] / "BENCH_pipeline.json"
        ),
        help="where to write the pipeline-scaling perf record",
    )
    args = parser.parse_args(argv)

    n = 4000 if args.smoke else args.points
    groups = min(args.groups, max(8, n // 50))
    points = make_stream(n, groups, args.dim, args.seed)
    failures: list[str] = []
    record: dict = {
        "mode": "smoke" if args.smoke else "full",
        "points": n,
        "batch_size": args.batch_size,
        "workloads": {},
    }

    def gate(name: str, speedup: float, floor: float | None) -> None:
        if floor is not None and speedup < floor:
            failures.append(
                f"{name} speedup {speedup:.2f}x is below the "
                f"committed floor {floor:.2f}x"
            )

    per_iw, bat_iw = bench_infinite(points, args.batch_size, args.seed)
    speedup_iw = bat_iw / per_iw
    print(
        f"infinite-window          n={n}  per-point {per_iw:12,.0f} pts/s   "
        f"batch {bat_iw:12,.0f} pts/s   speedup {speedup_iw:5.2f}x"
    )
    if not args.smoke:
        gate("infinite-window", speedup_iw, args.min_speedup)

    # Sliding workload 1: cascade-dominated (the ROADMAP's named hot
    # path) - groups ~ window, so most arrivals re-found expired groups
    # and feed Split/Merge promotions.  Both paths share those costs.
    per_sw, bat_sw = bench_sliding(
        points, args.batch_size, args.seed, args.window
    )
    speedup_sw = bat_sw / per_sw
    print(
        f"sliding (cascade-heavy)  n={n}  per-point {per_sw:12,.0f} pts/s   "
        f"batch {bat_sw:12,.0f} pts/s   speedup {speedup_sw:5.2f}x"
    )
    record["workloads"]["cascade_dominated"] = {
        "groups": groups,
        "window": args.window,
        "per_point_pts_per_sec": round(per_sw),
        "batch_pts_per_sec": round(bat_sw),
        "speedup": round(speedup_sw, 3),
    }
    if args.smoke:
        gate("sliding (smoke)", speedup_sw, args.min_sliding_smoke_speedup)
    else:
        gate("sliding (cascade-heavy)", speedup_sw, args.min_sliding_speedup)

        # Sliding workload 2: steady window - few groups re-found, the
        # per-arrival walk dominates and the batch inlining pays off.
        steady_groups = max(8, n // 1000)
        steady_points = make_stream(n, steady_groups, args.dim, args.seed)
        per_st, bat_st = bench_sliding(
            steady_points, args.batch_size, args.seed, args.window
        )
        speedup_st = bat_st / per_st
        print(
            f"sliding (steady window)  n={n}  per-point {per_st:12,.0f} pts/s   "
            f"batch {bat_st:12,.0f} pts/s   speedup {speedup_st:5.2f}x"
        )
        record["workloads"]["steady_window"] = {
            "groups": steady_groups,
            "window": args.window,
            "per_point_pts_per_sec": round(per_st),
            "batch_pts_per_sec": round(bat_st),
            "speedup": round(speedup_st, 3),
        }
        gate(
            "sliding (steady window)",
            speedup_st,
            args.min_sliding_steady_speedup,
        )

    # Geometry-kernel section: scalar vs vectorised chunk geometry, both
    # on the batched path (fingerprint-checked inside bench_geometry).
    geometry_record: dict = {
        "mode": record["mode"],
        "points": n,
        "batch_size": args.batch_size,
        "workloads": {},
    }
    highdim_n = 4000 if args.smoke else min(n, 60_000)
    highdim_points = make_highdim_stream(highdim_n, 3, args.seed)
    scal_hd, vect_hd = bench_geometry(
        highdim_points, 3, args.batch_size, args.seed
    )
    speedup_hd = vect_hd / scal_hd
    print(
        f"geometry (dim-3 filter)  n={highdim_n}  scalar "
        f"{scal_hd:11,.0f} pts/s   vectorised {vect_hd:11,.0f} pts/s   "
        f"speedup {speedup_hd:5.2f}x"
    )
    geometry_record["workloads"]["highdim_filter"] = {
        "dim": 3,
        "points": highdim_n,
        "scalar_pts_per_sec": round(scal_hd),
        "vectorised_pts_per_sec": round(vect_hd),
        "speedup": round(speedup_hd, 3),
    }
    gate(
        "geometry (dim-3 filter)",
        speedup_hd,
        args.min_geometry_smoke_speedup
        if args.smoke
        else args.min_geometry_speedup,
    )

    scal_g2, vect_g2 = bench_geometry(points, args.dim, args.batch_size, args.seed)
    print(
        f"geometry (IW dup-heavy)  n={n}  scalar "
        f"{scal_g2:11,.0f} pts/s   vectorised {vect_g2:11,.0f} pts/s   "
        f"speedup {vect_g2 / scal_g2:5.2f}x"
    )
    geometry_record["workloads"]["iw_duplicate_heavy"] = {
        "dim": args.dim,
        "points": n,
        "scalar_pts_per_sec": round(scal_g2),
        "vectorised_pts_per_sec": round(vect_g2),
        "speedup": round(vect_g2 / scal_g2, 3),
    }

    if not args.smoke:
        scal_sw, vect_sw = bench_geometry(
            points, args.dim, args.batch_size, args.seed, sliding=args.window
        )
        print(
            f"geometry (SW cascade)    n={n}  scalar "
            f"{scal_sw:11,.0f} pts/s   vectorised {vect_sw:11,.0f} pts/s   "
            f"speedup {vect_sw / scal_sw:5.2f}x"
        )
        geometry_record["workloads"]["sliding_cascade"] = {
            "dim": args.dim,
            "window": args.window,
            "points": n,
            "scalar_pts_per_sec": round(scal_sw),
            "vectorised_pts_per_sec": round(vect_sw),
            "speedup": round(vect_sw / scal_sw, 3),
        }

    pipe_rate, merged_groups = bench_pipeline(
        points, args.batch_size, args.seed, args.shards
    )
    print(
        f"batch pipeline           n={n}  {args.shards} shards "
        f"{pipe_rate:12,.0f} pts/s   merged groups {merged_groups}"
    )

    # Pipeline scaling: the serial executor vs process shard workers on
    # the infinite-window workload - the first wall-clock (not just
    # per-core) comparison.  Parallel runs are fingerprint-checked
    # against the serial pipeline inside bench_pipeline_scaling.
    cpu_count = os.cpu_count() or 1
    gate_workers = min(args.pipeline_workers, args.shards)
    if args.smoke:
        workers_list = [min(2, args.shards)]
    else:
        workers_list = sorted(
            {w for w in (1, 2, gate_workers) if w <= args.shards}
        )
    pipeline_repeats = 1 if args.smoke else max(1, args.pipeline_repeats)
    scaling_n = n if args.smoke else max(n, args.pipeline_points)
    scaling_points = (
        points
        if scaling_n == n
        else make_stream(scaling_n, groups, args.dim, args.seed)
    )
    serial_rate, process_rates, transport_stats = bench_pipeline_scaling(
        scaling_points, args.batch_size, args.seed, args.shards,
        workers_list, repeats=pipeline_repeats,
    )
    print(
        f"pipeline executor=serial n={scaling_n}  {args.shards} shards "
        f"{serial_rate:12,.0f} pts/s   (baseline)"
    )
    for workers, rate in process_rates.items():
        stats = transport_stats.get(workers) or {}
        chunks = stats.get("chunks") or 0
        overhead_us = (
            stats.get("submit_seconds", 0.0) / chunks * 1e6 if chunks else 0.0
        )
        print(
            f"pipeline executor=process n={scaling_n} {workers} workers "
            f"{rate:11,.0f} pts/s   speedup {rate / serial_rate:5.2f}x   "
            f"transport {stats.get('transport', '?')} "
            f"{overhead_us:6.1f} us/chunk submit-side"
        )
    pipeline_record = {
        "mode": record["mode"],
        "workload": "infinite-window",
        "points": scaling_n,
        "batch_size": args.batch_size,
        "num_shards": args.shards,
        "cpu_count": cpu_count,
        "repeats": pipeline_repeats,
        "serial_pts_per_sec": round(serial_rate),
        "process": {
            str(workers): {
                "pts_per_sec": round(rate),
                "speedup": round(rate / serial_rate, 3),
                "transport": _transport_record(transport_stats.get(workers)),
            }
            for workers, rate in process_rates.items()
        },
    }
    if not args.smoke and 1 in process_rates:
        # The parallel-no-slower-than-serial contract: gated on every
        # machine.  A 1-worker pipeline is TWO processes (submitter +
        # worker); with a second core the transport work overlaps
        # worker compute and the floor is full parity, while on a
        # literally 1-core box every transport cost serialises onto
        # the one core and the gate bounds the residual overhead
        # instead of demanding physically impossible exact parity.
        if cpu_count >= 2:
            floor_1w = args.min_pipeline_1worker_speedup
        else:
            floor_1w = args.min_pipeline_1worker_1core_speedup
            print(
                "note: 1-worker pipeline floor relaxed to "
                f"{floor_1w:.2f}x: only 1 CPU core available, so the "
                "submitter cannot overlap the worker (gate still "
                "bounds transport overhead)"
            )
        gate(
            "pipeline (process, 1 worker)",
            process_rates[1] / serial_rate,
            floor_1w,
        )
    if not args.smoke and gate_workers in process_rates:
        pipeline_speedup = process_rates[gate_workers] / serial_rate
        if cpu_count >= gate_workers:
            gate(
                f"pipeline (process, {gate_workers} workers)",
                pipeline_speedup,
                args.min_pipeline_speedup,
            )
        else:
            # A 1-core box cannot run 4 workers in parallel; gating
            # there would only measure IPC overhead.  The record keeps
            # the measured trajectory (cpu_count says how to read it).
            print(
                f"note: pipeline floor ({args.min_pipeline_speedup:.2f}x "
                f"at {gate_workers} workers) not gated: only "
                f"{cpu_count} CPU core(s) available"
            )

    print("state equivalence: OK (batch == per-point fingerprints)")
    try:
        Path(args.json_out).write_text(json.dumps(record, indent=2) + "\n")
        print(f"sliding perf record written to {args.json_out}")
    except OSError as error:  # read-only checkouts shouldn't fail the run
        print(f"note: could not write {args.json_out}: {error}")
    try:
        Path(args.pipeline_json_out).write_text(
            json.dumps(pipeline_record, indent=2) + "\n"
        )
        print(f"pipeline perf record written to {args.pipeline_json_out}")
    except OSError as error:  # read-only checkouts shouldn't fail the run
        print(f"note: could not write {args.pipeline_json_out}: {error}")
    try:
        Path(args.geometry_json_out).write_text(
            json.dumps(geometry_record, indent=2) + "\n"
        )
        print(f"geometry perf record written to {args.geometry_json_out}")
    except OSError as error:  # read-only checkouts shouldn't fail the run
        print(f"note: could not write {args.geometry_json_out}: {error}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
