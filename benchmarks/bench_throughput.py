#!/usr/bin/env python
"""Throughput benchmark: batched vs per-point ingestion.

Measures points/sec of ``insert`` loops against ``process_many`` chunks
for the infinite-window sampler, the sliding-window hierarchy (on two
workloads: the cascade-dominated one - many re-founded groups feeding
Split/Merge promotions - and a steady-window one where the per-arrival
walk dominates), and the sharded
:class:`~repro.engine.pipeline.BatchPipeline` - and, on every run,
verifies the state-equivalence contract by comparing
:func:`~repro.engine.equivalence.state_fingerprint` of the batch-fed and
point-fed samplers.

Regression gates (committed floors, conservative against CI noise; the
actually measured ratios are higher - see BENCH_sliding.json for the
tracked trajectory):

* infinite window: batch/per-point >= 1.7x.  The floor was 3x before the
  shared-store/incremental-space PR, whose optimisations (memoised
  adjacency hashing, O(1) space accounting) accelerated the *per-point*
  baseline ~1.8x while batch throughput held, shrinking the ratio.
* sliding, cascade-dominated: >= 1.15x (both paths share the founding/
  promotion costs that dominate this workload).
* sliding, steady-window: >= 2.0x (the batch walk advantage).
* ``--smoke`` (CI): sliding >= 1.3x on the small duplicate-heavy stream.

Every run overwrites ``BENCH_sliding.json`` at the repo root with the
sliding measurements; the file is committed, so the cross-PR trajectory
is its git history (CI also uploads the freshly measured record as an
artifact, including on gate failures).

Not collected by pytest (``bench_`` prefix); run directly::

    PYTHONPATH=src python benchmarks/bench_throughput.py            # full
    PYTHONPATH=src python benchmarks/bench_throughput.py --smoke    # CI
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

if __package__ in (None, ""):  # running as a script
    _SRC = Path(__file__).resolve().parents[1] / "src"
    if str(_SRC) not in sys.path:
        sys.path.insert(0, str(_SRC))

from repro.core.infinite_window import RobustL0SamplerIW
from repro.core.sliding_window import RobustL0SamplerSW
from repro.engine.batching import chunked
from repro.engine.equivalence import state_fingerprint
from repro.engine.pipeline import BatchPipeline
from repro.streams.windows import SequenceWindow


def make_stream(
    n: int, groups: int, dim: int, seed: int
) -> list[tuple[float, ...]]:
    """A noisy stream: ``groups`` tight clusters on a 25-spaced lattice."""
    rng = random.Random(seed)
    points = []
    for _ in range(n):
        g = rng.randrange(groups)
        base = [25.0 * (g % 100), 25.0 * (g // 100)]
        point = tuple(
            (base[axis] if axis < 2 else 0.0) + rng.uniform(0.0, 0.4)
            for axis in range(dim)
        )
        points.append(point)
    return points


def _rate(n: int, elapsed: float) -> float:
    return n / elapsed if elapsed > 0 else float("inf")


def bench_infinite(points, batch_size: int, seed: int):
    """Per-point vs batch on the infinite-window sampler."""
    per = RobustL0SamplerIW(alpha=1.0, dim=len(points[0]), seed=seed)
    start = time.perf_counter()
    insert = per.insert
    for p in points:
        insert(p)
    per_elapsed = time.perf_counter() - start

    bat = RobustL0SamplerIW(alpha=1.0, dim=len(points[0]), seed=seed)
    start = time.perf_counter()
    for chunk in chunked(points, batch_size):
        bat.process_many(chunk)
    bat_elapsed = time.perf_counter() - start

    assert state_fingerprint(per) == state_fingerprint(bat), (
        "state-equivalence violation on the infinite-window sampler"
    )
    return _rate(len(points), per_elapsed), _rate(len(points), bat_elapsed)


def bench_sliding(points, batch_size: int, seed: int, window: int):
    """Per-point vs batch on the sliding-window hierarchy."""
    spec = SequenceWindow(window)
    dim = len(points[0])
    per = RobustL0SamplerSW(1.0, dim, spec, seed=seed)
    start = time.perf_counter()
    insert = per.insert
    for p in points:
        insert(p)
    per_elapsed = time.perf_counter() - start

    bat = RobustL0SamplerSW(1.0, dim, spec, seed=seed)
    start = time.perf_counter()
    for chunk in chunked(points, batch_size):
        bat.process_many(chunk)
    bat_elapsed = time.perf_counter() - start

    assert state_fingerprint(per) == state_fingerprint(bat), (
        "state-equivalence violation on the sliding-window sampler"
    )
    return _rate(len(points), per_elapsed), _rate(len(points), bat_elapsed)


def bench_pipeline(points, batch_size: int, seed: int, shards: int):
    """Sharded batch ingestion throughput (no per-point twin)."""
    pipeline = BatchPipeline(
        1.0,
        len(points[0]),
        num_shards=shards,
        batch_size=batch_size,
        seed=seed,
    )
    start = time.perf_counter()
    pipeline.extend(points)
    elapsed = time.perf_counter() - start
    merged = pipeline.merge()
    return _rate(len(points), elapsed), merged.num_candidate_groups


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--points", type=int, default=100_000)
    parser.add_argument("--groups", type=int, default=2000)
    parser.add_argument("--dim", type=int, default=2)
    parser.add_argument("--window", type=int, default=2000)
    parser.add_argument("--batch-size", type=int, default=4096)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--smoke", action="store_true",
        help="a few thousand points: the full batch path, the equivalence "
        "checks and the conservative sliding floor - the CI mode",
    )
    parser.add_argument(
        "--min-speedup", type=float, default=1.7,
        help="fail unless batch/per-point >= this on the infinite-window "
        "sampler (ignored with --smoke)",
    )
    parser.add_argument(
        "--min-sliding-speedup", type=float, default=1.15,
        help="committed floor for the cascade-dominated sliding workload "
        "(ignored with --smoke)",
    )
    parser.add_argument(
        "--min-sliding-steady-speedup", type=float, default=2.0,
        help="committed floor for the steady-window sliding workload "
        "(ignored with --smoke)",
    )
    parser.add_argument(
        "--min-sliding-smoke-speedup", type=float, default=1.3,
        help="committed floor for the sliding ratio in --smoke mode",
    )
    parser.add_argument(
        "--json-out",
        default=str(Path(__file__).resolve().parents[1] / "BENCH_sliding.json"),
        help="where to write the sliding perf-trajectory record",
    )
    args = parser.parse_args(argv)

    n = 4000 if args.smoke else args.points
    groups = min(args.groups, max(8, n // 50))
    points = make_stream(n, groups, args.dim, args.seed)
    failures: list[str] = []
    record: dict = {
        "mode": "smoke" if args.smoke else "full",
        "points": n,
        "batch_size": args.batch_size,
        "workloads": {},
    }

    def gate(name: str, speedup: float, floor: float | None) -> None:
        if floor is not None and speedup < floor:
            failures.append(
                f"{name} speedup {speedup:.2f}x is below the "
                f"committed floor {floor:.2f}x"
            )

    per_iw, bat_iw = bench_infinite(points, args.batch_size, args.seed)
    speedup_iw = bat_iw / per_iw
    print(
        f"infinite-window          n={n}  per-point {per_iw:12,.0f} pts/s   "
        f"batch {bat_iw:12,.0f} pts/s   speedup {speedup_iw:5.2f}x"
    )
    if not args.smoke:
        gate("infinite-window", speedup_iw, args.min_speedup)

    # Sliding workload 1: cascade-dominated (the ROADMAP's named hot
    # path) - groups ~ window, so most arrivals re-found expired groups
    # and feed Split/Merge promotions.  Both paths share those costs.
    per_sw, bat_sw = bench_sliding(
        points, args.batch_size, args.seed, args.window
    )
    speedup_sw = bat_sw / per_sw
    print(
        f"sliding (cascade-heavy)  n={n}  per-point {per_sw:12,.0f} pts/s   "
        f"batch {bat_sw:12,.0f} pts/s   speedup {speedup_sw:5.2f}x"
    )
    record["workloads"]["cascade_dominated"] = {
        "groups": groups,
        "window": args.window,
        "per_point_pts_per_sec": round(per_sw),
        "batch_pts_per_sec": round(bat_sw),
        "speedup": round(speedup_sw, 3),
    }
    if args.smoke:
        gate("sliding (smoke)", speedup_sw, args.min_sliding_smoke_speedup)
    else:
        gate("sliding (cascade-heavy)", speedup_sw, args.min_sliding_speedup)

        # Sliding workload 2: steady window - few groups re-found, the
        # per-arrival walk dominates and the batch inlining pays off.
        steady_groups = max(8, n // 1000)
        steady_points = make_stream(n, steady_groups, args.dim, args.seed)
        per_st, bat_st = bench_sliding(
            steady_points, args.batch_size, args.seed, args.window
        )
        speedup_st = bat_st / per_st
        print(
            f"sliding (steady window)  n={n}  per-point {per_st:12,.0f} pts/s   "
            f"batch {bat_st:12,.0f} pts/s   speedup {speedup_st:5.2f}x"
        )
        record["workloads"]["steady_window"] = {
            "groups": steady_groups,
            "window": args.window,
            "per_point_pts_per_sec": round(per_st),
            "batch_pts_per_sec": round(bat_st),
            "speedup": round(speedup_st, 3),
        }
        gate(
            "sliding (steady window)",
            speedup_st,
            args.min_sliding_steady_speedup,
        )

    pipe_rate, merged_groups = bench_pipeline(
        points, args.batch_size, args.seed, args.shards
    )
    print(
        f"batch pipeline           n={n}  {args.shards} shards "
        f"{pipe_rate:12,.0f} pts/s   merged groups {merged_groups}"
    )

    print("state equivalence: OK (batch == per-point fingerprints)")
    try:
        Path(args.json_out).write_text(json.dumps(record, indent=2) + "\n")
        print(f"sliding perf record written to {args.json_out}")
    except OSError as error:  # read-only checkouts shouldn't fail the run
        print(f"note: could not write {args.json_out}: {error}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
