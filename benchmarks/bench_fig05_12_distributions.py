"""Figures 5-12: empirical sampling distribution per dataset.

Benchmarks one full stream pass + query (the unit the paper repeats
200k-500k times), and attaches the deviation metrics of a reduced-run
distribution to ``extra_info`` - stdDevNm tracking the multinomial noise
floor and a non-rejecting chi-square p-value reproduce the paper's
"very close to uniform" finding.
"""

from __future__ import annotations

import random

import pytest

from repro.core.infinite_window import RobustL0SamplerIW
from repro.metrics.trials import sampling_distribution

RUNS = 200


@pytest.mark.parametrize("name", ["Seeds", "Seeds-pl", "Yacht", "Yacht-pl"])
def test_distribution(benchmark, catalog, name, query_rng):
    dataset = catalog[name]

    def one_pass():
        points, _ = dataset.shuffled_stream(random.Random(1))
        sampler = RobustL0SamplerIW(
            dataset.alpha,
            dataset.dim,
            seed=7,
            expected_stream_length=dataset.num_points,
        )
        for p in points:
            sampler.insert(p)
        return sampler.sample(query_rng)

    benchmark(one_pass)

    result = sampling_distribution(dataset, runs=RUNS, seed=3)
    report = result.report
    benchmark.extra_info.update(
        {
            "dataset": name,
            "groups": dataset.num_groups,
            "runs": RUNS,
            "std_dev_nm": round(report.std_dev_nm, 4),
            "noise_floor": round(report.noise_floor, 4),
            "max_dev_nm": round(report.max_dev_nm, 4),
            "chi2_p_value": round(report.p_value, 4),
        }
    )
    assert report.is_consistent_with_uniform(p_threshold=1e-4)
