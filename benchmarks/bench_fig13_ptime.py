"""Figure 13: processing time per item (pTime).

The benchmark's per-round time divided by the stream length is pTime.
Paper shape to reproduce: higher-dimensional datasets cost more per item;
power-law variants track their uniform counterparts.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.core.infinite_window import RobustL0SamplerIW


@pytest.mark.parametrize("name", ["Seeds", "Seeds-pl", "Yacht", "Yacht-pl"])
def test_ptime(benchmark, catalog, name):
    dataset = catalog[name]
    points, _ = dataset.shuffled_stream(random.Random(2))

    def stream_pass():
        sampler = RobustL0SamplerIW(
            dataset.alpha,
            dataset.dim,
            seed=5,
            expected_stream_length=dataset.num_points,
        )
        insert = sampler.insert
        for p in points:
            insert(p)
        return sampler

    sampler = benchmark(stream_pass)

    start = time.perf_counter()
    stream_pass()
    elapsed = time.perf_counter() - start
    benchmark.extra_info.update(
        {
            "dataset": name,
            "dim": dataset.dim,
            "points": dataset.num_points,
            "ptime_us_per_item": round(elapsed / dataset.num_points * 1e6, 2),
            "final_rate_denominator": sampler.rate_denominator,
        }
    )
    assert sampler.accept_size > 0
