"""Theorem 3.1: general (non-well-separated) datasets.

Benchmarks a stream pass over the overlapping-chain dataset and records
the normalised ball-hit probabilities (Theta(1/n_opt) for every point).
"""

from __future__ import annotations

import random

from repro.core.infinite_window import RobustL0SamplerIW
from repro.datasets.synthetic import overlapping_chain
from repro.geometry.distance import within_distance
from repro.partition.min_cardinality import min_cardinality_size
from repro.streams.point import StreamPoint

RUNS = 250


def test_general_dataset(benchmark, query_rng):
    vectors, alpha = overlapping_chain(14, 2, rng=random.Random(5))
    n_opt = min_cardinality_size(vectors, alpha)

    def stream_pass():
        rng = random.Random(17)
        order = list(range(len(vectors)))
        rng.shuffle(order)
        sampler = RobustL0SamplerIW(
            alpha, 2, seed=17, expected_stream_length=len(vectors)
        )
        for i, j in enumerate(order):
            sampler.insert(StreamPoint(vectors[j], i))
        return sampler

    benchmark(stream_pass)

    hits = [0] * len(vectors)
    for run in range(RUNS):
        rng = random.Random(run)
        order = list(range(len(vectors)))
        rng.shuffle(order)
        sampler = RobustL0SamplerIW(
            alpha, 2, seed=run, expected_stream_length=len(vectors)
        )
        for i, j in enumerate(order):
            sampler.insert(StreamPoint(vectors[j], i))
        sample = sampler.sample(query_rng).vector
        for i, v in enumerate(vectors):
            if within_distance(sample, v, alpha):
                hits[i] += 1

    normalised = [h / RUNS * n_opt for h in hits]
    benchmark.extra_info.update(
        {
            "points": len(vectors),
            "n_opt": n_opt,
            "runs": RUNS,
            "min_normalised_pr": round(min(normalised), 3),
            "max_normalised_pr": round(max(normalised), 3),
        }
    )
    # Theta(1): every point's ball is hit with probability bounded away
    # from zero and from a large constant times 1/n_opt.
    assert min(normalised) > 0.05
    assert max(normalised) < 25
