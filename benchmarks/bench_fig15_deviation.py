"""Figure 15: maxDevNm and stdDevNm across datasets.

Benchmarks the repeated-trial loop at a reduced run count and reports the
deviation metrics together with their projection to the paper's run
counts (valid for an unbiased sampler, enforced by the chi-square check).
Paper bar: stdDevNm <= 0.1 and maxDevNm <= 0.2 at 200k-500k runs.
"""

from __future__ import annotations

import pytest

from repro.metrics.trials import sampling_distribution

RUNS = 150


@pytest.mark.parametrize("name", ["Seeds", "Seeds-pl", "Yacht", "Yacht-pl"])
def test_deviation(benchmark, catalog, name):
    dataset = catalog[name]

    result = benchmark.pedantic(
        lambda: sampling_distribution(dataset, runs=RUNS, seed=11),
        rounds=1,
        iterations=1,
    )
    report = result.report
    paper_runs = 500_000
    projected = report.std_dev_nm * (RUNS / paper_runs) ** 0.5
    benchmark.extra_info.update(
        {
            "dataset": name,
            "runs": RUNS,
            "std_dev_nm": round(report.std_dev_nm, 4),
            "max_dev_nm": round(report.max_dev_nm, 4),
            "noise_floor": round(report.noise_floor, 4),
            "excess_over_floor": round(report.excess_over_floor, 3),
            "projected_std_at_paper_runs": round(projected, 4),
            "chi2_p_value": round(report.p_value, 4),
        }
    )
    # Unbiasedness: the measured deviation is explained by sampling noise
    # and the projection lands under the paper's 0.1 bar.
    assert report.excess_over_floor < 1.5
    assert projected <= 0.1
