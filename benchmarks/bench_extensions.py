"""Benchmarks for the beyond-the-paper extensions.

Not figures of the paper - these cover the future-work LSH sampler, the
distributed merge, robust heavy hitters and checkpointing, so regressions
in the extension layers are caught alongside the reproduction benches.
"""

from __future__ import annotations

import random

import pytest

from repro.core.heavy_hitters import RobustHeavyHitters
from repro.core.infinite_window import RobustL0SamplerIW
from repro.distributed.coordinator import DistributedRobustSampler
from repro.metric_space.lsh import BandedLSH, MinHash
from repro.metric_space.metrics import jaccard_distance
from repro.metric_space.sampler import RobustLSHSampler
from repro.persist import sampler_from_state, sampler_to_state


def test_lsh_sampler_pass(benchmark):
    gen = random.Random(0)
    bases = [frozenset(gen.sample(range(10**6), 25)) for _ in range(150)]
    stream = []
    for base in bases:
        stream.append(base)
        for _ in range(3):
            mutated = set(base)
            mutated.discard(gen.choice(sorted(mutated)))
            mutated.add(gen.randrange(10**6, 2 * 10**6))
            stream.append(frozenset(mutated))
    gen.shuffle(stream)

    def stream_pass():
        rng = random.Random(1)
        lsh = BandedLSH(
            lambda: MinHash(rng=rng), bands=8, rows_per_band=2, seed=1
        )
        sampler = RobustLSHSampler(lsh, jaccard_distance, alpha=0.3, seed=1)
        for item in stream:
            sampler.insert(item)
        return sampler

    sampler = benchmark(stream_pass)
    benchmark.extra_info.update(
        {
            "true_groups": len(bases),
            "tracked_groups": sampler.num_candidate_groups,
            "f0_estimate": sampler.estimate_f0(),
        }
    )
    # Ignored groups are (correctly) untracked at rates above 1, so the
    # tracked count is below the true count; the F0 estimate must land in
    # the right range, and LSH misses may split at most a few groups.
    assert sampler.num_candidate_groups <= len(bases) * 1.15
    assert len(bases) / 2 <= sampler.estimate_f0() <= len(bases) * 2


def test_distributed_merge(benchmark):
    coordinator = DistributedRobustSampler(
        1.0, 1, num_shards=4, seed=2, expected_stream_length=4000
    )
    rng = random.Random(2)
    stream = [
        (25.0 * rng.randrange(500) + rng.uniform(0, 0.4),)
        for _ in range(4000)
    ]
    coordinator.scatter(stream, rng=rng)

    merged = benchmark(coordinator.merged_sampler)
    benchmark.extra_info.update(
        {
            "shards": coordinator.num_shards,
            "communication_words": coordinator.communication_words(),
            "merged_groups": merged.num_candidate_groups,
            "f0_estimate": merged.estimate_f0(),
        }
    )
    assert merged.accept_size > 0


def test_heavy_hitters_pass(benchmark):
    rng = random.Random(3)
    stream = [(0.0 + rng.uniform(0, 0.3),) for _ in range(800)]
    stream += [(40.0 * rng.randint(1, 300),) for _ in range(1600)]
    rng.shuffle(stream)

    def stream_pass():
        hitters = RobustHeavyHitters(1.0, 1, epsilon=0.05, seed=3)
        hitters.extend(stream)
        return hitters

    hitters = benchmark(stream_pass)
    hits = hitters.heavy_hitters(phi=0.2)
    benchmark.extra_info.update(
        {
            "stream": len(stream),
            "tracked": hitters.num_tracked,
            "top_count": hits[0].count if hits else 0,
        }
    )
    assert hits and abs(hits[0].representative.vector[0]) < 1.0


@pytest.mark.parametrize("records", [100, 400])
def test_checkpoint_round_trip(benchmark, records):
    sampler = RobustL0SamplerIW(
        1.0, 2, seed=4, expected_stream_length=records * 4
    )
    rng = random.Random(4)
    for _ in range(records * 4):
        sampler.insert(
            (25.0 * rng.randrange(records), 25.0 * rng.randrange(records))
        )

    def round_trip():
        return sampler_from_state(sampler_to_state(sampler))

    restored = benchmark(round_trip)
    benchmark.extra_info.update(
        {
            "tracked_records": restored.num_candidate_groups,
            "rate": restored.rate_denominator,
        }
    )
    assert restored.num_candidate_groups == sampler.num_candidate_groups
