"""Remote-executor overhead benchmark: backend round-trips per chunk.

The ``remote`` executor ships every chunk through a ``StateBackend``
(encode + ``put_many`` group commit on the way out; lease heartbeat,
CAS state commit and chunk delete on the worker side), so unlike the
shared-memory ``process`` transport its cost is dominated by backend
round-trips, not IPC.  This bench measures that cost explicitly:

- serial pipeline rate (the executor-equivalence reference),
- remote pipeline rate over the in-memory backend (protocol cost with
  a free transport) and over the file backend (protocol cost plus
  fsync-disciplined durability),
- the derived **per-chunk round-trip overhead** in microseconds -
  ``(remote_elapsed - serial_elapsed) / chunks`` - which is the number
  a deployment sizes ``batch_size`` against: make chunks big enough
  that folding one dwarfs its round trip.

Every remote run is fingerprint-checked against the serial pipeline
(the executor-equivalence contract; chaos coverage lives in
``tests/test_remote_executor.py``).  There is **no floor gate**: local
worker threads share the submitter's GIL, so the bench records the
overhead trajectory instead of demanding a speedup the topology cannot
deliver.  Results merge into the ``"remote"`` section of
``BENCH_pipeline.json`` (the rest of the record belongs to
``bench_throughput.py``, which rewrites the file wholesale - rerun
this bench after it to refresh the remote section).
"""

from __future__ import annotations

import argparse
import gc
import json
import random
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.api.specs import PipelineSpec  # noqa: E402
from repro.engine import BatchPipeline, state_fingerprint  # noqa: E402


def make_stream(n: int, seed: int, groups: int = 512):
    """Grouped 2-d points: near-duplicates within alpha, many groups."""
    rng = random.Random(seed)
    return [
        (
            25.0 * rng.randrange(groups) + rng.uniform(0.0, 0.4),
            25.0 * rng.randrange(groups) + rng.uniform(0.0, 0.4),
        )
        for _ in range(n)
    ]


def _rate(n: int, elapsed: float) -> float:
    return n / elapsed if elapsed > 0 else float("inf")


def _spec(points, batch_size, seed, shards, **executor_knobs):
    return PipelineSpec(
        alpha=1.0,
        dim=len(points[0]),
        seed=seed,
        num_shards=shards,
        batch_size=batch_size,
        **executor_knobs,
    )


def _time_pipeline(spec, points, reference=None):
    """Time extend+sync with startup off the clock; return (rate, stats).

    ``sync()`` is inside the timed region on purpose: for the remote
    executor the drain *is* the transport cost coming home (polling the
    per-shard ``(consumed_seq, state)`` commits), exactly what a real
    deployment pays before it can query.
    """
    pipeline = BatchPipeline(spec=spec)
    pipeline._ensure_executor()  # worker startup outside the timed region
    try:
        gc.collect()
        start = time.perf_counter()
        pipeline.extend(points)
        pipeline.sync()
        elapsed = time.perf_counter() - start
        fingerprint = state_fingerprint(pipeline)
        if reference is not None and fingerprint != reference:
            raise AssertionError(
                "executor-equivalence violation: remote pipeline "
                f"({spec.executor}) diverged from the serial one"
            )
        stats = pipeline.executor_stats()
    finally:
        pipeline.close()
    return _rate(len(points), elapsed), elapsed, fingerprint, stats


def bench_remote(points, batch_size, seed, shards, repeats):
    """Serial vs remote (memory + file backends); best-of-N rates."""
    results: dict[str, dict] = {}
    serial_rate, serial_elapsed, reference = 0.0, float("inf"), None

    for _ in range(max(1, repeats)):
        rate, elapsed, fingerprint, _ = _time_pipeline(
            _spec(points, batch_size, seed, shards, executor="serial"), points
        )
        serial_rate = max(serial_rate, rate)
        serial_elapsed = min(serial_elapsed, elapsed)
        reference = fingerprint

    flavours: dict[str, dict] = {
        # Zero-config: private in-memory backend + one local worker
        # thread.  Pure protocol cost - the transport itself is a dict.
        "memory": dict(executor="remote", num_workers=1),
    }
    with tempfile.TemporaryDirectory(prefix="bench-remote-") as tmp:
        flavours["file"] = dict(
            executor="remote",
            num_workers=1,
            queue_backend="file",
            queue_path=tmp,
            queue_key="bench",
        )
        for name, knobs in flavours.items():
            best_rate, best_elapsed, best_stats = 0.0, float("inf"), None
            for _ in range(max(1, repeats)):
                rate, elapsed, _, stats = _time_pipeline(
                    _spec(points, batch_size, seed, shards, **knobs),
                    points,
                    reference=reference,
                )
                if rate > best_rate:
                    best_rate, best_elapsed, best_stats = rate, elapsed, stats
            chunks = max(1, best_stats.get("chunks", 0))
            round_trip_us = (best_elapsed - serial_elapsed) / chunks * 1e6
            results[name] = {
                "pts_per_sec": round(best_rate),
                "speedup": round(best_rate / serial_rate, 3),
                "chunks": best_stats.get("chunks", 0),
                "array_chunks": best_stats.get("array_chunks", 0),
                "pickle_chunks": best_stats.get("pickle_chunks", 0),
                "bytes_out": best_stats.get("bytes_out", 0),
                "flushes": best_stats.get("flushes", 0),
                "round_trip_us_per_chunk": round(round_trip_us, 1),
                "backend_ops": best_stats.get("backend_ops", {}),
            }
    return serial_rate, results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--points", type=int, default=100_000)
    parser.add_argument("--batch-size", type=int, default=4096)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small fast run (CI): 20k points, 1 repeat",
    )
    parser.add_argument(
        "--json-out",
        default=str(
            Path(__file__).resolve().parents[1] / "BENCH_pipeline.json"
        ),
        help="pipeline perf record to merge the remote section into",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.points, args.repeats = min(args.points, 20_000), 1

    points = make_stream(args.points, args.seed)
    serial_rate, results = bench_remote(
        points, args.batch_size, args.seed, args.shards, args.repeats
    )

    print(
        f"pipeline executor=serial n={len(points)} "
        f"{serial_rate:11,.0f} pts/s   (reference)"
    )
    for name, result in results.items():
        print(
            f"pipeline executor=remote backend={name} n={len(points)} "
            f"{result['pts_per_sec']:11,.0f} pts/s   "
            f"speedup {result['speedup']:5.2f}x   "
            f"{result['round_trip_us_per_chunk']:8.1f} us/chunk round trip"
        )
    print("state equivalence: OK (remote == serial fingerprints)")

    out = Path(args.json_out)
    try:
        record = json.loads(out.read_text()) if out.is_file() else {}
    except (OSError, ValueError):
        record = {}
    record["remote"] = {
        "mode": "smoke" if args.smoke else "full",
        "points": len(points),
        "batch_size": args.batch_size,
        "num_shards": args.shards,
        "repeats": args.repeats,
        "num_workers": 1,
        "serial_pts_per_sec": round(serial_rate),
        "backends": results,
    }
    try:
        out.write_text(json.dumps(record, indent=2) + "\n")
        print(f"remote perf record merged into {out}")
    except OSError as error:  # read-only checkouts shouldn't fail the run
        print(f"note: could not write {out}: {error}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
