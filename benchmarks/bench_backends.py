#!/usr/bin/env python
"""State-backend benchmark: op throughput and checkpoint overhead.

Measures, per backend flavour:

* raw ``put`` / ``get`` / ``compare_and_swap`` operations per second on
  envelope-sized payloads (the serving layer's eviction/restore unit);
* the end-to-end cost of a crash-safe resumable pipeline run
  (:func:`repro.engine.resumable.run_resumable`) against the same run
  with no checkpointing, at several ``checkpoint_every`` settings - the
  number an operator actually needs to pick a checkpoint cadence.

No committed floor: the file backend's durability discipline (fsync +
rename + directory fsync per commit) has hardware-dependent cost, so
gating it would gate the runner's disk.  The run *does* assert the
correctness side effects: every resumable run must fingerprint-equal
the plain run, whatever the cadence.

Redis joins when ``REPRO_REDIS_URL`` is set and reachable; otherwise
the flavour is reported as skipped.

Usage::

    PYTHONPATH=src python benchmarks/bench_backends.py [--ops 2000]
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import tempfile
import time

from repro.api import PipelineSpec
from repro.backends import FileBackend, MemoryBackend
from repro.engine import BatchPipeline, run_resumable, state_fingerprint
from repro.errors import CASConflictError


def make_backends(root: str):
    """(name, backend) pairs for every locally available flavour."""
    flavours = [
        ("memory", MemoryBackend()),
        ("file", FileBackend(os.path.join(root, "file-backend"))),
    ]
    url = os.environ.get("REPRO_REDIS_URL")
    if url:
        from repro.backends import HAVE_REDIS, RedisBackend

        if HAVE_REDIS:
            backend = RedisBackend(url, namespace="repro-bench")
            try:
                backend.ping()
            except Exception:
                print("# redis: unreachable, skipped")
            else:
                backend.clear()
                flavours.append(("redis", backend))
        else:
            print("# redis: package not installed, skipped")
    else:
        print("# redis: REPRO_REDIS_URL not set, skipped")
    return flavours


def bench_ops(backend, ops: int, payload: bytes) -> dict[str, float]:
    """puts/gets/CAS per second on one hot key plus a key spread."""
    start = time.perf_counter()
    for i in range(ops):
        backend.put(f"spread-{i % 64}", payload)
    put_rate = ops / (time.perf_counter() - start)

    start = time.perf_counter()
    for i in range(ops):
        backend.get(f"spread-{i % 64}")
    get_rate = ops / (time.perf_counter() - start)

    version = backend.put("cas-key", payload)
    start = time.perf_counter()
    for _ in range(ops):
        try:
            version = backend.compare_and_swap("cas-key", version, payload)
        except CASConflictError:  # pragma: no cover - single writer
            version = backend.get_versioned("cas-key")[1]
    cas_rate = ops / (time.perf_counter() - start)
    return {
        "put_per_s": round(put_rate),
        "get_per_s": round(get_rate),
        "cas_per_s": round(cas_rate),
    }


def bench_resumable(backend, name: str) -> dict[str, float]:
    """Checkpointed vs plain pipeline run on one seeded stream."""
    rng = random.Random(4242)
    stream = [
        (25.0 * rng.randrange(12) + rng.uniform(0, 0.4),)
        for _ in range(6000)
    ]
    spec = PipelineSpec(alpha=1.0, dim=1, seed=7, num_shards=4, batch_size=64)

    start = time.perf_counter()
    plain = BatchPipeline(spec=spec)
    plain.extend(stream)
    plain.close()
    plain_seconds = time.perf_counter() - start
    reference = state_fingerprint(plain)

    results: dict[str, float] = {"plain_s": round(plain_seconds, 4)}
    for every in (1, 8, 32):
        key = f"bench-{name}-{every}"
        backend.delete(key)
        start = time.perf_counter()
        resumed = run_resumable(
            spec, stream, backend, key, checkpoint_every=every
        )
        seconds = time.perf_counter() - start
        assert state_fingerprint(resumed) == reference, (
            f"{name}: resumable run diverged at checkpoint_every={every}"
        )
        backend.delete(key)
        results[f"every_{every}_s"] = round(seconds, 4)
        results[f"every_{every}_overhead_x"] = round(
            seconds / plain_seconds, 3
        )
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--ops", type=int, default=2000, help="operations per raw-op timing"
    )
    args = parser.parse_args(argv)
    payload = b"x" * 4096  # a typical small checkpoint envelope
    report: dict[str, dict] = {}
    with tempfile.TemporaryDirectory() as root:
        for name, backend in make_backends(root):
            row = bench_ops(backend, args.ops, payload)
            row.update(bench_resumable(backend, name))
            report[name] = row
            print(f"{name}: {json.dumps(row)}")
            if name == "redis":
                backend.clear()
            backend.close()
    print(json.dumps({"backends": report}, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
