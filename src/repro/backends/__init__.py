"""Pluggable state backends: versioned blobs with atomic CAS.

Where durable state lives once it leaves a summary object.  The
:class:`StateBackend` contract (``put``/``get``/``get_versioned``/
``delete``/``keys``/O(1) ``count`` plus atomic
``compare_and_swap(key, expected_version, data)``) is what the serving
layer's envelope spills (:mod:`repro.service.stores`), checkpoint
persistence (:mod:`repro.persist`) and crash-safe resumable pipelines
(:mod:`repro.engine.resumable`) all sit on; three implementations ship:

* :class:`MemoryBackend` - a dict under a mutex (the default);
* :class:`FileBackend` - one fsynced, atomically renamed file per key,
  with cross-process ``flock`` CAS and stale-temp sweeping;
* :class:`RedisBackend` - shared storage with Lua-scripted CAS, gated
  behind the ``[redis]`` extra (importable without it; constructing
  raises :class:`~repro.errors.BackendUnavailableError`).

The two invariants every backend is tested against
(``tests/test_backends.py``): a reader always sees a **complete
old-or-new value** (never torn, wherever a writer was killed), and of
two racing ``compare_and_swap`` writers **exactly one wins** while the
loser gets :class:`~repro.errors.CASConflictError` with nothing
applied.  See ``docs/ARCHITECTURE.md`` §State backends.

Two batch/coordination extensions ride on the same contract:
``put_many`` (group commit - the file backend pays one directory fsync
per batch instead of per key) and :mod:`repro.backends.lease`
(CAS-backed shard leases with heartbeats, the claim protocol of the
remote pipeline workers).
"""

from repro.backends.base import BACKEND_NAMES, StateBackend, make_backend
from repro.backends.file import FileBackend, atomic_write_bytes
from repro.backends.lease import (
    Lease,
    acquire_lease,
    read_lease,
    release_lease,
    renew_lease,
)
from repro.backends.memory import MemoryBackend
from repro.backends.redis import HAVE_REDIS, RedisBackend

__all__ = [
    "BACKEND_NAMES",
    "HAVE_REDIS",
    "FileBackend",
    "Lease",
    "MemoryBackend",
    "RedisBackend",
    "StateBackend",
    "acquire_lease",
    "atomic_write_bytes",
    "make_backend",
    "read_lease",
    "release_lease",
    "renew_lease",
]
