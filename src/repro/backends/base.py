"""The :class:`StateBackend` contract: versioned blobs with atomic CAS.

A state backend is where durable state lives when it leaves a summary
object: evicted tenants' checkpoint envelopes (the serving layer),
mid-stream pipeline checkpoints (crash-safe resume), and anything else
that round-trips through :func:`repro.persist.dumps_summary` bytes.
The interface is deliberately tiny - five blob methods plus one atomic
primitive - so a database, object store or cache can slot in behind it
(the ``fastlimit`` ``backends/`` shape the ROADMAP points at).

The contract every implementation must honour (enforced for every
backend by ``tests/test_backends.py``):

**Versioning.**  Each key carries a monotonically increasing integer
version: ``0`` while absent, ``1`` after the first write, ``+1`` per
successful write.  :meth:`StateBackend.get_versioned` returns the data
together with the version that wrote it.

**Atomic compare-and-swap.**  ``compare_and_swap(key, expected, data)``
commits ``data`` (returning the new version) iff the key's current
version equals ``expected``; otherwise it raises
:class:`~repro.errors.CASConflictError` and applies *nothing*.
``expected_version=0`` is create-only: it succeeds only while the key
is absent, so N racing writers electing themselves owner of a fresh
key see exactly one winner.  CAS is atomic against every other writer
of the same backend storage - other threads, other processes on the
same directory, other clients of the same Redis - never "last write
wins on a torn interleaving".

**Crash safety.**  A reader sees a complete old value or a complete
new value, never a torn mix, no matter where a writer was killed.  For
the file backend that means fsync-before-rename discipline; for memory
and Redis it falls out of single-object replacement.

**O(1) count.**  :meth:`StateBackend.count` must not enumerate storage
(the ``/metrics`` scrape path reads it per request).

Deleting a key resets its version to 0, so delete-then-recreate can
make a stale CAS succeed (classic ABA); keys that are CAS-contended
should be deleted only once their writers are done.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import CASConflictError, ParameterError

__all__ = ["BACKEND_NAMES", "StateBackend", "make_backend"]

#: Backend flavours :func:`make_backend` accepts.
BACKEND_NAMES = ("memory", "file", "redis")


class StateBackend:
    """Versioned blob storage with atomic compare-and-swap.

    Subclasses implement the underscore hooks (``_put``, ``_get_versioned``,
    ``_compare_and_swap``, ``_delete``, ``_keys``, ``_count``); the public
    methods wrap them with operation counters so every backend reports
    the same :meth:`stats` shape to ``/metrics``.
    """

    def __init__(self) -> None:
        self._stats = {
            "puts": 0,
            "gets": 0,
            "deletes": 0,
            "cas_attempts": 0,
            "cas_conflicts": 0,
        }

    # ------------------------------------------------------------------ #
    # public surface (counts operations, delegates to the hooks)
    # ------------------------------------------------------------------ #

    def put(self, key: str, data: bytes) -> int:
        """Unconditionally store ``data``; returns the new version."""
        self._stats["puts"] += 1
        return self._put(key, bytes(data))

    def put_many(
        self, items: Iterable[tuple[str, bytes]]
    ) -> dict[str, int]:
        """Store many ``(key, data)`` pairs; returns ``{key: version}``.

        Semantically identical to calling :meth:`put` per pair, in
        order (a repeated key is written repeatedly and the *last*
        version is reported), but backends may amortise their
        per-write overhead across the batch: the file backend group
        commits - one directory fsync per batch instead of one per key
        - which is what lifts its ~2k puts/s fsync bound for batch
        writers like the remote executor's chunk queue.  Durability is
        batch-granular there (the whole batch is durable once
        ``put_many`` returns; a crash mid-batch may persist any prefix
        of it), while each individual value stays torn-free.
        """
        pairs = [(key, bytes(data)) for key, data in items]
        self._stats["puts"] += len(pairs)
        return self._put_many(pairs)

    def get(self, key: str) -> bytes | None:
        """The blob under ``key``, or ``None`` while absent."""
        versioned = self.get_versioned(key)
        return None if versioned is None else versioned[0]

    def get_versioned(self, key: str) -> tuple[bytes, int] | None:
        """``(data, version)`` under ``key``, or ``None`` while absent.

        The version is what a writer passes back to
        :meth:`compare_and_swap` to update only if nobody else wrote in
        between.
        """
        self._stats["gets"] += 1
        return self._get_versioned(key)

    def compare_and_swap(
        self, key: str, expected_version: int, data: bytes
    ) -> int:
        """Commit ``data`` iff the key still holds ``expected_version``.

        Returns the new version on success.  Raises
        :class:`~repro.errors.CASConflictError` (carrying the actual
        version) on a lost race, with nothing applied.
        ``expected_version=0`` succeeds only while the key is absent.
        """
        if expected_version < 0:
            raise ParameterError(
                f"expected_version must be >= 0, got {expected_version}"
            )
        self._stats["cas_attempts"] += 1
        try:
            return self._compare_and_swap(key, expected_version, bytes(data))
        except CASConflictError:
            self._stats["cas_conflicts"] += 1
            raise

    def delete(self, key: str) -> bool:
        """Drop ``key``; returns whether it existed (version resets to 0)."""
        self._stats["deletes"] += 1
        return self._delete(key)

    def keys(self) -> Iterator[str]:
        """Iterate the keys currently stored."""
        return self._keys()

    def count(self) -> int:
        """Number of keys stored - O(1), never an enumeration."""
        return self._count()

    def close(self) -> None:
        """Release whatever the backend holds (connections, fds)."""

    def stats(self) -> dict[str, int]:
        """Operation counters (the ``/metrics`` ``store`` section)."""
        return dict(self._stats)

    def __contains__(self, key: str) -> bool:
        return self.get_versioned(key) is not None

    def __len__(self) -> int:
        return self.count()

    # ------------------------------------------------------------------ #
    # implementation hooks
    # ------------------------------------------------------------------ #

    def _put(self, key: str, data: bytes) -> int:
        raise NotImplementedError

    def _put_many(self, pairs: list[tuple[str, bytes]]) -> dict[str, int]:
        return {key: self._put(key, data) for key, data in pairs}

    def _get_versioned(self, key: str) -> tuple[bytes, int] | None:
        raise NotImplementedError

    def _compare_and_swap(
        self, key: str, expected_version: int, data: bytes
    ) -> int:
        raise NotImplementedError

    def _delete(self, key: str) -> bool:
        raise NotImplementedError

    def _keys(self) -> Iterator[str]:
        raise NotImplementedError

    def _count(self) -> int:
        raise NotImplementedError


def make_backend(
    name: str,
    *,
    path: str | None = None,
    url: str | None = None,
    namespace: str = "repro",
) -> StateBackend:
    """Construct a backend by flavour name.

    ``"memory"`` takes no options; ``"file"`` requires ``path`` (the
    directory); ``"redis"`` requires ``url`` (``redis://host:port/db``)
    and raises :class:`~repro.errors.BackendUnavailableError` when the
    ``redis`` package is not installed (install the ``[redis]`` extra).
    """
    if name == "memory":
        if path is not None or url is not None:
            raise ParameterError(
                "the memory backend takes neither path nor url"
            )
        from repro.backends.memory import MemoryBackend

        return MemoryBackend()
    if name == "file":
        if path is None:
            raise ParameterError("the file backend requires a path")
        if url is not None:
            raise ParameterError("the file backend takes no url")
        from repro.backends.file import FileBackend

        return FileBackend(path)
    if name == "redis":
        if url is None:
            raise ParameterError("the redis backend requires a url")
        if path is not None:
            raise ParameterError("the redis backend takes no path")
        from repro.backends.redis import RedisBackend

        return RedisBackend(url, namespace=namespace)
    raise ParameterError(
        f"unknown backend {name!r}; choose from {', '.join(BACKEND_NAMES)}"
    )
