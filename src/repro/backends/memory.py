"""In-process state backend: a dict under one lock.

The default backend, and what most tests drive.  State survives
eviction but not the process; CAS is made atomic across threads by a
plain mutex (the critical section is two dict operations, so the lock
is never hot enough to shard).
"""

from __future__ import annotations

import threading
from typing import Iterator

from repro.backends.base import StateBackend
from repro.errors import CASConflictError

__all__ = ["MemoryBackend"]


class MemoryBackend(StateBackend):
    """Versioned blobs in a plain dict (per-process)."""

    def __init__(self) -> None:
        super().__init__()
        self._entries: dict[str, tuple[bytes, int]] = {}
        self._mutex = threading.Lock()

    def _put(self, key: str, data: bytes) -> int:
        with self._mutex:
            _, version = self._entries.get(key, (b"", 0))
            version += 1
            self._entries[key] = (data, version)
            return version

    def _get_versioned(self, key: str) -> tuple[bytes, int] | None:
        with self._mutex:
            return self._entries.get(key)

    def _compare_and_swap(
        self, key: str, expected_version: int, data: bytes
    ) -> int:
        with self._mutex:
            _, current = self._entries.get(key, (b"", 0))
            if current != expected_version:
                raise CASConflictError(
                    key,
                    expected_version=expected_version,
                    actual_version=current,
                )
            version = current + 1
            self._entries[key] = (data, version)
            return version

    def _delete(self, key: str) -> bool:
        with self._mutex:
            return self._entries.pop(key, None) is not None

    def _keys(self) -> Iterator[str]:
        # Sorted like every other backend: key order is part of the
        # contract, so callers never depend on a flavour's storage order.
        with self._mutex:
            return iter(sorted(self._entries))

    def _count(self) -> int:
        return len(self._entries)
