"""Durable file-per-key state backend: fsync, atomic rename, flock CAS.

One file per key under a directory, written with the full
crash-safety discipline the :class:`~repro.backends.base.StateBackend`
contract demands:

* payloads land in a **per-call unique temp file**
  (``<name>.tmp.<pid>.<counter>``) in the same directory, so two
  processes writing the same key can never clobber each other's
  half-written temp;
* the temp is **flushed and fsynced before** ``os.replace`` and the
  **directory entry is fsynced after**, so after a power cut a reader
  finds either the complete old file or the complete new one - the
  rename itself is atomic, and neither side of it can be torn;
* stale ``*.tmp.*`` files (a writer died between write and rename) are
  **swept on init** - but only those whose embedded writer pid is gone,
  so opening a directory never deletes a live writer's in-flight temp;
* cross-process mutations serialise on an ``flock``\\ ed ``.lock`` file
  (plus an in-process mutex), which is what makes
  :meth:`~repro.backends.base.StateBackend.compare_and_swap`'s
  read-check-replace atomic between processes sharing the directory.

On-disk format: ``<hex(utf8(key))>.blob`` holding a 12-byte header
(magic ``RSB1`` + big-endian ``u64`` version) followed by the payload -
header and payload travel in one file, so version and data can never
disagree after a crash.  Legacy ``<hex>.json`` files (the pre-backend
:class:`~repro.service.stores.FileEnvelopeStore` layout: bare payload)
are still readable as version 1 and are upgraded on the next write.

``count()`` is served from a counter maintained under the lock (O(1),
no ``listdir``), initialised by one scan at construction; it tracks
every mutation made through *any* handle in this process and through
this handle cross-process, which is exact under the
one-service-per-spill-directory deployment the serving layer uses.
"""

from __future__ import annotations

import itertools
import os
import struct
import threading
from typing import Iterator

from repro.backends.base import StateBackend
from repro.errors import BackendError, CASConflictError

try:  # pragma: no cover - fcntl exists on every POSIX we run on
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None  # type: ignore[assignment]

__all__ = ["FileBackend", "atomic_write_bytes"]

#: Header magic of versioned blob files.
_MAGIC = b"RSB1"
_HEADER = struct.Struct(">4sQ")  # magic + version

#: Suffix of versioned blob files.
_BLOB_SUFFIX = ".blob"

#: Suffix of legacy (pre-backend, unversioned) envelope files.
_LEGACY_SUFFIX = ".json"

#: Process-wide temp-name counter: two threads (or two stores) writing
#: the same key in one process still get distinct temp files.
_tmp_counter = itertools.count()


def _stage_replace(path: str, data: bytes) -> None:
    """Fsync ``data`` into a temp file and rename it over ``path``.

    The file itself can never be read torn afterwards, but the rename
    is not yet durable: the caller owes the directory an fsync
    (:func:`_fsync_directory`) before claiming durability - which is
    exactly the hook group commit exploits, paying that fsync once per
    batch instead of once per key.
    """
    tmp = f"{path}.tmp.{os.getpid()}.{next(_tmp_counter)}"
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.remove(tmp)
        except OSError:
            pass
        raise


def atomic_write_bytes(path: str, data: bytes) -> None:
    """Write ``data`` to ``path`` so a crash leaves old-or-new, never torn.

    The write goes to a same-directory temp file with a per-call unique
    name, is flushed and fsynced, then atomically renamed over ``path``;
    finally the directory entry is fsynced so the rename itself survives
    power loss.  This is the primitive beneath the file backend and
    :func:`repro.persist.dump_summary`.
    """
    _stage_replace(path, data)
    _fsync_directory(os.path.dirname(path) or ".")


def _pid_alive(pid: int) -> bool:
    """Whether a process with this pid currently exists."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except (PermissionError, OSError):  # pragma: no cover - not ours
        return True
    return True


def _fsync_directory(directory: str) -> None:
    """fsync a directory so a just-renamed entry is durable."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - e.g. directories not openable
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


class FileBackend(StateBackend):
    """Versioned blobs as files under ``directory`` (see module docs)."""

    def __init__(self, directory: str) -> None:
        super().__init__()
        self._directory = str(directory)
        os.makedirs(self._directory, exist_ok=True)
        self._mutex = threading.RLock()
        self._lock_path = os.path.join(self._directory, ".lock")
        self._lock_fd: int | None = None
        self._sweep_stale_tmp()
        self._known = self._scan_keys()

    @property
    def directory(self) -> str:
        return self._directory

    # ------------------------------------------------------------------ #
    # paths and init scan
    # ------------------------------------------------------------------ #

    def _path(self, key: str) -> str:
        return os.path.join(
            self._directory, key.encode("utf-8").hex() + _BLOB_SUFFIX
        )

    def _legacy_path(self, key: str) -> str:
        return os.path.join(
            self._directory, key.encode("utf-8").hex() + _LEGACY_SUFFIX
        )

    def _sweep_stale_tmp(self) -> None:
        """Drop temp files left by writers that died before their rename.

        Temp names embed the writer's pid (``<name>.tmp.<pid>.<n>``),
        and only temps whose writer is *gone* are swept: a second
        process opening the directory while a live writer is mid-write
        must not delete the bytes out from under its rename.
        Unparseable temp names are treated as debris.
        """
        for name in os.listdir(self._directory):
            marker = name.rfind(".tmp.")
            if marker < 0:
                continue
            try:
                pid = int(name[marker + len(".tmp."):].split(".")[0])
            except ValueError:
                pid = None
            if pid is not None and pid != os.getpid() and _pid_alive(pid):
                continue  # a live writer owns this temp
            if pid == os.getpid():
                continue  # another store handle in this process
            try:
                os.remove(os.path.join(self._directory, name))
            except OSError:  # pragma: no cover - racing sweeper
                pass

    def _scan_keys(self) -> set[str]:
        """The one enumeration: seed the O(1) counter at construction."""
        keys: set[str] = set()
        for name in os.listdir(self._directory):
            for suffix in (_BLOB_SUFFIX, _LEGACY_SUFFIX):
                if not name.endswith(suffix):
                    continue
                stem = name[: -len(suffix)]
                try:
                    keys.add(bytes.fromhex(stem).decode("utf-8"))
                except (ValueError, UnicodeDecodeError):
                    pass  # not one of ours
        return keys

    # ------------------------------------------------------------------ #
    # locking (in-process mutex + cross-process flock)
    # ------------------------------------------------------------------ #

    def _acquire(self) -> None:
        self._mutex.acquire()
        if fcntl is None:  # pragma: no cover - non-POSIX
            return
        if self._lock_fd is None:
            self._lock_fd = os.open(
                self._lock_path, os.O_RDWR | os.O_CREAT, 0o644
            )
        fcntl.flock(self._lock_fd, fcntl.LOCK_EX)

    def _release(self) -> None:
        if fcntl is not None and self._lock_fd is not None:
            fcntl.flock(self._lock_fd, fcntl.LOCK_UN)
        self._mutex.release()

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #

    def _read(self, key: str) -> tuple[bytes, int] | None:
        """(payload, version) straight off disk, or None while absent."""
        try:
            with open(self._path(key), "rb") as handle:
                raw = handle.read()
        except FileNotFoundError:
            try:
                with open(self._legacy_path(key), "rb") as handle:
                    return handle.read(), 1
            except FileNotFoundError:
                return None
        if len(raw) < _HEADER.size or not raw.startswith(_MAGIC):
            raise BackendError(
                f"blob file for key {key!r} has a corrupt header"
            )
        _, version = _HEADER.unpack_from(raw)
        return raw[_HEADER.size :], version

    def _current_version(self, key: str) -> int:
        found = self._read(key)
        return 0 if found is None else found[1]

    # ------------------------------------------------------------------ #
    # StateBackend hooks
    # ------------------------------------------------------------------ #

    def _write(
        self,
        key: str,
        data: bytes,
        version: int,
        *,
        sync_directory: bool = True,
    ) -> None:
        """Commit one versioned blob (lock held by the caller).

        ``sync_directory=False`` defers the directory fsync to the
        caller - the group-commit path of :meth:`_put_many`.
        """
        payload = _HEADER.pack(_MAGIC, version) + data
        if sync_directory:
            atomic_write_bytes(self._path(key), payload)
        else:
            _stage_replace(self._path(key), payload)
        legacy = self._legacy_path(key)
        if os.path.exists(legacy):  # upgraded: the blob file now wins
            try:
                os.remove(legacy)
            except OSError:  # pragma: no cover - racing upgrader
                pass
        self._known.add(key)

    def _put(self, key: str, data: bytes) -> int:
        self._acquire()
        try:
            version = self._current_version(key) + 1
            self._write(key, data, version)
            return version
        finally:
            self._release()

    def _put_many(self, pairs: list[tuple[str, bytes]]) -> dict[str, int]:
        """Group commit: every key staged under one lock, one directory
        fsync for the whole batch (the file backend is otherwise
        fsync-bound at ~2k puts/s).  Each file is still written with
        the fsync-before-rename discipline, so no individual value can
        be read torn; what becomes batch-granular is *durability* -
        a crash before the final directory fsync may keep any prefix
        of the batch's renames."""
        if not pairs:
            return {}
        self._acquire()
        try:
            versions: dict[str, int] = {}
            for key, data in pairs:
                if key not in versions:
                    versions[key] = self._current_version(key)
                versions[key] += 1
                self._write(key, data, versions[key], sync_directory=False)
            return versions
        finally:
            try:
                _fsync_directory(self._directory)
            finally:
                self._release()

    def _get_versioned(self, key: str) -> tuple[bytes, int] | None:
        # Reads need no lock: os.replace is atomic, so any read sees a
        # complete old or complete new file.
        return self._read(key)

    def _compare_and_swap(
        self, key: str, expected_version: int, data: bytes
    ) -> int:
        self._acquire()
        try:
            current = self._current_version(key)
            if current != expected_version:
                raise CASConflictError(
                    key,
                    expected_version=expected_version,
                    actual_version=current,
                )
            version = current + 1
            self._write(key, data, version)
            return version
        finally:
            self._release()

    def _delete(self, key: str) -> bool:
        self._acquire()
        try:
            existed = False
            for path in (self._path(key), self._legacy_path(key)):
                try:
                    os.remove(path)
                    existed = True
                except FileNotFoundError:
                    pass
            self._known.discard(key)
            return existed
        finally:
            self._release()

    def _keys(self) -> Iterator[str]:
        return iter(sorted(self._known))

    def _count(self) -> int:
        return len(self._known)

    def close(self) -> None:
        with self._mutex:
            if self._lock_fd is not None:
                os.close(self._lock_fd)
                self._lock_fd = None
