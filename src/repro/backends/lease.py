"""CAS-backed shard leases with heartbeats, on any :class:`StateBackend`.

A *lease* is a tiny JSON entry (``{"worker": id, "beat": wall-clock}``)
under one backend key, mutated only through
:meth:`~repro.backends.base.StateBackend.compare_and_swap`.  It is how
remote pipeline workers claim exclusive ownership of a shard's chunk
queue without any coordinator process:

* **Acquire** is create-only CAS (``expected_version=0``): N racing
  workers electing themselves owner of a fresh shard see exactly one
  winner.
* **Renew** (the heartbeat) CAS-bumps the entry with a fresh ``beat``
  timestamp at the version the holder last observed.  A holder whose
  renewal raises :class:`~repro.errors.CASConflictError` has *lost* the
  lease (someone stole it) and must abandon the shard.
* **Steal** is acquire over a *stale* lease - one whose ``beat`` is
  older than the ttl, meaning the holder died or wedged - done by CAS
  at the stale entry's current version, so two would-be adopters race
  safely: one wins, the other conflicts.

The lease alone is advisory (a SIGSTOPped holder cannot observe that it
lost); what makes a stale holder *harmless* is the separate CAS fence
on the data it would publish - see ``repro/engine/queue.py`` and the
"Remote workers" section of ``docs/ARCHITECTURE.md``.  Timestamps are
``time.time()`` wall clock: adopters on different machines compare
their clock against the holder's, so ttls should comfortably exceed
cross-machine clock skew.

Enforced by ``tests/test_remote_executor.py`` (acquire/steal/renew
races, plus the chaos suite built on top).
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, replace

from repro.backends.base import StateBackend
from repro.errors import CASConflictError

__all__ = [
    "Lease",
    "acquire_lease",
    "read_lease",
    "release_lease",
    "renew_lease",
]


@dataclass(frozen=True)
class Lease:
    """A held lease: the proof-of-ownership a holder passes to renew."""

    key: str
    worker_id: str
    version: int  #: backend version of the entry this holder wrote
    beat: float  #: wall-clock time of the holder's last heartbeat


def _encode(worker_id: str, beat: float) -> bytes:
    return json.dumps({"worker": worker_id, "beat": beat}).encode("utf-8")


def read_lease(
    backend: StateBackend, key: str
) -> tuple[str, float, int] | None:
    """``(worker_id, beat, version)`` of the live entry, or ``None``."""
    found = backend.get_versioned(key)
    if found is None:
        return None
    data, version = found
    try:
        entry = json.loads(data.decode("utf-8"))
        return str(entry["worker"]), float(entry["beat"]), version
    except (ValueError, KeyError, UnicodeDecodeError):
        # Debris under the lease key: treat as infinitely stale.
        return "", 0.0, version


def acquire_lease(
    backend: StateBackend,
    key: str,
    worker_id: str,
    *,
    ttl: float,
    now: float | None = None,
) -> Lease | None:
    """Claim ``key``, stealing it if its heartbeat is older than ``ttl``.

    Returns the held :class:`Lease`, or ``None`` when someone else
    holds it freshly (or won the race to it).  Re-acquiring a lease
    this worker already holds refreshes it.
    """
    beat = time.time() if now is None else now
    current = read_lease(backend, key)
    if current is None:
        expected = 0
    else:
        holder, held_beat, version = current
        fresh = (beat - held_beat) <= ttl
        if holder != worker_id and fresh:
            return None
        expected = version
    try:
        version = backend.compare_and_swap(
            key, expected, _encode(worker_id, beat)
        )
    except CASConflictError:
        return None  # lost the adoption race
    return Lease(key=key, worker_id=worker_id, version=version, beat=beat)


def renew_lease(
    backend: StateBackend, lease: Lease, *, now: float | None = None
) -> Lease:
    """Heartbeat: bump ``beat`` at the held version.

    Raises :class:`~repro.errors.CASConflictError` when the lease was
    stolen in between - the holder must abandon the shard without
    publishing anything further.
    """
    beat = time.time() if now is None else now
    version = backend.compare_and_swap(
        lease.key, lease.version, _encode(lease.worker_id, beat)
    )
    return replace(lease, version=version, beat=beat)


def release_lease(backend: StateBackend, lease: Lease) -> bool:
    """Hand the shard back: mark the entry instantly stale.

    The entry is CAS-overwritten with a ``beat`` of 0 (never deleted -
    deletion resets the version to 0 and reopens the ABA window the
    contract warns about), so any adopter may take it immediately.
    Returns whether this holder still owned it.
    """
    try:
        backend.compare_and_swap(
            lease.key, lease.version, _encode("", 0.0)
        )
    except CASConflictError:
        return False
    return True
