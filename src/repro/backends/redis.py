"""Redis state backend: shared storage with Lua-scripted atomic CAS.

The scale-out backend: every worker/service process pointing at the
same Redis sees one version history per key, so pipeline checkpoints
and tenant spills can cross machine boundaries.  Each key is a Redis
hash (``<ns>:k:<hex(key)>`` with fields ``v`` - version - and ``d`` -
payload) plus membership in a registry set ``<ns>:keys`` that serves
``keys()``/``count()`` (``SCARD`` is O(1)).

Atomicity comes from Lua: Redis runs a script as one uninterruptible
unit, so the version check and the write inside
:data:`_CAS_SCRIPT` can never interleave with another client - the
same pattern ``fastlimit`` uses for its rate-limit buckets
(``scripts/*.lua``).  ``put``/``delete`` are scripted too, keeping the
registry set and the hash in step.

The module imports cleanly without the ``redis`` package; constructing
:class:`RedisBackend` then raises
:class:`~repro.errors.BackendUnavailableError` pointing at the
``[redis]`` extra, and the test matrix skips the flavour.
"""

from __future__ import annotations

from typing import Iterator

from repro.backends.base import StateBackend
from repro.errors import BackendError, BackendUnavailableError, CASConflictError

try:  # pragma: no cover - exercised via HAVE_REDIS both ways in CI
    import redis as _redis
except ImportError:  # pragma: no cover
    _redis = None  # type: ignore[assignment]

#: Whether the ``redis`` client library is importable.
HAVE_REDIS = _redis is not None

__all__ = ["HAVE_REDIS", "RedisBackend"]

#: KEYS[1]=hash KEYS[2]=registry set, ARGV[1]=payload ARGV[2]=member.
_PUT_SCRIPT = """
local v = redis.call('HINCRBY', KEYS[1], 'v', 1)
redis.call('HSET', KEYS[1], 'd', ARGV[1])
redis.call('SADD', KEYS[2], ARGV[2])
return v
"""

#: KEYS as above, ARGV[1]=expected version ARGV[2]=payload ARGV[3]=member.
#: Returns {1, new_version} on success, {0, actual_version} on conflict.
_CAS_SCRIPT = """
local cur = redis.call('HGET', KEYS[1], 'v')
local curv = 0
if cur then curv = tonumber(cur) end
if curv ~= tonumber(ARGV[1]) then return {0, curv} end
local v = curv + 1
redis.call('HSET', KEYS[1], 'v', v, 'd', ARGV[2])
redis.call('SADD', KEYS[2], ARGV[3])
return {1, v}
"""

#: KEYS as above, ARGV[1]=member.  Returns whether the key existed.
_DELETE_SCRIPT = """
local existed = redis.call('DEL', KEYS[1])
redis.call('SREM', KEYS[2], ARGV[1])
return existed
"""


class RedisBackend(StateBackend):
    """Versioned blobs in Redis under a namespace (see module docs).

    Parameters
    ----------
    url:
        ``redis://host:port/db`` connection URL (ignored when ``client``
        is given).
    namespace:
        Prefix isolating this backend's keys from everything else in
        the database (and from other namespaced backends).
    client:
        An existing ``redis.Redis`` client to reuse (tests, pooling).
    """

    def __init__(
        self,
        url: str | None = None,
        *,
        namespace: str = "repro",
        client=None,
    ) -> None:
        if _redis is None:
            raise BackendUnavailableError(
                "the redis backend needs the redis package (install the "
                "[redis] extra: pip install 'repro[redis]')"
            )
        super().__init__()
        if client is None:
            if url is None:
                raise BackendError("RedisBackend needs a url or a client")
            client = _redis.Redis.from_url(url)
        self._client = client
        self._namespace = namespace
        self._registry = f"{namespace}:keys"
        self._put_script = client.register_script(_PUT_SCRIPT)
        self._cas_script = client.register_script(_CAS_SCRIPT)
        self._delete_script = client.register_script(_DELETE_SCRIPT)

    def _hash_key(self, key: str) -> str:
        # Hex like the file backend: any key string round-trips and the
        # namespace separator can never be spoofed by a key.
        return f"{self._namespace}:k:{key.encode('utf-8').hex()}"

    def ping(self) -> bool:
        """Round-trip to the server (connection check for tests/CLI)."""
        return bool(self._client.ping())

    # ------------------------------------------------------------------ #
    # StateBackend hooks
    # ------------------------------------------------------------------ #

    def _put(self, key: str, data: bytes) -> int:
        return int(
            self._put_script(
                keys=[self._hash_key(key), self._registry],
                args=[data, key.encode("utf-8")],
            )
        )

    def _get_versioned(self, key: str) -> tuple[bytes, int] | None:
        data, version = self._client.hmget(self._hash_key(key), "d", "v")
        if data is None or version is None:
            return None
        return bytes(data), int(version)

    def _compare_and_swap(
        self, key: str, expected_version: int, data: bytes
    ) -> int:
        ok, version = self._cas_script(
            keys=[self._hash_key(key), self._registry],
            args=[expected_version, data, key.encode("utf-8")],
        )
        if not int(ok):
            raise CASConflictError(
                key,
                expected_version=expected_version,
                actual_version=int(version),
            )
        return int(version)

    def _delete(self, key: str) -> bool:
        return bool(
            int(
                self._delete_script(
                    keys=[self._hash_key(key), self._registry],
                    args=[key.encode("utf-8")],
                )
            )
        )

    def _keys(self) -> Iterator[str]:
        members = self._client.smembers(self._registry)
        return iter(sorted(bytes(m).decode("utf-8") for m in members))

    def _count(self) -> int:
        return int(self._client.scard(self._registry))

    def clear(self) -> None:
        """Drop every key in this namespace (test teardown helper)."""
        for key in list(self._keys()):
            self.delete(key)

    def close(self) -> None:
        self._client.close()
