"""Checking the sparsity assumptions (Definitions 1.1-1.2).

Used by tests and by users who want to verify that a chosen ``alpha`` makes
their dataset well-separated before trusting the uniformity guarantee of
Theorem 2.4 (on general data the weaker Theorem 3.1 guarantee applies).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.partition.natural import connected_components_within, separation_gap

Vector = Sequence[float]


@dataclass(frozen=True, slots=True)
class SparsityReport:
    """Outcome of a sparsity analysis at a given ``alpha``.

    Attributes
    ----------
    alpha:
        The distance threshold analysed.
    max_intra:
        Largest distance between two points of the same group (the
        effective alpha of Definition 1.1).
    min_inter:
        Smallest distance between points of different groups (the effective
        beta); ``inf`` when there is a single group.
    num_groups:
        Number of groups in the transitive-closure partition.
    """

    alpha: float
    max_intra: float
    min_inter: float
    num_groups: int

    @property
    def separation_ratio(self) -> float:
        """``beta / alpha`` per Definition 1.1 (``inf`` when one group)."""
        if self.max_intra == 0.0:
            return math.inf
        return self.min_inter / self.max_intra

    @property
    def well_separated(self) -> bool:
        """Definition 1.2: the groups obey diameter alpha / gap > 2*alpha."""
        return self.max_intra <= self.alpha and self.min_inter > 2.0 * self.alpha


def dataset_sparsity(points: Sequence[Vector], alpha: float) -> SparsityReport:
    """Analyse the dataset's sparsity at threshold ``alpha``.

    >>> report = dataset_sparsity([(0.0,), (0.1,), (5.0,)], alpha=0.5)
    >>> report.num_groups, report.well_separated
    (2, True)
    """
    components = connected_components_within(points, alpha)
    max_intra, min_inter = separation_gap(points, alpha)
    return SparsityReport(
        alpha=alpha,
        max_intra=max_intra,
        min_inter=min_inter,
        num_groups=len(components),
    )


def validate_sparse(
    points: Sequence[Vector],
    alpha: float,
    beta: float,
) -> bool:
    """Check Definition 1.1: every distance is <= alpha or > beta.

    >>> validate_sparse([(0.0,), (0.2,), (3.0,)], alpha=0.5, beta=2.0)
    True
    >>> validate_sparse([(0.0,), (1.0,)], alpha=0.5, beta=2.0)
    False
    """
    report = dataset_sparsity(points, alpha)
    if report.max_intra > alpha:
        return False
    return report.min_inter > beta
