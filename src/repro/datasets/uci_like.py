"""Synthetic stand-ins for the UCI Yacht and Seeds datasets.

The evaluation uses two small UCI datasets that cannot be downloaded in
this offline environment.  What the algorithm consumes is only the
datasets' *geometry after rescaling* (cardinality, dimensionality, rough
cluster structure); these generators reproduce exactly those properties:

* **Yacht hydrodynamics**: 308 points in R^7.  The real table is a designed
  experiment - six hull-geometry factors taking a handful of levels each
  plus a continuous resistance response.  The stand-in draws six columns
  from small discrete level sets and one heavy-tailed continuous column,
  then adds tiny jitter so all pairwise distances are positive (the paper's
  rescaling step requires a non-zero minimum distance).
* **Seeds**: 210 points in R^8 from three wheat varieties (70 each).  The
  stand-in is a three-component anisotropic Gaussian mixture.

See DESIGN.md "Substitutions" for why this preserves the evaluated
behaviour.
"""

from __future__ import annotations

import math
import random

Vector = tuple[float, ...]

_YACHT_N = 308
_YACHT_DIM = 7
_SEEDS_N = 210
_SEEDS_DIM = 8
_SEEDS_VARIETIES = 3


def yacht_like(*, rng: random.Random | None = None) -> list[Vector]:
    """308 points in R^7 mimicking the Yacht hydrodynamics table.

    >>> pts = yacht_like(rng=random.Random(0))
    >>> len(pts), len(pts[0])
    (308, 7)
    """
    rng = rng if rng is not None else random.Random()
    # Level sets loosely modeled on the real design factors (longitudinal
    # center of buoyancy, prismatic coefficient, ..., Froude number).
    levels = [
        [-5.0, -2.3, 0.0, 2.3, 5.0],
        [0.53, 0.546, 0.565, 0.574, 0.6],
        [4.34, 4.78, 5.1],
        [2.81, 3.32, 3.64, 3.99, 4.24],
        [2.73, 3.15, 3.51],
        [0.125, 0.15, 0.175, 0.2, 0.225, 0.25, 0.3, 0.35, 0.4, 0.45],
    ]
    points = []
    for _ in range(_YACHT_N):
        row = [rng.choice(level_set) for level_set in levels]
        # Residuary resistance: grows steeply with the Froude number.
        froude = row[-1]
        resistance = 0.5 * math.exp(2.2 * froude * rng.uniform(0.85, 1.15))
        row.append(resistance)
        # Jitter guarantees distinct points (designed experiments repeat
        # factor combinations; exact duplicates would break rescaling).
        points.append(tuple(v + rng.gauss(0.0, 1e-4) for v in row))
    assert len(points[0]) == _YACHT_DIM
    return points


def seeds_like(*, rng: random.Random | None = None) -> list[Vector]:
    """210 points in R^8 mimicking the Seeds dataset (3 varieties x 70).

    >>> pts = seeds_like(rng=random.Random(0))
    >>> len(pts), len(pts[0])
    (210, 8)
    """
    rng = rng if rng is not None else random.Random()
    # Per-variety mean vectors and coordinate spreads, shaped after the real
    # geometric kernel measurements (area, perimeter, compactness, ...).
    means = [
        (14.3, 14.2, 0.88, 5.5, 3.2, 2.7, 5.1, 1.0),
        (18.3, 16.1, 0.88, 6.1, 3.7, 3.6, 6.0, 2.0),
        (11.9, 13.2, 0.85, 5.2, 2.8, 4.8, 5.1, 3.0),
    ]
    spreads = (1.2, 0.6, 0.02, 0.25, 0.18, 1.1, 0.25, 0.1)
    per_variety = _SEEDS_N // _SEEDS_VARIETIES
    points = []
    for mean in means:
        for _ in range(per_variety):
            points.append(
                tuple(m + rng.gauss(0.0, s) for m, s in zip(mean, spreads))
            )
    assert len(points) == _SEEDS_N and len(points[0]) == _SEEDS_DIM
    return points
