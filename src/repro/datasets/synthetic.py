"""Synthetic base point clouds.

Everything returns plain lists of float tuples (the library's vector
type).  numpy is used internally where it simplifies the generation.
"""

from __future__ import annotations

import math
import random

import numpy as np

from repro.errors import ParameterError

Vector = tuple[float, ...]


def _to_tuples(array: np.ndarray) -> list[Vector]:
    return [tuple(float(x) for x in row) for row in array]


def random_points(
    n: int, dim: int, *, rng: random.Random | None = None
) -> list[Vector]:
    """``n`` points uniform in ``(0, 1)^dim`` - the paper's RandD base sets.

    >>> pts = random_points(5, 3, rng=random.Random(0))
    >>> len(pts), len(pts[0])
    (5, 3)
    """
    if n < 0:
        raise ParameterError(f"n must be >= 0, got {n}")
    rng = rng if rng is not None else random.Random()
    return [tuple(rng.random() for _ in range(dim)) for _ in range(n)]


def gaussian_clusters(
    n: int,
    dim: int,
    num_clusters: int,
    *,
    spread: float = 0.05,
    rng: random.Random | None = None,
) -> tuple[list[Vector], list[int]]:
    """Points from a Gaussian mixture with uniformly placed centers.

    Returns ``(points, cluster labels)``.  Cluster sizes differ by at most
    one.  Used by the UCI-like stand-ins.
    """
    if num_clusters < 1:
        raise ParameterError(f"num_clusters must be >= 1, got {num_clusters}")
    rng = rng if rng is not None else random.Random()
    centers = [tuple(rng.random() for _ in range(dim)) for _ in range(num_clusters)]
    points: list[Vector] = []
    labels: list[int] = []
    for i in range(n):
        label = i % num_clusters
        center = centers[label]
        points.append(tuple(c + rng.gauss(0.0, spread) for c in center))
        labels.append(label)
    return points, labels


def well_separated_clusters(
    num_groups: int,
    points_per_group: int,
    dim: int,
    *,
    alpha: float = 1.0,
    separation: float = 4.0,
    rng: random.Random | None = None,
) -> tuple[list[Vector], list[int], float]:
    """A dataset that is well-separated *by construction*.

    Group centers sit on a scaled integer lattice so that any two centers
    are at least ``separation * alpha`` apart; members are placed within
    ``alpha / 2`` of their center, giving intra-group diameter <= alpha and
    inter-group distance > (separation - 1) * alpha.

    Returns ``(points, labels, alpha)``.

    >>> pts, labels, a = well_separated_clusters(3, 4, 2, rng=random.Random(1))
    >>> len(pts), len(set(labels)), a
    (12, 3, 1.0)
    """
    if separation <= 3.0:
        # Centers are `separation * alpha` apart and members wander alpha/2
        # from them, so the inter-group gap is (separation - 1) * alpha;
        # well-separatedness needs that gap to exceed 2 * alpha.
        raise ParameterError(
            f"separation must exceed 3 for well-separatedness, got {separation}"
        )
    rng = rng if rng is not None else random.Random()
    # Lattice of candidate centers, subsampled without replacement.
    per_axis = max(2, math.ceil(num_groups ** (1.0 / dim)) + 1)
    lattice = []
    needed = num_groups
    # Enumerate lattice nodes lazily in mixed-radix order; stop once we have
    # enough candidates (shuffled afterwards for randomness).
    total_nodes = per_axis**dim
    candidates = min(total_nodes, max(needed * 4, needed))
    chosen_indices = rng.sample(range(total_nodes), candidates)
    for flat in chosen_indices:
        node = []
        for _ in range(dim):
            node.append(flat % per_axis)
            flat //= per_axis
        lattice.append(tuple(node))
        if len(lattice) >= needed:
            break
    if len(lattice) < needed:
        raise ParameterError(
            f"cannot place {num_groups} groups in dimension {dim}; "
            "increase dim or reduce num_groups"
        )
    scale = separation * alpha
    centers = [tuple(scale * c for c in node) for node in lattice[:needed]]

    radius = alpha / 2.0
    points: list[Vector] = []
    labels: list[int] = []
    for g, center in enumerate(centers):
        for _ in range(points_per_group):
            direction = [rng.gauss(0.0, 1.0) for _ in range(dim)]
            norm = math.sqrt(sum(x * x for x in direction)) or 1.0
            length = radius * rng.random()
            points.append(
                tuple(c + length * x / norm for c, x in zip(center, direction))
            )
            labels.append(g)
    return points, labels, alpha


def overlapping_chain(
    num_links: int,
    dim: int,
    *,
    alpha: float = 1.0,
    step_fraction: float = 0.75,
    points_per_link: int = 3,
    rng: random.Random | None = None,
) -> tuple[list[Vector], float]:
    """A *general* (non-well-separated) dataset: a chain of overlapping blobs.

    Consecutive blob centers are ``step_fraction * alpha`` apart along the
    first axis, so distances hop between "within alpha" and "slightly above
    alpha" and no natural partition exists.  Exercises Theorem 3.1.

    Returns ``(points, alpha)`` - there is deliberately no ground-truth
    labelling; use :mod:`repro.partition` to compute reference partitions.
    """
    if not 0 < step_fraction < 2:
        raise ParameterError(
            f"step_fraction must be in (0, 2), got {step_fraction}"
        )
    rng = rng if rng is not None else random.Random()
    jitter = alpha / 20.0
    points: list[Vector] = []
    for link in range(num_links):
        base = link * step_fraction * alpha
        for _ in range(points_per_link):
            coords = [base + rng.uniform(-jitter, jitter)]
            coords.extend(rng.uniform(-jitter, jitter) for _ in range(dim - 1))
            points.append(tuple(coords))
    return points, alpha


def sparse_high_dim(
    num_groups: int,
    points_per_group: int,
    dim: int,
    *,
    alpha: float = 1.0,
    rng: random.Random | None = None,
    ratio_margin: float = 1.5,
) -> tuple[list[Vector], list[int], float]:
    """An ``(alpha, beta)``-sparse dataset with ``beta > dim**1.5 * alpha``.

    Exercises the high-dimensional sampler of Section 4.  Centers are
    random orthant corners of a hypercube with side ``ratio_margin *
    dim**1.5 * alpha * 2`` (pairwise center distance is then at least twice
    the required beta); members lie within ``alpha / 2`` of their center.

    Returns ``(points, labels, alpha)``.
    """
    rng = rng if rng is not None else random.Random()
    beta = dim**1.5 * alpha
    side = ratio_margin * 2.0 * beta
    seen: set[tuple[int, ...]] = set()
    centers = []
    attempts = 0
    while len(centers) < num_groups:
        corner = tuple(rng.randrange(2) for _ in range(dim))
        attempts += 1
        if attempts > 100 * num_groups + 100:
            raise ParameterError(
                f"cannot place {num_groups} sparse groups in dimension {dim}"
            )
        if corner in seen:
            continue
        seen.add(corner)
        centers.append(tuple(side * c for c in corner))
    points: list[Vector] = []
    labels: list[int] = []
    radius = alpha / 2.0
    for g, center in enumerate(centers):
        for _ in range(points_per_group):
            direction = np.random.default_rng(rng.randrange(2**32)).normal(size=dim)
            norm = float(np.linalg.norm(direction)) or 1.0
            length = radius * rng.random()
            points.append(
                tuple(float(c + length * d / norm) for c, d in zip(center, direction))
            )
            labels.append(g)
    return points, labels, alpha
