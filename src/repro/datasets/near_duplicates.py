"""The paper's two near-duplicate transformations (Section 6.1).

Given a base dataset, the paper first rescales it so the minimum pairwise
distance is 1, then, around each base point ``x_i``, adds ``k_i``
near-duplicates:

1. draw ``z`` with each coordinate uniform in ``(0, 1)``;
2. draw a length ``l`` uniform in ``(0, 1 / (2 * d**1.5))`` and rescale
   ``z`` to length ``l``;
3. emit ``y = x_i + z_hat``.

In the first transformation ``k_i`` is uniform in ``{1, ..., 100}``; in the
second (power-law) the points are randomly ordered and the i-th point
(1-based) receives ``ceil(n / i)`` duplicates.

Each base point plus its duplicates forms a group of diameter less than
``1 / d**1.5``, while distinct groups stay at distance at least
``1 - 1 / d**1.5`` apart, so the result is well-separated with threshold
``alpha = 1 / d**1.5``.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Sequence

from repro.errors import ParameterError
from repro.geometry.distance import squared_distance

Vector = tuple[float, ...]


def rescale_min_distance(
    vectors: Sequence[Sequence[float]], *, target: float = 1.0
) -> list[Vector]:
    """Scale the dataset so the minimum pairwise distance equals ``target``.

    Quadratic scan; the paper's base sets have at most 500 points.

    >>> rescale_min_distance([(0.0,), (0.5,), (2.0,)])
    [(0.0,), (1.0,), (4.0,)]
    """
    n = len(vectors)
    if n < 2:
        return [tuple(float(x) for x in v) for v in vectors]
    min_sq = math.inf
    for i in range(n):
        vi = vectors[i]
        for j in range(i + 1, n):
            min_sq = min(min_sq, squared_distance(vi, vectors[j]))
    if min_sq == 0.0:
        raise ParameterError(
            "dataset contains exact duplicates; minimum distance rescaling "
            "is undefined (deduplicate the base set first)"
        )
    scale = target / math.sqrt(min_sq)
    return [tuple(float(x) * scale for x in v) for v in vectors]


def _near_duplicate(
    center: Sequence[float], max_length: float, rng: random.Random
) -> Vector:
    """One noisy copy of ``center`` per the paper's three-step recipe."""
    dim = len(center)
    z = [rng.random() for _ in range(dim)]
    norm = math.sqrt(sum(x * x for x in z))
    if norm == 0.0:  # pragma: no cover - probability zero
        z[0] = 1.0
        norm = 1.0
    length = rng.uniform(0.0, max_length)
    return tuple(c + length * x / norm for c, x in zip(center, z))


def uniform_counts(
    n: int, *, rng: random.Random, max_copies: int = 100
) -> list[int]:
    """Duplicate counts for the first transformation: ``k_i ~ U{1..100}``."""
    return [rng.randint(1, max_copies) for _ in range(n)]


def power_law_counts(n: int, *, rng: random.Random) -> list[int]:
    """Duplicate counts for the power-law transformation.

    The paper randomly orders the points and gives the i-th (1-based) point
    ``ceil(n * i**-1)`` duplicates; this returns those counts already
    permuted back to the dataset's original point order.
    """
    order = list(range(n))
    rng.shuffle(order)
    counts = [0] * n
    for rank, point_index in enumerate(order, start=1):
        counts[point_index] = math.ceil(n / rank)
    return counts


def add_near_duplicates(
    base_vectors: Sequence[Sequence[float]],
    *,
    rng: random.Random,
    counts: Sequence[int] | Callable[[int], Sequence[int]] | None = None,
    rescale: bool = True,
) -> tuple[list[Vector], list[int], float]:
    """Apply the paper's near-duplicate transformation.

    Parameters
    ----------
    base_vectors:
        The clean dataset; each of its points becomes a group seed.
    rng:
        Randomness source for counts, directions and lengths.
    counts:
        Per-point duplicate counts, or a callable ``n -> counts``.  Defaults
        to the uniform ``U{1..100}`` scheme.
    rescale:
        Whether to first rescale to minimum pairwise distance 1 (the paper
        always does; disable only for pre-scaled data).

    Returns
    -------
    ``(vectors, labels, alpha)`` where ``labels[i]`` is the group (base
    point) of ``vectors[i]`` and ``alpha = 1 / d**1.5`` is the separation
    threshold the resulting dataset is guaranteed to satisfy.  Base points
    are included, each followed by its duplicates (shuffle before
    streaming, as the paper does).
    """
    base = (
        rescale_min_distance(base_vectors)
        if rescale
        else [tuple(float(x) for x in v) for v in base_vectors]
    )
    n = len(base)
    if n == 0:
        return [], [], 0.0
    dim = len(base[0])
    if counts is None:
        count_list = uniform_counts(n, rng=rng)
    elif callable(counts):
        count_list = list(counts(n))
    else:
        count_list = list(counts)
    if len(count_list) != n:
        raise ParameterError(
            f"counts has length {len(count_list)}, expected {n}"
        )

    max_length = 1.0 / (2.0 * dim**1.5)
    alpha = 1.0 / dim**1.5

    vectors: list[Vector] = []
    labels: list[int] = []
    for group, (center, k) in enumerate(zip(base, count_list)):
        vectors.append(center)
        labels.append(group)
        for _ in range(k):
            vectors.append(_near_duplicate(center, max_length, rng))
            labels.append(group)
    return vectors, labels, alpha
