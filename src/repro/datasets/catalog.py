"""The eight evaluation datasets of Section 6.1, ready to stream.

``paper_datasets`` materialises Rand5, Rand20, Yacht, Seeds and their
power-law variants (suffixed ``-pl``) with ground-truth group labels and
the separation threshold ``alpha`` implied by the near-duplicate transform.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

from repro.datasets.near_duplicates import (
    add_near_duplicates,
    power_law_counts,
    uniform_counts,
)
from repro.datasets.synthetic import random_points
from repro.datasets.uci_like import seeds_like, yacht_like
from repro.streams.point import StreamPoint

Vector = tuple[float, ...]


@dataclass(frozen=True)
class LabeledDataset:
    """A noisy dataset with ground-truth group labels.

    Attributes
    ----------
    name:
        Dataset identifier (matches the paper, e.g. ``"Rand5-pl"``).
    vectors:
        All points, base points interleaved with their near-duplicates.
    labels:
        ``labels[i]`` is the group id of ``vectors[i]``.
    alpha:
        Distance threshold under which the dataset is well-separated.
    """

    name: str
    vectors: tuple[Vector, ...]
    labels: tuple[int, ...]
    alpha: float

    @property
    def dim(self) -> int:
        """Dimensionality of the points."""
        return len(self.vectors[0]) if self.vectors else 0

    @property
    def num_points(self) -> int:
        """Stream length m."""
        return len(self.vectors)

    @property
    def num_groups(self) -> int:
        """Ground-truth F0 (number of groups)."""
        return len(set(self.labels))

    def shuffled_stream(
        self, rng: random.Random
    ) -> tuple[list[StreamPoint], list[int]]:
        """Random arrival order (as the paper streams data), with labels.

        Returns ``(points, labels)`` where ``labels[i]`` is the group of
        ``points[i]`` and arrival indices run 0..m-1.
        """
        order = list(range(len(self.vectors)))
        rng.shuffle(order)
        points = [
            StreamPoint(self.vectors[j], i) for i, j in enumerate(order)
        ]
        labels = [self.labels[j] for j in order]
        return points, labels

    def iter_points(self) -> Iterator[StreamPoint]:
        """The points in stored (unshuffled) order as a stream."""
        for i, vector in enumerate(self.vectors):
            yield StreamPoint(vector, i)


_BASES: dict[str, Callable[[random.Random], list[Vector]]] = {
    "Rand5": lambda rng: random_points(500, 5, rng=rng),
    "Rand20": lambda rng: random_points(500, 20, rng=rng),
    "Yacht": lambda rng: yacht_like(rng=rng),
    "Seeds": lambda rng: seeds_like(rng=rng),
}


def _build(
    name: str,
    base: Sequence[Vector],
    *,
    power_law: bool,
    rng: random.Random,
) -> LabeledDataset:
    counts_fn = power_law_counts if power_law else uniform_counts
    counts = counts_fn(len(base), rng=rng)
    vectors, labels, alpha = add_near_duplicates(base, rng=rng, counts=counts)
    return LabeledDataset(
        name=name,
        vectors=tuple(vectors),
        labels=tuple(labels),
        alpha=alpha,
    )


def make_dataset(
    name: str, *, seed: int = 0, power_law: bool = False
) -> LabeledDataset:
    """Build one of the paper's base datasets with a near-dup transform.

    ``name`` is one of ``Rand5``, ``Rand20``, ``Yacht``, ``Seeds``.
    """
    if name not in _BASES:
        raise KeyError(f"unknown dataset {name!r}; choose from {sorted(_BASES)}")
    # Deterministic per-(seed, name, variant) stream of randomness; str hash
    # randomisation makes built-in hash() unsuitable here.
    material = f"{seed}:{name}:{int(power_law)}".encode()
    rng = random.Random(int.from_bytes(material, "little"))
    base = _BASES[name](rng)
    full_name = f"{name}-pl" if power_law else name
    return _build(full_name, base, power_law=power_law, rng=rng)


def paper_datasets(
    *, seed: int = 0, names: Sequence[str] | None = None
) -> dict[str, LabeledDataset]:
    """All eight evaluation datasets keyed by name.

    >>> data = paper_datasets(seed=1, names=["Seeds"])
    >>> sorted(data)
    ['Seeds', 'Seeds-pl']
    """
    selected = list(names) if names is not None else list(_BASES)
    catalog: dict[str, LabeledDataset] = {}
    for name in selected:
        plain = make_dataset(name, seed=seed, power_law=False)
        power = make_dataset(name, seed=seed, power_law=True)
        catalog[plain.name] = plain
        catalog[power.name] = power
    return catalog
