"""Dataset generators reproducing Section 6.1 of the paper.

Real UCI downloads are unavailable offline, so Yacht and Seeds are
replaced by synthetic stand-ins with the same cardinality, dimensionality
and cluster structure (see DESIGN.md, "Substitutions").  The two
near-duplicate transformations (uniform counts and power-law counts) are
implemented exactly as described.
"""

from repro.datasets.catalog import LabeledDataset, paper_datasets
from repro.datasets.near_duplicates import (
    add_near_duplicates,
    power_law_counts,
    rescale_min_distance,
    uniform_counts,
)
from repro.datasets.synthetic import (
    gaussian_clusters,
    overlapping_chain,
    random_points,
    well_separated_clusters,
)
from repro.datasets.uci_like import seeds_like, yacht_like
from repro.datasets.validation import dataset_sparsity, validate_sparse

__all__ = [
    "LabeledDataset",
    "paper_datasets",
    "random_points",
    "gaussian_clusters",
    "well_separated_clusters",
    "overlapping_chain",
    "yacht_like",
    "seeds_like",
    "rescale_min_distance",
    "add_near_duplicates",
    "uniform_counts",
    "power_law_counts",
    "dataset_sparsity",
    "validate_sparse",
]
