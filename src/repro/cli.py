"""Command-line interface: robust sampling over point files.

Reads a stream of points from CSV (one point per line, comma-separated
coordinates) or JSON-lines (one JSON array per line) and runs one of the
library's summaries over it:

* ``sample`` - k robust distinct samples (infinite or sliding window);
* ``count``  - robust F0 estimate;
* ``heavy``  - robust heavy hitters.

Examples
--------
::

    python -m repro.cli sample --alpha 0.5 data.csv
    python -m repro.cli sample --alpha 0.5 --window 1000 --k 3 data.csv
    python -m repro.cli count  --alpha 0.5 --epsilon 0.1 data.csv
    python -m repro.cli heavy  --alpha 0.5 --phi 0.05 data.csv
    cat data.csv | python -m repro.cli sample --alpha 0.5 -

Ingestion always runs through the batched engine (``--batch-size``
points at a time; see :mod:`repro.engine`); batching is state-equivalent
to per-point ingestion, so it only affects throughput.  ``--seed`` makes
a run bit-reproducible: one master generator derives the sampler
construction seed and the query randomness (see ``_derived_rngs``).
"""

from __future__ import annotations

import argparse
import itertools
import json
import random
import sys
from typing import Iterator, Sequence, TextIO

from repro.core.base import DEFAULT_BATCH_SIZE
from repro.core.f0_infinite import RobustF0EstimatorIW
from repro.core.heavy_hitters import RobustHeavyHitters
from repro.core.ksample import KDistinctSampler
from repro.errors import ReproError
from repro.streams.windows import SequenceWindow


def _parse_lines(handle: TextIO, fmt: str) -> Iterator[tuple[float, ...]]:
    for line_number, line in enumerate(handle, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            if fmt == "jsonl":
                values = json.loads(line)
            else:
                values = line.split(",")
            yield tuple(float(x) for x in values)
        except (ValueError, json.JSONDecodeError) as error:
            raise SystemExit(
                f"line {line_number}: cannot parse point ({error})"
            ) from error


def _open_input(path: str) -> TextIO:
    if path == "-":
        return sys.stdin
    return open(path, "r", encoding="utf-8")


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("input", help="input file, or - for stdin")
    parser.add_argument(
        "--alpha", type=float, required=True,
        help="near-duplicate distance threshold",
    )
    parser.add_argument(
        "--format", choices=["csv", "jsonl"], default="csv",
        help="input format (default csv)",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="random seed; one seeded generator drives sampler "
        "construction and query randomness, so runs with the same seed "
        "and input are bit-reproducible (regardless of --batch-size)",
    )
    parser.add_argument(
        "--batch-size", type=int, default=DEFAULT_BATCH_SIZE,
        help="points per ingestion batch (state-equivalent to per-point "
        f"ingestion, just faster; default {DEFAULT_BATCH_SIZE})",
    )


def _derived_rngs(args) -> tuple[int, random.Random]:
    """One master generator -> (sampler seed, query rng).

    Threading every source of randomness through a single seeded
    ``random.Random`` makes whole CLI runs reproducible end to end; the
    differential CLI tests rely on it.
    """
    master = random.Random(args.seed)
    sampler_seed = master.randrange(2**62)
    query_rng = random.Random(master.randrange(2**62))
    return sampler_seed, query_rng


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli",
        description="Robust distinct sampling over noisy point streams.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    sample = commands.add_parser("sample", help="robust distinct samples")
    _add_common(sample)
    sample.add_argument("--k", type=int, default=1, help="samples to draw")
    sample.add_argument(
        "--replacement", action="store_true",
        help="sample groups with replacement",
    )
    sample.add_argument(
        "--window", type=int, default=None,
        help="restrict to the last N points (sequence-based window)",
    )

    count = commands.add_parser("count", help="robust distinct count (F0)")
    _add_common(count)
    count.add_argument(
        "--epsilon", type=float, default=0.2, help="target relative accuracy"
    )
    count.add_argument(
        "--copies", type=int, default=9, help="median-of-copies count"
    )

    heavy = commands.add_parser("heavy", help="robust heavy hitters")
    _add_common(heavy)
    heavy.add_argument(
        "--phi", type=float, default=0.05,
        help="report groups above this frequency fraction",
    )
    heavy.add_argument(
        "--epsilon", type=float, default=0.01, help="counter resolution"
    )
    return parser


def _run_sample(args, points: Iterator[Sequence[float]], out: TextIO) -> None:
    first = next(points, None)
    if first is None:
        raise SystemExit("input contains no points")
    dim = len(first)
    window = SequenceWindow(args.window) if args.window else None
    sampler_seed, query_rng = _derived_rngs(args)
    sampler = KDistinctSampler(
        args.alpha,
        dim,
        k=args.k,
        replacement=args.replacement,
        window=window,
        seed=sampler_seed,
    )
    sampler.extend(
        itertools.chain([first], points), batch_size=args.batch_size
    )
    for point in sampler.sample(query_rng):
        out.write(",".join(repr(x) for x in point.vector) + "\n")


def _run_count(args, points: Iterator[Sequence[float]], out: TextIO) -> None:
    first = next(points, None)
    if first is None:
        raise SystemExit("input contains no points")
    sampler_seed, _ = _derived_rngs(args)
    estimator = RobustF0EstimatorIW(
        args.alpha,
        len(first),
        epsilon=args.epsilon,
        copies=args.copies,
        seed=sampler_seed,
    )
    estimator.extend(
        itertools.chain([first], points), batch_size=args.batch_size
    )
    out.write(f"{estimator.estimate():.1f}\n")


def _run_heavy(args, points: Iterator[Sequence[float]], out: TextIO) -> None:
    first = next(points, None)
    if first is None:
        raise SystemExit("input contains no points")
    sampler_seed, _ = _derived_rngs(args)
    hitters = RobustHeavyHitters(
        args.alpha, len(first), epsilon=args.epsilon, seed=sampler_seed
    )
    hitters.extend(
        itertools.chain([first], points), batch_size=args.batch_size
    )
    for hit in hitters.heavy_hitters(args.phi):
        coords = ",".join(repr(x) for x in hit.representative.vector)
        out.write(f"{hit.count}\t{hit.error}\t{coords}\n")


def main(argv: list[str] | None = None, out: TextIO | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    handle = _open_input(args.input)
    try:
        points = _parse_lines(handle, args.format)
        if args.command == "sample":
            _run_sample(args, points, out)
        elif args.command == "count":
            _run_count(args, points, out)
        else:
            _run_heavy(args, points, out)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        if handle is not sys.stdin:
            handle.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
