"""Command-line interface: robust sampling over point files.

Reads a stream of points from CSV (one point per line, comma-separated
coordinates) or JSON-lines (one JSON array per line) and runs one of the
library's summaries over it:

* ``sample``   - k robust distinct samples (infinite or sliding window);
* ``count``    - robust F0 estimate;
* ``heavy``    - robust heavy hitters;
* ``pipeline`` - sharded parallel ingestion (``--shards`` shard
  samplers fed round-robin by a serial/thread/process/remote
  ``--executor`` with ``--workers`` workers), answering a robust F0
  estimate and one distinct sample over the union stream from the
  streaming shard merge;
* ``worker``   - serve a remote pipeline's work queue from any machine
  that shares its backend (the CLI twin of
  ``python -m repro.engine.remote_worker``);
* ``serve``    - the multi-tenant summary service (:mod:`repro.service`):
  one summary per tenant key with LRU/TTL eviction to checkpoint,
  ``/metrics`` and SSE streaming, run under uvicorn (``pip install
  repro[service]``).  Takes no input file - traffic arrives over HTTP.

Summaries are constructed through the unified API (:mod:`repro.api`):
each command assembles a typed spec (``KSampleSpec``, ``F0InfiniteSpec``,
``HeavyHittersSpec``, ``PipelineSpec``) and builds it through the
registry, so the CLI composes with every capability the specs expose.

Examples
--------
::

    python -m repro.cli sample --alpha 0.5 data.csv
    python -m repro.cli sample --alpha 0.5 --window 1000 --k 3 data.csv
    python -m repro.cli count  --alpha 0.5 --epsilon 0.1 data.csv
    python -m repro.cli heavy  --alpha 0.5 --phi 0.05 --output json data.csv
    python -m repro.cli pipeline --alpha 0.5 --shards 4 --executor process data.csv
    python -m repro.cli serve --summary l0-infinite --alpha 0.5 --dim 2 --port 8000
    cat data.csv | python -m repro.cli sample --alpha 0.5 -

Ingestion always runs through the batched engine (``--batch-size``
points at a time; see :mod:`repro.engine`); batching is state-equivalent
to per-point ingestion, so it only affects throughput.  ``--seed`` makes
a run bit-reproducible: one master generator derives the sampler
construction seed and the query randomness (see ``_derived_rngs``).

``--save-state FILE`` writes the summary's checkpoint envelope
(:func:`repro.persist.dump_summary`) after ingestion; ``--resume FILE``
starts from such a checkpoint instead of a fresh summary, ingests the
input on top (which may be empty - pass ``/dev/null`` to just query),
and continues with decisions identical to the uninterrupted run.

The ``pipeline`` command can instead checkpoint *during* the run:
``--backend {memory,file,redis}`` routes ingestion through
:func:`repro.engine.resumable.run_resumable`, committing chunk-aligned
checkpoints into a :class:`repro.backends.StateBackend` under atomic
compare-and-swap (``--backend-path`` for file, ``--backend-url`` for
redis, ``--checkpoint-key``/``--checkpoint-every`` to tune).  Kill the
process and rerun the same command on the same input: it resumes from
the last committed checkpoint and finishes fingerprint-identical to an
uninterrupted run.

``--output json`` emits one JSON object per result line so downstream
tooling does not have to parse the bespoke text formats.

All input errors - unparseable lines, empty input without ``--resume``,
invalid parameters - are reported uniformly as ``error: ...`` on stderr
with exit code 1.
"""

from __future__ import annotations

import argparse
import itertools
import json
import random
import sys
from typing import Iterator, Sequence, TextIO

from repro.api import (
    F0InfiniteSpec,
    HeavyHittersSpec,
    KSampleSpec,
    PipelineSpec,
    build,
)
from repro.backends import BACKEND_NAMES
from repro.core.base import DEFAULT_BATCH_SIZE
from repro.engine.resumable import DEFAULT_CHECKPOINT_EVERY
from repro.errors import CheckpointError, ReproError
from repro.persist import dump_summary, load_summary
from repro.streams.point import StreamPoint


def _parse_lines(handle: TextIO, fmt: str) -> Iterator[tuple[float, ...]]:
    for line_number, line in enumerate(handle, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            if fmt == "jsonl":
                values = json.loads(line)
            else:
                values = line.split(",")
            yield tuple(float(x) for x in values)
        except (ValueError, json.JSONDecodeError) as error:
            raise ReproError(
                f"line {line_number}: cannot parse point ({error})"
            ) from error


def _open_input(path: str) -> TextIO:
    if path == "-":
        return sys.stdin
    return open(path, "r", encoding="utf-8")


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("input", help="input file, or - for stdin")
    parser.add_argument(
        "--alpha", type=float, required=True,
        help="near-duplicate distance threshold",
    )
    parser.add_argument(
        "--format", choices=["csv", "jsonl"], default="csv",
        help="input format (default csv)",
    )
    parser.add_argument(
        "--output", choices=["text", "json"], default="text",
        help="result format: bespoke text lines (default) or one JSON "
        "object per result line",
    )
    parser.add_argument(
        "--seed", type=int, default=None,
        help="random seed; one seeded generator drives sampler "
        "construction and query randomness, so runs with the same seed "
        "and input are bit-reproducible (regardless of --batch-size)",
    )
    parser.add_argument(
        "--batch-size", type=int, default=DEFAULT_BATCH_SIZE,
        help="points per ingestion batch (state-equivalent to per-point "
        f"ingestion, just faster; default {DEFAULT_BATCH_SIZE})",
    )
    parser.add_argument(
        "--save-state", metavar="FILE", default=None,
        help="write a checkpoint envelope of the summary after ingestion",
    )
    parser.add_argument(
        "--resume", metavar="FILE", default=None,
        help="start from a checkpoint written by --save-state instead of "
        "a fresh summary (construction flags are then taken from the "
        "checkpoint; the input may be empty)",
    )


def _derived_rngs(args) -> tuple[int, random.Random]:
    """One master generator -> (sampler seed, query rng).

    Threading every source of randomness through a single seeded
    ``random.Random`` makes whole CLI runs reproducible end to end; the
    differential CLI tests rely on it.
    """
    master = random.Random(args.seed)
    sampler_seed = master.randrange(2**62)
    query_rng = random.Random(master.randrange(2**62))
    return sampler_seed, query_rng


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli",
        description="Robust distinct sampling over noisy point streams.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    sample = commands.add_parser("sample", help="robust distinct samples")
    _add_common(sample)
    sample.add_argument("--k", type=int, default=1, help="samples to draw")
    sample.add_argument(
        "--replacement", action="store_true",
        help="sample groups with replacement",
    )
    sample.add_argument(
        "--window", type=int, default=None,
        help="restrict to the last N points (sequence-based window)",
    )

    count = commands.add_parser("count", help="robust distinct count (F0)")
    _add_common(count)
    count.add_argument(
        "--epsilon", type=float, default=0.2, help="target relative accuracy"
    )
    count.add_argument(
        "--copies", type=int, default=9, help="median-of-copies count"
    )

    heavy = commands.add_parser("heavy", help="robust heavy hitters")
    _add_common(heavy)
    heavy.add_argument(
        "--phi", type=float, default=0.05,
        help="report groups above this frequency fraction",
    )
    heavy.add_argument(
        "--epsilon", type=float, default=0.01, help="counter resolution"
    )

    pipeline = commands.add_parser(
        "pipeline",
        help="sharded parallel ingestion: robust F0 + one distinct "
        "sample over the union stream",
    )
    _add_common(pipeline)
    pipeline.add_argument(
        "--shards", type=int, default=4,
        help="shard samplers fed round-robin (default 4)",
    )
    pipeline.add_argument(
        "--executor", choices=["serial", "thread", "process", "remote"],
        default="serial",
        help="where shard ingestion runs; every choice is "
        "state-equivalent, 'process' adds wall-clock parallelism, "
        "'remote' serves chunks through a shared state backend to "
        "workers that may run on other machines (default serial)",
    )
    pipeline.add_argument(
        "--workers", type=int, default=None,
        help="worker threads/processes for --executor thread/process "
        "(default: one per shard); for --executor remote the number of "
        "LOCAL worker threads - pass 0 when every worker is an "
        "external 'worker' command",
    )
    pipeline.add_argument(
        "--queue-backend", choices=list(BACKEND_NAMES), default=None,
        help="work-queue backend for --executor remote (default "
        "memory: in-process only; 'file'/'redis' let external workers "
        "join)",
    )
    pipeline.add_argument(
        "--queue-path", default=None,
        help="directory of the file work queue (with "
        "--queue-backend file)",
    )
    pipeline.add_argument(
        "--queue-url", default=None,
        help="redis URL of the work queue (with --queue-backend redis)",
    )
    pipeline.add_argument(
        "--queue-key", default=None,
        help="work-queue namespace workers serve (default remote-queue)",
    )
    pipeline.add_argument(
        "--lease-ttl", type=float, default=5.0,
        help="seconds without a worker heartbeat before its shards are "
        "re-adopted (default 5)",
    )
    pipeline.add_argument(
        "--transport", choices=["auto", "shm", "pickle"], default="auto",
        help="chunk transport for --executor process: 'auto' ships "
        "chunks zero-copy through shared memory when numpy is "
        "available, 'pickle' forces the legacy queue transport "
        "(default auto; state-equivalent either way)",
    )
    pipeline.add_argument(
        "--no-work-stealing", action="store_true",
        help="pin each shard to the worker that first adopted it "
        "instead of migrating backlogged shards to idle workers "
        "(state-equivalent; only wall-clock throughput differs)",
    )
    pipeline.add_argument(
        "--backend", choices=list(BACKEND_NAMES), default=None,
        help="checkpoint the run into this state backend under atomic "
        "CAS (chunk-aligned, crash-safe): rerunning the same command "
        "on the same input resumes from the last committed checkpoint "
        "(default: no mid-run checkpoints)",
    )
    pipeline.add_argument(
        "--backend-path", default=None,
        help="directory of the file backend (with --backend file)",
    )
    pipeline.add_argument(
        "--backend-url", default=None,
        help="redis URL of the redis backend (with --backend redis; "
        "needs the redis extra: pip install 'repro[redis]')",
    )
    pipeline.add_argument(
        "--checkpoint-key", default="cli-pipeline",
        help="backend key the run checkpoints under; one key per job "
        "(default cli-pipeline)",
    )
    pipeline.add_argument(
        "--checkpoint-every", type=int, default=DEFAULT_CHECKPOINT_EVERY,
        help="chunks between checkpoint commits "
        f"(default {DEFAULT_CHECKPOINT_EVERY})",
    )

    worker = commands.add_parser(
        "worker",
        help="serve a remote pipeline work queue: lease shards via "
        "backend CAS, fold their chunks, commit states through the CAS "
        "fence (runs on any machine sharing the backend)",
    )
    worker.add_argument(
        "--backend", choices=["file", "redis"], required=True,
        help="shared backend flavour the submitting pipeline uses "
        "(memory is in-process only and has no worker command)",
    )
    worker.add_argument(
        "--backend-path", default=None,
        help="directory of the file backend (with --backend file)",
    )
    worker.add_argument(
        "--backend-url", default=None,
        help="redis URL of the redis backend (with --backend redis)",
    )
    worker.add_argument(
        "--queue-key", default="remote-queue",
        help="work-queue namespace to serve (default remote-queue; "
        "must match the pipeline's --queue-key)",
    )
    worker.add_argument(
        "--worker-id", default=None,
        help="lease identity (default: <hostname>-<pid>)",
    )
    worker.add_argument(
        "--lease-ttl", type=float, default=5.0,
        help="seconds without a heartbeat before this worker's shards "
        "are stolen (default 5; match the pipeline's --lease-ttl)",
    )
    worker.add_argument(
        "--poll-interval", type=float, default=0.05,
        help="idle polling period in seconds (default 0.05)",
    )
    worker.add_argument(
        "--max-idle", type=float, default=None,
        help="exit after this many idle seconds (default: serve "
        "forever, across successive pipeline runs)",
    )

    serve = commands.add_parser(
        "serve",
        help="run the multi-tenant summary service (one summary per "
        "tenant key, LRU/TTL eviction to checkpoint, /metrics, SSE)",
    )
    serve.add_argument(
        "--summary", default="l0-infinite",
        help="registry key of the per-tenant summary "
        "(default l0-infinite; see repro.api.available())",
    )
    serve.add_argument(
        "--alpha", type=float, default=None,
        help="near-duplicate distance threshold (required by the "
        "point-stream summaries)",
    )
    serve.add_argument(
        "--dim", type=int, default=None,
        help="ambient dimension of ingested points (required by the "
        "point-stream summaries)",
    )
    serve.add_argument(
        "--seed", type=int, default=None,
        help="base seed; each tenant derives its own reproducible seed",
    )
    serve.add_argument(
        "--window", type=int, default=None,
        help="sliding-window size for windowed summaries",
    )
    serve.add_argument(
        "--k", type=int, default=None, help="samples per query (ksample)"
    )
    serve.add_argument(
        "--epsilon", type=float, default=None,
        help="accuracy parameter (f0-*, heavy-hitters, bjkst)",
    )
    serve.add_argument(
        "--phi", type=float, default=None,
        help="heavy-hitter report threshold",
    )
    serve.add_argument(
        "--copies", type=int, default=None,
        help="median-of-copies count (f0-*, fm)",
    )
    serve.add_argument(
        "--capacity", type=int, default=1024,
        help="max tenants resident in memory before LRU eviction to "
        "the envelope store (default 1024)",
    )
    serve.add_argument(
        "--ttl", type=float, default=None,
        help="evict tenants idle for this many seconds (default: never)",
    )
    serve.add_argument(
        "--store", choices=["memory", "file", "redis"], default="memory",
        help="where evicted tenants' checkpoint envelopes go "
        "(default memory; 'file' survives restarts, 'redis' is shared "
        "across service replicas)",
    )
    serve.add_argument(
        "--store-path", default=None,
        help="directory of the file envelope store (with --store file)",
    )
    serve.add_argument(
        "--store-url", default=None,
        help="redis URL of the envelope store (with --store redis; "
        "needs the redis extra: pip install 'repro[redis]')",
    )
    serve.add_argument(
        "--stream-interval", type=float, default=1.0,
        help="default seconds between SSE events on /v1/{tenant}/stream",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8000, help="bind port")
    return parser


def _summary_for(
    args, points: Iterator[Sequence[float]], expected_key: str
):
    """Resume or spec-construct the command's summary, then ingest.

    Returns the summary after feeding it the (possibly empty-on-resume)
    input through the batched engine.
    """
    first = next(points, None)
    if args.resume is not None:
        try:
            summary = load_summary(args.resume)
        except (OSError, CheckpointError) as error:
            raise ReproError(
                f"cannot load checkpoint {args.resume}: {error}"
            ) from error
        key = getattr(type(summary), "summary_key", None)
        if key != expected_key:
            raise ReproError(
                f"checkpoint holds a {key!r} summary; this command "
                f"needs {expected_key!r}"
            )
    else:
        if first is None:
            raise ReproError("input contains no points")
        sampler_seed, _ = _derived_rngs(args)
        spec = _spec_for(args, dim=len(first), seed=sampler_seed)
        summary = build(expected_key, spec)
    try:
        if first is not None:
            summary.extend(
                itertools.chain([first], points), batch_size=args.batch_size
            )
        if args.save_state is not None:
            try:
                dump_summary(summary, args.save_state)
            except OSError as error:
                raise ReproError(
                    f"cannot write checkpoint {args.save_state}: {error}"
                ) from error
    except BaseException:
        # Summaries with workers (the pipeline) must not leak them when
        # ingestion fails mid-stream; the original error is the one to
        # report, so a close() failure on the same broken run is
        # swallowed.
        closer = getattr(summary, "close", None)
        if closer is not None:
            try:
                closer()
            except ReproError:
                pass
        raise
    return summary


def _spec_for(args, *, dim: int, seed: int):
    """The typed spec of the invoked command."""
    if args.command == "sample":
        return KSampleSpec(
            alpha=args.alpha,
            dim=dim,
            seed=seed,
            k=args.k,
            replacement=args.replacement,
            window_size=args.window,
        )
    if args.command == "count":
        return F0InfiniteSpec(
            alpha=args.alpha,
            dim=dim,
            seed=seed,
            epsilon=args.epsilon,
            copies=args.copies,
        )
    if args.command == "pipeline":
        return PipelineSpec(
            alpha=args.alpha,
            dim=dim,
            seed=seed,
            num_shards=args.shards,
            batch_size=args.batch_size,
            executor=args.executor,
            num_workers=args.workers,
            transport=args.transport,
            work_stealing=not args.no_work_stealing,
            queue_backend=args.queue_backend,
            queue_path=args.queue_path,
            queue_url=args.queue_url,
            queue_key=args.queue_key,
            lease_ttl=args.lease_ttl,
        )
    return HeavyHittersSpec(
        alpha=args.alpha,
        dim=dim,
        seed=seed,
        epsilon=args.epsilon,
        phi=args.phi,
    )


def _service_spec_for(args):
    """Assemble a validated :class:`repro.service.ServiceSpec` from flags.

    The summary spec is built generically: the candidate flags below are
    filtered to the fields the chosen registry key's spec class actually
    declares, so every servable key works without per-key plumbing.
    Missing required fields (e.g. ``--alpha`` for a point summary)
    surface as the CLI's uniform ``error:`` convention.
    """
    import dataclasses as _dataclasses

    from repro.api.registry import spec_class
    from repro.service import ServiceSpec

    candidates = {
        "alpha": args.alpha,
        "dim": args.dim,
        "seed": args.seed,
        "window_size": args.window,
        "k": args.k,
        "epsilon": args.epsilon,
        "phi": args.phi,
        "copies": args.copies,
    }
    try:
        cls = spec_class(args.summary)
    except ReproError:
        raise
    fields = {field.name for field in _dataclasses.fields(cls)}
    kwargs = {
        name: value
        for name, value in candidates.items()
        if value is not None and name in fields
    }
    try:
        summary_spec = cls(**kwargs)
    except TypeError as error:
        raise ReproError(
            f"summary {args.summary!r}: {error} "
            "(point summaries need --alpha and --dim)"
        ) from error
    return ServiceSpec(
        summary=args.summary,
        spec=summary_spec,
        capacity=args.capacity,
        ttl_seconds=args.ttl,
        store=args.store,
        store_path=args.store_path,
        store_url=args.store_url,
        stream_interval=args.stream_interval,
    )


def _run_worker(args, out: TextIO) -> None:
    """Serve a remote work queue until stopped (the ``worker`` command).

    The in-process twin of ``python -m repro.engine.remote_worker``;
    prints the worker's counters as JSON on exit.
    """
    from repro.backends import make_backend
    from repro.engine.remote_worker import run_worker

    backend = make_backend(
        args.backend, path=args.backend_path, url=args.backend_url
    )
    try:
        stats = run_worker(
            backend,
            args.queue_key,
            worker_id=args.worker_id,
            lease_ttl=args.lease_ttl,
            poll_interval=args.poll_interval,
            max_idle=args.max_idle,
        )
    finally:
        backend.close()
    out.write(json.dumps(stats, sort_keys=True) + "\n")


def _run_serve(args) -> None:
    """Build the ASGI app and hand it to uvicorn (if installed).

    The app itself has no web-framework dependency - without uvicorn it
    can still be driven in-process (``repro.service.testing``); this
    command is the network front door, so it needs a real server.
    """
    from repro.service import create_app

    app = create_app(_service_spec_for(args))
    try:
        import uvicorn
    except ImportError:
        raise ReproError(
            "the serve command needs uvicorn (install the service extra: "
            "pip install 'repro[service]'); the app can still be driven "
            "in-process via repro.service.testing.ASGITestClient"
        ) from None
    uvicorn.run(app, host=args.host, port=args.port)


def _emit_point(point: StreamPoint, args, out: TextIO) -> None:
    if args.output == "json":
        out.write(
            json.dumps(
                {
                    "vector": list(point.vector),
                    "index": point.index,
                    "time": point.time,
                }
            )
            + "\n"
        )
    else:
        out.write(",".join(repr(x) for x in point.vector) + "\n")


def _run_sample(args, points: Iterator[Sequence[float]], out: TextIO) -> None:
    _, query_rng = _derived_rngs(args)
    sampler = _summary_for(args, points, "ksample")
    for point in sampler.query(query_rng):
        _emit_point(point, args, out)


def _run_count(args, points: Iterator[Sequence[float]], out: TextIO) -> None:
    estimator = _summary_for(args, points, "f0-infinite")
    estimate = estimator.query()
    if args.output == "json":
        out.write(json.dumps({"estimate": estimate}) + "\n")
    else:
        out.write(f"{estimate:.1f}\n")


def _resumable_pipeline_for(args, points: Iterator[Sequence[float]]):
    """Run the pipeline through a CAS-checkpointed state backend.

    The ``--backend`` twin of :func:`_summary_for`: the run commits
    chunk-aligned checkpoints under ``--checkpoint-key``, so a killed
    run rerun on the same input resumes from the last committed chunk
    boundary and finishes fingerprint-identical.
    """
    from repro.backends import make_backend
    from repro.engine.resumable import run_resumable

    if args.resume is not None:
        raise ReproError(
            "--resume and --backend are both resume mechanisms; pass "
            "one (the backend already holds the run's checkpoints)"
        )
    first = next(points, None)
    if first is None:
        raise ReproError("input contains no points")
    sampler_seed, _ = _derived_rngs(args)
    spec = _spec_for(args, dim=len(first), seed=sampler_seed)
    backend = make_backend(
        args.backend, path=args.backend_path, url=args.backend_url
    )
    try:
        pipeline = run_resumable(
            spec,
            itertools.chain([first], points),
            backend,
            args.checkpoint_key,
            checkpoint_every=args.checkpoint_every,
        )
        if args.save_state is not None:
            try:
                dump_summary(pipeline, args.save_state)
            except OSError as error:
                raise ReproError(
                    f"cannot write checkpoint {args.save_state}: {error}"
                ) from error
    finally:
        backend.close()
    return pipeline


def _run_pipeline(
    args, points: Iterator[Sequence[float]], out: TextIO
) -> None:
    """Sharded ingestion; answers come from the streaming shard merge.

    Text output is two lines - the robust F0 estimate, then one distinct
    sample's coordinates; ``--output json`` emits one object per line.
    The merge fold order is deterministic, so runs are bit-reproducible
    for a fixed seed whichever executor ran the shards.
    """
    _, query_rng = _derived_rngs(args)
    if args.backend is not None:
        pipeline = _resumable_pipeline_for(args, points)
    else:
        pipeline = _summary_for(args, points, "batch-pipeline")
    try:
        merged = pipeline.merge()
        estimate = merged.estimate_f0()
        sample = merged.sample(query_rng)
    finally:
        pipeline.close()
    if args.output == "json":
        out.write(
            json.dumps(
                {
                    "estimate": estimate,
                    "shards": pipeline.num_shards,
                    "executor": pipeline.executor_name,
                    "communication_words": pipeline.communication_words(),
                }
            )
            + "\n"
        )
    else:
        out.write(f"{estimate:.1f}\n")
    _emit_point(sample, args, out)


def _run_heavy(args, points: Iterator[Sequence[float]], out: TextIO) -> None:
    hitters = _summary_for(args, points, "heavy-hitters")
    for hit in hitters.query(phi=args.phi):
        if args.output == "json":
            out.write(
                json.dumps(
                    {
                        "count": hit.count,
                        "error": hit.error,
                        "guaranteed_count": hit.guaranteed_count,
                        "vector": list(hit.representative.vector),
                    }
                )
                + "\n"
            )
        else:
            coords = ",".join(repr(x) for x in hit.representative.vector)
            out.write(f"{hit.count}\t{hit.error}\t{coords}\n")


def main(argv: list[str] | None = None, out: TextIO | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out if out is not None else sys.stdout
    args = build_parser().parse_args(argv)
    if args.command in ("serve", "worker"):
        # Neither takes an input stream: serve answers the network,
        # worker pulls its work from the shared backend queue.
        try:
            if args.command == "serve":
                _run_serve(args)
            else:
                _run_worker(args, out)
        except ReproError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        return 0
    handle = _open_input(args.input)
    try:
        points = _parse_lines(handle, args.format)
        if args.command == "sample":
            _run_sample(args, points, out)
        elif args.command == "count":
            _run_count(args, points, out)
        elif args.command == "pipeline":
            _run_pipeline(args, points, out)
        else:
            _run_heavy(args, points, out)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    finally:
        if handle is not sys.stdin:
            handle.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
