"""High-dimensional Euclidean spaces (Section 4).

For an ``(alpha, beta)``-sparse dataset with ``beta > d**1.5 * alpha`` the
infinite-window and sliding-window samplers work with a grid of side
``d * alpha`` (Lemma 4.2 bounds the reject set); Remark 2 weakens the
sparsity requirement via Johnson-Lindenstrauss projection.
"""

from repro.highdim.jl import JohnsonLindenstrauss, jl_dimension
from repro.highdim.sparse import HighDimSamplerIW, HighDimSamplerSW

__all__ = [
    "HighDimSamplerIW",
    "HighDimSamplerSW",
    "JohnsonLindenstrauss",
    "jl_dimension",
]
