"""Samplers for (alpha, beta)-sparse data in high dimension (Theorem 4.1).

The only change relative to Section 2 is the grid: side length
``d * alpha`` instead of ``alpha / sqrt(d)``.  Every cell still meets at
most one group (the sparsity gives inter-group distance > d**1.5 * alpha,
which exceeds the cell diameter d**1.5 * alpha only marginally - exactly
the paper's setting), a group meets at most ``2^d`` cells in the worst
case but only O(1) in expectation over the random grid shift (Lemma 4.2),
and the DFS adjacency search prunes to those few cells.

These classes are thin wrappers that pick the Section 4 grid, validate the
sparsity promise, and optionally apply Johnson-Lindenstrauss projection
first (Remark 2).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.base import DEFAULT_KAPPA0, SamplerConfig
from repro.core.infinite_window import RobustL0SamplerIW
from repro.core.sliding_window import RobustL0SamplerSW
from repro.errors import ParameterError
from repro.highdim.jl import JohnsonLindenstrauss, jl_dimension
from repro.streams.point import StreamPoint
from repro.streams.windows import WindowSpec


def _highdim_config(
    alpha: float, dim: int, seed: int | None, kwise: int | None
) -> SamplerConfig:
    return SamplerConfig.create(
        alpha, dim, seed=seed, grid_side=dim * alpha, kwise=kwise
    )


class HighDimSamplerIW(RobustL0SamplerIW):
    """Infinite-window robust sampler configured per Section 4.

    Requires the dataset to be ``(alpha, beta)``-sparse with
    ``beta > dim**1.5 * alpha`` (use
    :func:`repro.datasets.validation.validate_sparse` to check offline).

    With ``project_to`` / ``num_points`` set, points are first projected
    by Johnson-Lindenstrauss to ``O(log m)`` dimensions (Remark 2), which
    weakens the sparsity requirement to
    ``beta > c * log(m)**1.5 * alpha``.
    """

    def __init__(
        self,
        alpha: float,
        dim: int,
        *,
        kappa0: float = DEFAULT_KAPPA0,
        expected_stream_length: int | None = None,
        seed: int | None = None,
        kwise: int | None = None,
        project_to: int | None = None,
        num_points: int | None = None,
        jl_epsilon: float = 0.5,
    ) -> None:
        self._projection: JohnsonLindenstrauss | None = None
        effective_dim = dim
        effective_alpha = alpha
        if project_to is not None or num_points is not None:
            if project_to is None:
                assert num_points is not None
                project_to = jl_dimension(num_points, jl_epsilon)
            if project_to >= dim:
                raise ParameterError(
                    f"projection target {project_to} is not below dim {dim}"
                )
            jl_seed = None if seed is None else seed ^ 0x7A11
            self._projection = JohnsonLindenstrauss(dim, project_to, seed=jl_seed)
            effective_dim = project_to
            # Distances may stretch by (1 + eps); widen alpha accordingly
            # so near-duplicates stay within threshold after projection.
            effective_alpha = alpha * (1.0 + jl_epsilon)
        config = _highdim_config(effective_alpha, effective_dim, seed, kwise)
        super().__init__(
            effective_alpha,
            effective_dim,
            kappa0=kappa0,
            expected_stream_length=expected_stream_length,
            config=config,
        )
        self._native_dim = dim

    @property
    def native_dim(self) -> int:
        """Dimensionality of the points as fed by the caller."""
        return self._native_dim

    @property
    def projection(self) -> JohnsonLindenstrauss | None:
        """The JL projection, if one is active."""
        return self._projection

    def insert(self, point: StreamPoint | Sequence[float]) -> None:
        """Insert a native-dimension point (projecting when configured)."""
        if self._projection is None:
            super().insert(point)
            return
        if isinstance(point, StreamPoint):
            projected = StreamPoint(
                self._projection.project(point.vector), point.index, point.time
            )
        else:
            projected = StreamPoint(
                self._projection.project(point), self.points_seen
            )
        super().insert(projected)


class HighDimSamplerSW(RobustL0SamplerSW):
    """Sliding-window robust sampler configured per Section 4.

    Corollary 4.3: O(d log w log m) words for (alpha, beta)-sparse data
    with ``beta > dim**1.5 * alpha``.
    """

    def __init__(
        self,
        alpha: float,
        dim: int,
        window: WindowSpec,
        *,
        window_capacity: int | None = None,
        kappa0: float = DEFAULT_KAPPA0,
        expected_stream_length: int | None = None,
        seed: int | None = None,
        kwise: int | None = None,
    ) -> None:
        config = _highdim_config(alpha, dim, seed, kwise)
        super().__init__(
            alpha,
            dim,
            window,
            window_capacity=window_capacity,
            kappa0=kappa0,
            expected_stream_length=expected_stream_length,
            config=config,
        )
