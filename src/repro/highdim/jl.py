"""Johnson-Lindenstrauss projection (Remark 2 of Section 4).

Theorem 4.1 needs ``beta > d**1.5 * alpha``.  Projecting to
``k = O(log m)`` dimensions with a Gaussian random matrix preserves all
pairwise distances within ``1 +- eps`` (w.h.p. over m points), so a
dataset that is only ``(alpha, c * log(m)**1.5 * alpha)``-sparse in its
native dimension becomes sparse *enough* after projection: the projected
threshold ``alpha' = (1 + eps) * alpha`` and gap
``beta' >= (1 - eps) * beta`` satisfy ``beta' > k**1.5 * alpha'``.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.errors import ParameterError

Vector = tuple[float, ...]


def jl_dimension(num_points: int, epsilon: float = 0.5) -> int:
    """Target dimension guaranteeing (1 +- eps) distance preservation.

    Standard JL bound ``k = ceil(8 * ln(m) / eps^2)`` (the constant follows
    the usual Gaussian-projection analysis).

    >>> jl_dimension(1000, epsilon=0.5) >= 16
    True
    """
    if num_points < 1:
        raise ParameterError(f"num_points must be >= 1, got {num_points}")
    if not 0 < epsilon < 1:
        raise ParameterError(f"epsilon must be in (0, 1), got {epsilon}")
    return max(4, math.ceil(8.0 * math.log(max(num_points, 2)) / epsilon**2))


class JohnsonLindenstrauss:
    """A Gaussian random projection ``R^d -> R^k``.

    Entries are i.i.d. ``N(0, 1/k)`` so squared norms are preserved in
    expectation.  The matrix is drawn once at construction and applied to
    every stream point - the streaming algorithms never need to revisit
    earlier points.

    Parameters
    ----------
    input_dim:
        Native dimensionality ``d``.
    output_dim:
        Target dimensionality ``k`` (see :func:`jl_dimension`).
    seed:
        Seed for the matrix entries.

    Examples
    --------
    >>> proj = JohnsonLindenstrauss(100, 16, seed=0)
    >>> len(proj.project([1.0] * 100))
    16
    """

    def __init__(self, input_dim: int, output_dim: int, *, seed: int | None = None) -> None:
        if input_dim < 1 or output_dim < 1:
            raise ParameterError("dimensions must be >= 1")
        rng = np.random.default_rng(seed)
        self._matrix = rng.normal(
            0.0, 1.0 / math.sqrt(output_dim), size=(output_dim, input_dim)
        )
        self._input_dim = input_dim
        self._output_dim = output_dim

    @property
    def input_dim(self) -> int:
        """Native dimensionality."""
        return self._input_dim

    @property
    def output_dim(self) -> int:
        """Projected dimensionality."""
        return self._output_dim

    def project(self, vector: Sequence[float]) -> Vector:
        """Project one point."""
        if len(vector) != self._input_dim:
            raise ParameterError(
                f"vector has dimension {len(vector)}, expected {self._input_dim}"
            )
        projected = self._matrix @ np.asarray(vector, dtype=float)
        return tuple(float(x) for x in projected)

    def project_all(self, vectors: Sequence[Sequence[float]]) -> list[Vector]:
        """Project a batch of points."""
        if not vectors:
            return []
        array = np.asarray(vectors, dtype=float)
        projected = array @ self._matrix.T
        return [tuple(float(x) for x in row) for row in projected]
