"""Accuracy metrics for empirical sampling distributions (Section 6.1).

The paper reports two normalised deviations of the empirical sampling
distribution from uniform (methodology of Cormode & Firmani, DAPD 2014):

* ``stdDevNm`` - standard deviation of the empirical frequencies divided
  by the target frequency ``f* = 1/F0``;
* ``maxDevNm`` - ``max_i |f_i - f*| / f*``.

Both shrink with the number of runs even for a perfectly uniform sampler
(finite-sample noise); :func:`multinomial_noise_floor` gives the expected
stdDevNm of an *exactly uniform* sampler at a given run count, and
:func:`chi_square_uniformity` provides a calibrated test that is valid at
any run count - together they let a reproduction with fewer runs than the
paper's 200k-500k still decide "uniform or biased" rigorously.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence


def _frequencies(counts: Sequence[int]) -> tuple[list[float], int]:
    total = sum(counts)
    if total <= 0:
        raise ValueError("counts must contain at least one sample")
    return [c / total for c in counts], total


def std_dev_normalized(counts: Sequence[int]) -> float:
    """stdDevNm: population std of empirical frequencies over ``1/n``.

    >>> round(std_dev_normalized([10, 10, 10, 10]), 6)
    0.0
    """
    freqs, _ = _frequencies(counts)
    n = len(freqs)
    target = 1.0 / n
    variance = sum((f - target) ** 2 for f in freqs) / n
    return math.sqrt(variance) / target


def max_dev_normalized(counts: Sequence[int]) -> float:
    """maxDevNm: worst relative deviation of any group's frequency.

    >>> round(max_dev_normalized([5, 10, 15]), 6)
    0.5
    """
    freqs, _ = _frequencies(counts)
    target = 1.0 / len(freqs)
    return max(abs(f - target) / target for f in freqs)


def multinomial_noise_floor(num_groups: int, num_runs: int) -> float:
    """Expected stdDevNm of a perfectly uniform sampler.

    With ``r`` runs over ``n`` groups, each count is Binomial(r, 1/n), so
    the expected normalised std is ``sqrt((n - 1) / r)``.

    >>> round(multinomial_noise_floor(100, 10000), 4)
    0.0995
    """
    if num_groups < 1 or num_runs < 1:
        raise ValueError("num_groups and num_runs must be >= 1")
    return math.sqrt((num_groups - 1) / num_runs)


def chi_square_uniformity(counts: Sequence[int]) -> tuple[float, float]:
    """Pearson chi-square test of uniformity; returns (statistic, p-value).

    A small p-value (< 0.01) indicates detectable bias; a uniform sampler
    yields p-values uniform in (0, 1) regardless of the run count.  Uses
    scipy when available and falls back to the normal approximation of the
    chi-square survival function otherwise.
    """
    total = sum(counts)
    n = len(counts)
    if total <= 0 or n < 2:
        raise ValueError("need at least two groups and one sample")
    expected = total / n
    statistic = sum((c - expected) ** 2 / expected for c in counts)
    dof = n - 1
    try:
        from scipy.stats import chi2

        p_value = float(chi2.sf(statistic, dof))
    except ImportError:  # pragma: no cover - scipy is installed in CI
        # Wilson-Hilferty cube-root normal approximation.
        z = ((statistic / dof) ** (1.0 / 3.0) - (1 - 2.0 / (9 * dof))) / math.sqrt(
            2.0 / (9 * dof)
        )
        p_value = 0.5 * math.erfc(z / math.sqrt(2.0))
    return statistic, p_value


@dataclass(frozen=True, slots=True)
class DeviationReport:
    """Summary of one empirical sampling distribution.

    Attributes mirror the paper's Figure 15 plus the statistical context
    needed at reduced run counts.
    """

    num_groups: int
    num_runs: int
    std_dev_nm: float
    max_dev_nm: float
    noise_floor: float
    chi_square: float
    p_value: float

    @property
    def excess_over_floor(self) -> float:
        """stdDevNm divided by the uniform sampler's expectation (~1 means
        the deviation is explained by finite-sample noise alone)."""
        return self.std_dev_nm / self.noise_floor if self.noise_floor else math.inf

    def is_consistent_with_uniform(self, *, p_threshold: float = 0.01) -> bool:
        """True when the chi-square test does not reject uniformity."""
        return self.p_value >= p_threshold


def deviation_report(
    counts: Sequence[int] | Mapping[int, int], *, num_groups: int | None = None
) -> DeviationReport:
    """Build a :class:`DeviationReport` from per-group sample counts.

    ``counts`` may be a sequence (one entry per group) or a mapping from
    group id to count; with a mapping, ``num_groups`` supplies the total
    number of groups (groups never sampled count as zero).
    """
    if isinstance(counts, Mapping):
        if num_groups is None:
            raise ValueError("num_groups is required with a mapping of counts")
        dense = [0] * num_groups
        for group, count in counts.items():
            dense[group] = count
    else:
        dense = list(counts)
    runs = sum(dense)
    statistic, p_value = chi_square_uniformity(dense)
    return DeviationReport(
        num_groups=len(dense),
        num_runs=runs,
        std_dev_nm=std_dev_normalized(dense),
        max_dev_nm=max_dev_normalized(dense),
        noise_floor=multinomial_noise_floor(len(dense), runs),
        chi_square=statistic,
        p_value=p_value,
    )
