"""Peak space usage in words (pSpace, Figure 14).

Every sampler in this library exposes ``space_words()``; the measurement
helper streams a dataset while tracking the maximum, reproducing the
paper's "peak space usage throughout the streaming process; measured by
word".
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Protocol, Sequence

from repro.streams.point import StreamPoint


class _SpaceAware(Protocol):
    """Anything with insert(point) and space_words()."""

    def insert(self, point: StreamPoint) -> None:  # pragma: no cover
        ...

    def space_words(self) -> int:  # pragma: no cover
        ...


@dataclass(frozen=True, slots=True)
class SpaceResult:
    """Peak and final space of one streaming pass (averaged over passes)."""

    mean_peak_words: float
    max_peak_words: int
    mean_final_words: float
    passes: int


def measure_peak_space(
    make_sampler: Callable[[int], _SpaceAware],
    streams: Callable[[int], Sequence[StreamPoint]],
    *,
    passes: int = 5,
    probe_every: int = 16,
) -> SpaceResult:
    """Track ``space_words()`` while streaming; average peaks over passes.

    ``probe_every`` controls how often the footprint is polled; samplers
    that track their own peak (``peak_space_words``) are polled through
    that instead for exactness.
    """
    if passes < 1:
        raise ValueError(f"passes must be >= 1, got {passes}")
    peaks = []
    finals = []
    for index in range(passes):
        sampler = make_sampler(index)
        peak = 0
        for position, point in enumerate(streams(index)):
            sampler.insert(point)
            if position % probe_every == 0:
                words = sampler.space_words()
                if words > peak:
                    peak = words
        words = sampler.space_words()
        if words > peak:
            peak = words
        tracked = getattr(sampler, "peak_space_words", None)
        if tracked is not None and tracked > peak:
            peak = tracked
        peaks.append(peak)
        finals.append(words)
    return SpaceResult(
        mean_peak_words=sum(peaks) / passes,
        max_peak_words=max(peaks),
        mean_final_words=sum(finals) / passes,
        passes=passes,
    )


def dataset_stream_factory(dataset, base_seed: int = 0):
    """Shuffled-stream factory matching the paper's measurement setup."""

    def build(index: int) -> Sequence[StreamPoint]:
        points, _ = dataset.shuffled_stream(random.Random(base_seed + index))
        return points

    return build
