"""Repeated-run driver for the empirical sampling distributions.

Reproduces the paper's Section 6.1 protocol: shuffle the dataset, stream
it through a fresh sampler, query one sample at the end, and count how
often each ground-truth group is returned across runs (Figures 5-12).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Protocol

from repro.core.infinite_window import RobustL0SamplerIW
from repro.datasets.catalog import LabeledDataset
from repro.metrics.accuracy import DeviationReport, deviation_report
from repro.streams.point import StreamPoint


class _SingleSampleSampler(Protocol):
    """Anything with insert(point) and sample(rng) -> StreamPoint."""

    def insert(self, point: StreamPoint) -> None:  # pragma: no cover
        ...

    def sample(self, rng: random.Random) -> StreamPoint:  # pragma: no cover
        ...


SamplerFactory = Callable[[int], _SingleSampleSampler]


@dataclass(frozen=True)
class DistributionResult:
    """Counts plus the derived deviation report for one experiment."""

    dataset: str
    counts: tuple[int, ...]
    report: DeviationReport

    @property
    def frequencies(self) -> list[float]:
        """Empirical sampling frequency per group."""
        total = sum(self.counts)
        return [c / total for c in self.counts]


def default_factory(dataset: LabeledDataset) -> SamplerFactory:
    """The paper's Algorithm 1 configured for ``dataset``."""

    def build(seed: int) -> RobustL0SamplerIW:
        return RobustL0SamplerIW(
            dataset.alpha,
            dataset.dim,
            seed=seed,
            expected_stream_length=dataset.num_points,
        )

    return build


def sampling_distribution(
    dataset: LabeledDataset,
    *,
    runs: int,
    seed: int = 0,
    factory: SamplerFactory | None = None,
) -> DistributionResult:
    """Run the Figures 5-12 protocol: ``runs`` independent stream passes.

    Each run shuffles the dataset (fresh order), streams it through a
    fresh sampler (fresh hash/grid randomness), then draws one sample and
    attributes it to its ground-truth group.

    >>> from repro.datasets.catalog import make_dataset  # doctest: +SKIP
    """
    if runs < 1:
        raise ValueError(f"runs must be >= 1, got {runs}")
    factory = factory if factory is not None else default_factory(dataset)
    counts = [0] * dataset.num_groups
    query_rng = random.Random(seed ^ 0xC0FFEE)
    for run in range(runs):
        shuffle_rng = random.Random(seed * 2_000_003 + run * 2 + 1)
        points, labels = dataset.shuffled_stream(shuffle_rng)
        sampler = factory(seed * 1_000_003 + run)
        label_of = {}
        for point, label in zip(points, labels):
            label_of[point.index] = label
            sampler.insert(point)
        sample = sampler.sample(query_rng)
        counts[label_of[sample.index]] += 1
    return DistributionResult(
        dataset=dataset.name,
        counts=tuple(counts),
        report=deviation_report(counts),
    )
