"""Per-item processing time (pTime, Figure 13).

The paper measures single-thread processing time per item, averaged over
100 full passes of the stream.  :func:`measure_processing_time` does the
same with a configurable number of passes (a pure-Python reproduction is
slower per item, so fewer passes suffice for stable averages).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.streams.point import StreamPoint


@dataclass(frozen=True, slots=True)
class TimingResult:
    """Per-item processing time statistics.

    Attributes
    ----------
    seconds_per_item:
        Mean wall-clock seconds per inserted point.
    total_seconds:
        Total measured time across all passes.
    passes:
        Number of full stream passes measured.
    items_per_pass:
        Stream length.
    """

    seconds_per_item: float
    total_seconds: float
    passes: int
    items_per_pass: int

    @property
    def micros_per_item(self) -> float:
        """Convenience: microseconds per item."""
        return self.seconds_per_item * 1e6


def measure_processing_time(
    make_sampler: Callable[[int], object],
    streams: Callable[[int], Sequence[StreamPoint]],
    *,
    passes: int = 5,
) -> TimingResult:
    """Average per-item insert time over ``passes`` full stream passes.

    Parameters
    ----------
    make_sampler:
        Factory receiving the pass index (fresh sampler per pass, as in
        the paper's protocol).
    streams:
        Factory receiving the pass index and returning that pass's stream
        (typically a fresh shuffle).
    passes:
        Number of passes to average.
    """
    if passes < 1:
        raise ValueError(f"passes must be >= 1, got {passes}")
    total = 0.0
    items = 0
    for index in range(passes):
        stream = streams(index)
        sampler = make_sampler(index)
        insert = sampler.insert  # type: ignore[attr-defined]
        start = time.perf_counter()
        for point in stream:
            insert(point)
        total += time.perf_counter() - start
        items = len(stream)
    per_item = total / (passes * items) if items else 0.0
    return TimingResult(
        seconds_per_item=per_item,
        total_seconds=total,
        passes=passes,
        items_per_pass=items,
    )


def shuffled_stream_factory(dataset, base_seed: int = 0):
    """Stream factory for :func:`measure_processing_time` from a catalog
    dataset: pass ``i`` gets an independent shuffle."""

    def build(index: int) -> Sequence[StreamPoint]:
        points, _ = dataset.shuffled_stream(random.Random(base_seed + index))
        return points

    return build
