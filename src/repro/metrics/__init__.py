"""Measurement harness reproducing the paper's Section 6.1 metrics.

* :mod:`repro.metrics.accuracy` - stdDevNm / maxDevNm (following the
  Cormode-Firmani methodology the paper cites) plus a chi-square
  uniformity test, which detects bias at any number of runs;
* :mod:`repro.metrics.trials` - the repeated-run driver producing the
  empirical sampling distributions of Figures 5-12;
* :mod:`repro.metrics.timing` - per-item processing time (pTime);
* :mod:`repro.metrics.space` - peak word-space tracking (pSpace).
"""

from repro.metrics.accuracy import (
    DeviationReport,
    chi_square_uniformity,
    deviation_report,
    max_dev_normalized,
    multinomial_noise_floor,
    std_dev_normalized,
)
from repro.metrics.space import measure_peak_space
from repro.metrics.timing import measure_processing_time
from repro.metrics.trials import DistributionResult, sampling_distribution

__all__ = [
    "std_dev_normalized",
    "max_dev_normalized",
    "chi_square_uniformity",
    "multinomial_noise_floor",
    "deviation_report",
    "DeviationReport",
    "sampling_distribution",
    "DistributionResult",
    "measure_processing_time",
    "measure_peak_space",
]
