"""Exception types shared across the :mod:`repro` package."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ParameterError(ReproError, ValueError):
    """An argument is outside its documented domain."""


class DimensionMismatchError(ReproError, ValueError):
    """A point's dimensionality does not match the structure it is fed to."""


class LevelOverflowError(ReproError, RuntimeError):
    """The sliding-window hierarchy ran out of levels.

    This corresponds to Algorithm 3 returning "error" (Line 17); the paper
    shows it happens with probability at most 1/m^2 (Lemma 2.8).
    """


class EmptySampleError(ReproError, RuntimeError):
    """A sample was requested but the sampler holds no points.

    Raised when querying an empty stream, or in the (provably negligible)
    event that every tracked point was subsampled away.
    """


class MergeUnsupportedError(ReproError, RuntimeError):
    """This summary does not support merging.

    Raised by :meth:`repro.api.Summary.merge` implementations whose state
    cannot be combined exactly (e.g. the sliding-window hierarchy, whose
    level assignment depends on the full interleaved arrival order, not
    just on the union of the two states).
    """


class ExecutorError(ReproError, RuntimeError):
    """A shard executor's worker failed or became unusable.

    Raised when a thread/process shard worker hit an exception while
    ingesting a chunk (the original traceback is embedded in the
    message), when a worker process died unexpectedly, or when work is
    submitted to a closed executor.
    """


class CheckpointError(ReproError, ValueError):
    """A checkpoint envelope cannot be written or restored.

    Raised for unknown format versions, unregistered summary keys, and
    summaries whose state is not serialisable (e.g. a
    :class:`~repro.baselines.minrank.MinRankL0Sampler` with a custom
    ``key`` callable).
    """


class BackendError(ReproError, RuntimeError):
    """A state backend operation failed (I/O, protocol, connectivity)."""


class BackendUnavailableError(BackendError):
    """The requested backend cannot run in this environment.

    Raised when constructing a backend whose driver is not importable
    (e.g. :class:`repro.backends.RedisBackend` without the ``redis``
    package - install the ``[redis]`` extra).
    """


class CASConflictError(BackendError):
    """A compare-and-swap lost the race: the key's version moved.

    Carries the version the writer expected and the version the backend
    actually held, so the caller can re-read, rebase its update on the
    winner's state, and retry - the losing write is never applied, even
    partially.
    """

    def __init__(
        self, key: str, *, expected_version: int, actual_version: int
    ) -> None:
        super().__init__(
            f"compare_and_swap on {key!r} expected version "
            f"{expected_version}, backend holds {actual_version}"
        )
        self.key = key
        self.expected_version = expected_version
        self.actual_version = actual_version
