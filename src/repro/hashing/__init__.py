"""Hash families used by the samplers.

The paper assumes fully random hash functions and notes (Section 2.1) that
Theta(log m)-wise independence suffices by Chernoff-Hoeffding bounds for
limited independence.  This subpackage provides both:

* :class:`~repro.hashing.kwise.KWiseHash` - a k-wise independent polynomial
  hash over the Mersenne prime 2^61 - 1 (theory-faithful choice), and
* :class:`~repro.hashing.mix.SplitMix64` - a fast 64-bit finalizer-style
  mixer behaving like a fully random function in practice (default).

Both are wrapped by :class:`~repro.hashing.sampling.SamplingHash`, which
implements the paper's ``h_R(x) = h(x) mod R`` sub-sampling scheme with the
nested property (Fact 1(b)): a key sampled at rate ``1/2R`` is also sampled
at rate ``1/R``.
"""

from repro.hashing.kwise import KWiseHash
from repro.hashing.mix import SplitMix64, splitmix64
from repro.hashing.sampling import SamplingHash

__all__ = ["KWiseHash", "SplitMix64", "splitmix64", "SamplingHash"]
