"""The paper's ``h_R`` sub-sampling hash (Section 2.1).

Given a base hash ``h`` and a power-of-two ``R``, the paper defines
``h_R(x) = h(x) mod R`` and calls a key *sampled* when ``h_R(x) = 0``; the
sample rate is ``1/R``.  Because ``R`` divides ``2R``, a key sampled at rate
``1/(2R)`` is always sampled at rate ``1/R`` (Fact 1(b)); this nesting is
what lets Algorithm 1 halve the rate in place and lets the sliding-window
hierarchy (Algorithm 3) promote points from level l to level l+1.
"""

from __future__ import annotations

from typing import Callable, Iterable, Protocol

from repro.errors import ParameterError
from repro.hashing.mix import SplitMix64


class BaseHash(Protocol):
    """Anything mapping an int key to a non-negative int hash value."""

    def __call__(self, key: int) -> int:  # pragma: no cover - protocol
        ...


class SamplingHash:
    """Implements ``h_R(x) = h(x) mod R`` for powers-of-two ``R``.

    Instances are stateless with respect to ``R``; the same object serves
    every level of the sliding-window hierarchy so that sampling decisions
    are nested across rates.

    Parameters
    ----------
    base:
        The underlying hash function.  Defaults to a seeded
        :class:`~repro.hashing.mix.SplitMix64`.
    seed:
        Convenience: when ``base`` is omitted, seed for the default mixer.

    Examples
    --------
    >>> h = SamplingHash(seed=1)
    >>> all(h.is_sampled(k, 1) for k in range(10))  # rate 1 samples all
    True
    >>> key = 12345
    >>> h.is_sampled(key, 8) and not h.is_sampled(key, 4)  # nesting
    False
    """

    __slots__ = ("_base",)

    def __init__(self, base: BaseHash | None = None, *, seed: int = 0) -> None:
        self._base: Callable[[int], int] = base if base is not None else SplitMix64(seed)

    @property
    def base(self) -> Callable[[int], int]:
        """The underlying integer hash function."""
        return self._base

    @staticmethod
    def _check_rate(rate_denominator: int) -> None:
        if rate_denominator < 1 or rate_denominator & (rate_denominator - 1):
            raise ParameterError(
                f"rate denominator R must be a positive power of two, got {rate_denominator}"
            )

    def value(self, key: int) -> int:
        """Return the raw base-hash value of ``key``."""
        return self._base(key)

    def value_many(self, keys: Iterable[int]) -> list[int]:
        """Raw base-hash values of a batch of keys.

        Delegates to the base hash's own batch evaluator when it has one
        (:meth:`SplitMix64.many <repro.hashing.mix.SplitMix64.many>`,
        :meth:`KWiseHash.many <repro.hashing.kwise.KWiseHash.many>`), which
        amortises the per-call overhead; equals ``[self.value(k) for k in
        keys]`` either way.
        """
        many = getattr(self._base, "many", None)
        if many is not None:
            return many(keys)
        base = self._base
        return [base(key) for key in keys]

    def value_chunk(self, keys):
        """Raw base-hash values of a numpy uint64 key array, as uint64.

        The batch entry point used by the vectorised chunk geometry:
        delegates to the base hash's vectorised evaluator when it has
        one (:meth:`SplitMix64.many_chunk
        <repro.hashing.mix.SplitMix64.many_chunk>`), otherwise runs the
        scalar batch evaluator and repacks - either way the values equal
        ``[self.value(int(k)) for k in keys]``.  Requires numpy.
        """
        many_chunk = getattr(self._base, "many_chunk", None)
        if many_chunk is not None:
            return many_chunk(keys)
        import numpy

        return numpy.array(
            self.value_many(keys.tolist()), dtype=numpy.uint64
        )

    def residue(self, key: int, rate_denominator: int) -> int:
        """Return ``h(key) mod R`` (the paper's ``h_R(key)``)."""
        self._check_rate(rate_denominator)
        return self._base(key) & (rate_denominator - 1)

    def is_sampled(self, key: int, rate_denominator: int) -> bool:
        """True when ``h_R(key) = 0``, i.e. ``key`` survives rate ``1/R``.

        Sampling decisions are nested: ``is_sampled(k, 2 * R)`` implies
        ``is_sampled(k, R)`` for every key ``k``.
        """
        self._check_rate(rate_denominator)
        return self._base(key) & (rate_denominator - 1) == 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SamplingHash(base={self._base!r})"
