"""k-wise independent polynomial hashing over the Mersenne prime 2^61 - 1.

The paper (Section 2.1) notes that all analyses go through with
Theta(log m)-wise independent hash functions via the Chernoff-Hoeffding
bounds for limited independence of Schmidt, Siegel and Srinivasan (SIAM J.
Discrete Math., 1995).  This module provides the standard construction: a
degree-(k-1) polynomial with random coefficients evaluated over GF(p) for
the Mersenne prime p = 2^61 - 1, which supports fast modular reduction.
"""

from __future__ import annotations

import random
from typing import Iterable

from repro.errors import ParameterError

#: The Mersenne prime 2^61 - 1 used as the field size.
MERSENNE_P = (1 << 61) - 1


def _mod_mersenne(value: int) -> int:
    """Reduce ``value`` modulo 2^61 - 1 without a division.

    Works for any non-negative ``value`` < 2^122 (i.e. a product of two
    field elements), which is all the polynomial evaluation ever needs.
    """
    value = (value & MERSENNE_P) + (value >> 61)
    if value >= MERSENNE_P:
        value -= MERSENNE_P
    return value


class KWiseHash:
    """A k-wise independent hash function ``h : int -> [0, 2^61 - 1)``.

    Evaluates a random polynomial of degree ``k - 1`` over GF(2^61 - 1) by
    Horner's rule.  Any ``k`` distinct keys receive fully independent values.

    Parameters
    ----------
    k:
        Independence parameter (>= 2).  The paper needs Theta(log m);
        ``k = 32`` covers any practically conceivable stream length.
    seed:
        Seed for drawing the polynomial's coefficients.

    Examples
    --------
    >>> h = KWiseHash(k=4, seed=7)
    >>> h(42) == h(42)
    True
    >>> 0 <= h(42) < MERSENNE_P
    True
    """

    __slots__ = ("_coefficients", "_k")

    def __init__(self, k: int = 32, seed: int = 0) -> None:
        if k < 2:
            raise ParameterError(f"independence k must be >= 2, got {k}")
        rng = random.Random(seed)
        # The leading coefficient is non-zero so the polynomial has true
        # degree k-1; the remaining ones are arbitrary field elements.
        leading = rng.randrange(1, MERSENNE_P)
        rest = [rng.randrange(MERSENNE_P) for _ in range(k - 1)]
        self._coefficients = tuple([leading] + rest)
        self._k = k

    @property
    def k(self) -> int:
        """The independence parameter."""
        return self._k

    @property
    def coefficients(self) -> tuple[int, ...]:
        """The polynomial's coefficients (for checkpoint/restore)."""
        return self._coefficients

    @classmethod
    def from_coefficients(cls, coefficients: tuple[int, ...]) -> "KWiseHash":
        """Rebuild a hash from stored coefficients."""
        if len(coefficients) < 2:
            raise ParameterError("need at least 2 coefficients")
        instance = cls.__new__(cls)
        instance._coefficients = tuple(int(c) % MERSENNE_P for c in coefficients)
        instance._k = len(coefficients)
        return instance

    def __call__(self, key: int) -> int:
        """Evaluate the polynomial at ``key`` (reduced into the field)."""
        x = key % MERSENNE_P
        acc = 0
        for coefficient in self._coefficients:
            acc = _mod_mersenne(acc * x + coefficient)
        return acc

    def many(self, keys: Iterable[int]) -> list[int]:
        """Batch Horner evaluation; equals ``[self(k) for k in keys]``.

        The coefficients and the Mersenne reduction run inline over the
        whole batch, so the per-key cost is ``k`` multiply-reduce steps
        with no Python call overhead - the amortisation the Schmidt-
        Siegel-Srinivasan construction is known for in array settings.

        >>> h = KWiseHash(k=4, seed=7)
        >>> h.many([1, 2, 3]) == [h(1), h(2), h(3)]
        True
        """
        p = MERSENNE_P
        coefficients = self._coefficients
        out = []
        append = out.append
        for key in keys:
            x = key % p
            acc = 0
            for coefficient in coefficients:
                acc = acc * x + coefficient
                acc = (acc & p) + (acc >> 61)
                if acc >= p:
                    acc -= p
            append(acc)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KWiseHash(k={self._k})"
