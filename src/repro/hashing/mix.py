"""SplitMix64 - a fast, high-quality 64-bit integer mixer.

The samplers hash grid-cell identifiers.  A finalizer-style mixer such as
splitmix64 passes the usual avalanche test batteries and is the standard
practical stand-in for a fully random hash function on 64-bit keys; the
paper's experiments likewise use an ad-hoc fast hash.  The theory-faithful
alternative (limited-independence polynomial hashing) lives in
:mod:`repro.hashing.kwise`.
"""

from __future__ import annotations

from typing import Iterable

_MASK64 = (1 << 64) - 1
_GAMMA = 0x9E3779B97F4A7C15


def splitmix64(value: int) -> int:
    """Mix ``value`` into a uniform-looking 64-bit output.

    This is the finalizer of the splitmix64 generator (Steele et al.,
    "Fast splittable pseudorandom number generators", OOPSLA 2014).

    >>> splitmix64(0) == splitmix64(0)
    True
    >>> 0 <= splitmix64(123456789) < 2 ** 64
    True
    """
    z = (value + _GAMMA) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


class SplitMix64:
    """A seeded hash function ``h : int -> [0, 2^64)`` built on splitmix64.

    Two instances with the same seed compute identical functions; instances
    with different seeds behave like independent random functions.

    Parameters
    ----------
    seed:
        Any integer; it is folded into the key before mixing.
    """

    __slots__ = ("_seed",)

    def __init__(self, seed: int = 0, *, premixed: bool = False) -> None:
        # Pre-mix the seed so that consecutive seeds give unrelated
        # functions; ``premixed`` restores an exact internal state (used by
        # checkpoint/restore in :mod:`repro.persist`).
        self._seed = seed & _MASK64 if premixed else splitmix64(seed & _MASK64)

    @property
    def seed(self) -> int:
        """The internal (pre-mixed) seed value."""
        return self._seed

    def __call__(self, key: int) -> int:
        """Return a 64-bit hash of ``key``."""
        # Two mixing rounds separated by a seed injection: one round with a
        # simple xor-ed seed is distinguishable for structured key sets
        # (e.g. consecutive grid-cell IDs); two rounds are not.
        return splitmix64(splitmix64(key & _MASK64) ^ self._seed)

    def many_chunk(self, keys):
        """Vectorised :meth:`many` over a numpy uint64 array.

        ``keys`` is a ``numpy.uint64`` array; returns a ``numpy.uint64``
        array with ``out[i] == self(int(keys[i]))`` for every lane (the
        same two splitmix64 rounds around the seed injection).  This is
        the hashing layer's batch entry point for the vectorised chunk
        geometry (:mod:`repro.geometry.kernels`); it requires numpy.
        """
        from repro.geometry.kernels import splitmix64_chunk

        import numpy

        return splitmix64_chunk(
            splitmix64_chunk(keys) ^ numpy.uint64(self._seed)
        )

    def many(self, keys: Iterable[int]) -> list[int]:
        """Hash a batch of keys; equals ``[self(k) for k in keys]``.

        Both mixing rounds run in one loop with the constants held in
        locals, amortising the per-call overhead over the batch.
        """
        mask = _MASK64
        gamma = _GAMMA
        seed = self._seed
        out = []
        append = out.append
        for key in keys:
            z = ((key & mask) + gamma) & mask
            z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & mask
            z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & mask
            z = ((z ^ (z >> 31)) ^ seed) & mask
            z = (z + gamma) & mask
            z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & mask
            z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & mask
            append((z ^ (z >> 31)) & mask)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SplitMix64(seed={self._seed:#x})"
