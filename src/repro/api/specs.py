"""Typed, frozen, validated configuration for every summary.

A :class:`SummarySpec` is the declarative half of the unified API: it
captures *what* to build (geometry, accuracy, window, seeds) as an
immutable dataclass whose invariants are checked at construction, and
the registry (:func:`repro.api.build`) turns it into a live summary.
Specs are plain data - hashable, comparable, serialisable with
``dataclasses.asdict`` - so they can be logged, shipped to shard
workers, or embedded in checkpoints verbatim.

Every spec knows its registry key (``spec.key``), so
``spec.build()`` is shorthand for ``repro.api.build(spec.key, spec)``.

>>> from repro.api.specs import L0InfiniteSpec
>>> spec = L0InfiniteSpec(alpha=0.5, dim=2, seed=7)
>>> sampler = spec.build()
>>> sampler.process_many([(0.0, 0.0), (0.1, 0.0), (9.0, 9.0)])
3
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, ClassVar, Literal

from repro.core.base import DEFAULT_BATCH_SIZE, DEFAULT_KAPPA0
from repro.core.f0_infinite import DEFAULT_KAPPA_B
from repro.core.f0_sliding import FM_PHI
from repro.errors import ParameterError
from repro.streams.windows import SequenceWindow, TimeWindow, WindowSpec


@dataclass(frozen=True, kw_only=True)
class SummarySpec:
    """Base of every summary configuration.

    Attributes
    ----------
    seed:
        Master seed of the summary's randomness (grid offset, hash
        functions, per-copy derived seeds).  ``None`` draws fresh
        randomness - two summaries that are ever to be merged or
        differentially compared should fix it.
    """

    #: Registry key of the summary this spec builds (class attribute).
    key: ClassVar[str] = ""

    seed: int | None = None

    def build(self, **overrides: Any) -> Any:
        """Construct the summary this spec describes (via the registry)."""
        from repro.api.registry import build

        return build(type(self).key, self, **overrides)

    def to_state(self) -> dict[str, Any]:
        """Spec as a plain dict (stored inside checkpoint envelopes)."""
        state = dataclasses.asdict(self)
        state["key"] = type(self).key
        return state


@dataclass(frozen=True, kw_only=True)
class PointSummarySpec(SummarySpec):
    """Shared geometry of the point-stream summaries.

    Attributes
    ----------
    alpha:
        Near-duplicate distance threshold (the paper's user input).
    dim:
        Ambient dimension of the points.
    """

    alpha: float
    dim: int

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ParameterError(
                f"alpha must be positive, got {self.alpha}"
            )
        if self.dim < 1:
            raise ParameterError(f"dim must be >= 1, got {self.dim}")


@dataclass(frozen=True, kw_only=True)
class WindowedSpec(PointSummarySpec):
    """Mixin for sliding-window summaries.

    Exactly one of ``window_size`` (sequence-based: last N points) and
    ``window_seconds`` (time-based: last w time units) selects the
    window flavour; ``window_capacity`` bounds the points per window
    (required for time-based windows).
    """

    window_size: int | None = None
    window_seconds: float | None = None
    window_capacity: int | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if (self.window_size is None) == (self.window_seconds is None):
            raise ParameterError(
                "exactly one of window_size and window_seconds is required"
            )
        if self.window_size is not None and self.window_size < 1:
            raise ParameterError(
                f"window_size must be >= 1, got {self.window_size}"
            )
        if self.window_seconds is not None:
            if self.window_seconds <= 0:
                raise ParameterError(
                    f"window_seconds must be positive, got {self.window_seconds}"
                )
            if self.window_capacity is None:
                raise ParameterError(
                    "window_capacity is required for time-based windows "
                    "(the duration does not bound the point count)"
                )

    def window_spec(self) -> WindowSpec:
        """The live window object this spec describes."""
        if self.window_size is not None:
            return SequenceWindow(self.window_size)
        assert self.window_seconds is not None
        return TimeWindow(self.window_seconds)


@dataclass(frozen=True, kw_only=True)
class L0InfiniteSpec(PointSummarySpec):
    """Algorithm 1: robust l0-sampling in the infinite window."""

    key: ClassVar[str] = "l0-infinite"

    kappa0: float = DEFAULT_KAPPA0
    expected_stream_length: int | None = None
    grid_side: float | None = None
    kwise: int | None = None
    track_members: bool = False
    accept_capacity: int | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.kappa0 <= 0:
            raise ParameterError(
                f"kappa0 must be positive, got {self.kappa0}"
            )


@dataclass(frozen=True, kw_only=True)
class L0SlidingSpec(WindowedSpec):
    """Algorithms 3-5: robust l0-sampling over a sliding window."""

    key: ClassVar[str] = "l0-sliding"

    kappa0: float = DEFAULT_KAPPA0
    expected_stream_length: int | None = None
    grid_side: float | None = None
    kwise: int | None = None


@dataclass(frozen=True, kw_only=True)
class KSampleSpec(PointSummarySpec):
    """Section 2.3: k distinct samples, with or without replacement.

    ``window_size``/``window_seconds`` are optional here (``None`` means
    the infinite window), unlike :class:`WindowedSpec` which requires a
    window.
    """

    key: ClassVar[str] = "ksample"

    k: int = 1
    replacement: bool = False
    window_size: int | None = None
    window_seconds: float | None = None
    window_capacity: int | None = None
    kappa0: float = DEFAULT_KAPPA0
    expected_stream_length: int | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.k < 1:
            raise ParameterError(f"k must be >= 1, got {self.k}")
        if self.window_size is not None and self.window_seconds is not None:
            raise ParameterError(
                "window_size and window_seconds are mutually exclusive"
            )

    def window_spec(self) -> WindowSpec | None:
        """The window object, or ``None`` for the infinite window."""
        if self.window_size is not None:
            return SequenceWindow(self.window_size)
        if self.window_seconds is not None:
            return TimeWindow(self.window_seconds)
        return None


@dataclass(frozen=True, kw_only=True)
class F0InfiniteSpec(PointSummarySpec):
    """Section 5: (1 + eps) robust F0 estimation, infinite window."""

    key: ClassVar[str] = "f0-infinite"

    epsilon: float = 0.2
    copies: int = 9
    kappa_b: float = DEFAULT_KAPPA_B
    grid_side: float | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0 < self.epsilon <= 1:
            raise ParameterError(
                f"epsilon must be in (0, 1], got {self.epsilon}"
            )
        if self.copies < 1:
            raise ParameterError(f"copies must be >= 1, got {self.copies}")


@dataclass(frozen=True, kw_only=True)
class F0SlidingSpec(WindowedSpec):
    """Section 5: robust F0 estimation over a sliding window."""

    key: ClassVar[str] = "f0-sliding"

    copies: int = 16
    mode: Literal["ht", "fm", "hll"] = "ht"
    calibration: float = FM_PHI
    kappa0: float = DEFAULT_KAPPA0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.copies < 1:
            raise ParameterError(f"copies must be >= 1, got {self.copies}")
        if self.mode not in ("ht", "fm", "hll"):
            raise ParameterError(
                f"mode must be 'ht', 'fm' or 'hll', got {self.mode!r}"
            )


@dataclass(frozen=True, kw_only=True)
class HeavyHittersSpec(PointSummarySpec):
    """Robust heavy hitters (SpaceSaving over near-duplicate groups)."""

    key: ClassVar[str] = "heavy-hitters"

    epsilon: float = 0.01
    phi: float = 0.05

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0 < self.epsilon <= 1:
            raise ParameterError(
                f"epsilon must be in (0, 1], got {self.epsilon}"
            )
        if not 0 < self.phi <= 1:
            raise ParameterError(f"phi must be in (0, 1], got {self.phi}")


@dataclass(frozen=True, kw_only=True)
class PipelineSpec(PointSummarySpec):
    """Sharded batched ingestion (:class:`repro.engine.BatchPipeline`).

    Attributes
    ----------
    executor:
        Where shard ingestion runs (see :mod:`repro.engine.executors`):
        ``"serial"`` (default) ingests chunks synchronously in the
        calling process, ``"thread"`` fans them out over worker threads,
        ``"process"`` ships them to worker processes holding shard
        replicas and folds finished shard states back in as they arrive
        (streaming merge), ``"remote"`` enqueues chunks into a shared
        :class:`~repro.backends.base.StateBackend` served by
        lease-holding workers that may live on other machines
        (``python -m repro.engine.remote_worker``).  Every choice is
        ``state_fingerprint``-equivalent; only wall-clock throughput
        differs.
    num_workers:
        Worker threads/processes for the parallel executors (capped at
        ``num_shards``, the unit of parallelism).  ``None`` means one
        worker per shard - except under the remote executor, where it
        means one *local* worker thread and ``0`` is allowed (every
        worker is an external process someone launches against the
        queue).  Ignored by the serial executor.
    transport:
        Chunk transport of the process executor: ``"auto"`` (default)
        ships eligible chunks zero-copy through pooled shared-memory
        segments when numpy is available and falls back to pickling per
        chunk, ``"shm"`` requires numpy, ``"pickle"`` forces the legacy
        queue transport.  Ignored by the in-process executors; never
        observable in sampler state.
    work_stealing:
        Whether the process executor may migrate a backlogged shard to
        an idle worker (on by default).  Also state-unobservable:
        per-shard chunk order is preserved across migrations.
    queue_backend / queue_path / queue_url / queue_key / lease_ttl:
        Remote-executor knobs (rejected for every other executor).  The
        backend flavour (``"memory"`` default - in-process only, for
        the zero-configuration / test mode), its location, the queue's
        key namespace (default ``"remote-queue"``) and the seconds
        without a heartbeat before a worker's shard is stolen.  All
        plain data, so specs embed in checkpoints unchanged.
    """

    key: ClassVar[str] = "batch-pipeline"

    num_shards: int = 4
    batch_size: int = DEFAULT_BATCH_SIZE
    executor: Literal["serial", "thread", "process", "remote"] = "serial"
    num_workers: int | None = None
    transport: Literal["auto", "shm", "pickle"] = "auto"
    work_stealing: bool = True
    queue_backend: Literal["memory", "file", "redis"] | None = None
    queue_path: str | None = None
    queue_url: str | None = None
    queue_key: str | None = None
    lease_ttl: float = 5.0
    kappa0: float = DEFAULT_KAPPA0
    expected_stream_length: int | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.num_shards < 1:
            raise ParameterError(
                f"num_shards must be >= 1, got {self.num_shards}"
            )
        if self.batch_size < 1:
            raise ParameterError(
                f"batch_size must be >= 1, got {self.batch_size}"
            )
        from repro.engine.executors import EXECUTOR_NAMES, TRANSPORT_NAMES

        if self.executor not in EXECUTOR_NAMES:
            raise ParameterError(
                f"executor must be one of {', '.join(EXECUTOR_NAMES)}, "
                f"got {self.executor!r}"
            )
        if self.transport not in TRANSPORT_NAMES:
            raise ParameterError(
                f"transport must be one of {', '.join(TRANSPORT_NAMES)}, "
                f"got {self.transport!r}"
            )
        minimum_workers = 0 if self.executor == "remote" else 1
        if (
            self.num_workers is not None
            and self.num_workers < minimum_workers
        ):
            raise ParameterError(
                f"num_workers must be >= {minimum_workers}, "
                f"got {self.num_workers}"
            )
        if self.executor != "remote":
            for knob in (
                "queue_backend", "queue_path", "queue_url", "queue_key"
            ):
                if getattr(self, knob) is not None:
                    raise ParameterError(
                        f"{knob} applies only to the remote executor, "
                        f"but executor is {self.executor!r}"
                    )
        else:
            from repro.backends.base import BACKEND_NAMES

            if (
                self.queue_backend is not None
                and self.queue_backend not in BACKEND_NAMES
            ):
                raise ParameterError(
                    "queue_backend must be one of "
                    f"{', '.join(BACKEND_NAMES)}, got "
                    f"{self.queue_backend!r}"
                )
        if self.lease_ttl <= 0:
            raise ParameterError(
                f"lease_ttl must be > 0, got {self.lease_ttl}"
            )


# --------------------------------------------------------------------- #
# baselines
# --------------------------------------------------------------------- #


@dataclass(frozen=True, kw_only=True)
class ExactSpec(PointSummarySpec):
    """Ground truth: Omega(n)-space exact robust distinct sampler."""

    key: ClassVar[str] = "exact"


@dataclass(frozen=True, kw_only=True)
class NaiveReservoirSpec(SummarySpec):
    """Motivation baseline: uniform reservoir over raw points."""

    key: ClassVar[str] = "naive-reservoir"


@dataclass(frozen=True, kw_only=True)
class MinRankSpec(SummarySpec):
    """Folklore noiseless min-rank l0-sampler (identity = coordinates)."""

    key: ClassVar[str] = "minrank"


@dataclass(frozen=True, kw_only=True)
class FMSpec(SummarySpec):
    """Flajolet-Martin noiseless F0 sketch."""

    key: ClassVar[str] = "fm"

    copies: int = 16

    def __post_init__(self) -> None:
        if self.copies < 1:
            raise ParameterError(f"copies must be >= 1, got {self.copies}")


@dataclass(frozen=True, kw_only=True)
class LogLogSpec(SummarySpec):
    """Durand-Flajolet LogLog noiseless F0 sketch."""

    key: ClassVar[str] = "loglog"

    bucket_bits: int = 6

    def __post_init__(self) -> None:
        if not 2 <= self.bucket_bits <= 16:
            raise ParameterError(
                f"bucket_bits must be in [2, 16], got {self.bucket_bits}"
            )


@dataclass(frozen=True, kw_only=True)
class HyperLogLogSpec(SummarySpec):
    """HyperLogLog noiseless F0 sketch."""

    key: ClassVar[str] = "hyperloglog"

    bucket_bits: int = 8

    def __post_init__(self) -> None:
        if not 4 <= self.bucket_bits <= 16:
            raise ParameterError(
                f"bucket_bits must be in [4, 16], got {self.bucket_bits}"
            )


@dataclass(frozen=True, kw_only=True)
class BJKSTSpec(SummarySpec):
    """BJKST noiseless F0 sketch (the Section 5 framework's ancestor)."""

    key: ClassVar[str] = "bjkst"

    epsilon: float = 0.2
    kappa: float = 8.0

    def __post_init__(self) -> None:
        if not 0 < self.epsilon <= 1:
            raise ParameterError(
                f"epsilon must be in (0, 1], got {self.epsilon}"
            )
