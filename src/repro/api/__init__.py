"""repro.api - the unified summary API.

One coherent surface over every summary in the library:

* **Typed specs** (:mod:`repro.api.specs`): frozen, validated dataclasses
  describing what to build - geometry, accuracy, windows, seeds.
* **Registry** (:mod:`repro.api.registry`): ``build(key, spec)``
  constructs any sampler, estimator or baseline from its string key;
  :func:`available` lists the keys, :func:`entries` their metadata.
* **Protocol** (:mod:`repro.api.protocol`): every registered summary
  implements :class:`Summary` - ``process_many`` / ``query`` / ``merge``
  / ``to_state`` / ``from_state`` - so engines, shards, checkpoints and
  CLIs compose with every summary instead of being wired per class.

Quickstart
----------
>>> import random
>>> from repro.api import L0InfiniteSpec, build
>>> spec = L0InfiniteSpec(alpha=0.5, dim=2, seed=42)
>>> sampler = build("l0-infinite", spec)      # or spec.build()
>>> sampler.process_many([(0.0, 0.0), (0.1, 0.1), (9.0, 9.0)])
3
>>> sampler.query(rng=random.Random(7)).dim
2

Checkpointing goes through :mod:`repro.persist`::

    from repro.persist import dump_summary, load_summary
    dump_summary(sampler, "ckpt.json")   # versioned envelope
    sampler = load_summary("ckpt.json")  # registry-dispatched restore
"""

from repro.api.protocol import Summary
from repro.api.registry import (
    SummaryEntry,
    available,
    build,
    entries,
    entry,
    register_summary,
    spec_class,
    spec_from_state,
    summary_class,
)
from repro.api.specs import (
    BJKSTSpec,
    ExactSpec,
    F0InfiniteSpec,
    F0SlidingSpec,
    FMSpec,
    HeavyHittersSpec,
    HyperLogLogSpec,
    KSampleSpec,
    L0InfiniteSpec,
    L0SlidingSpec,
    LogLogSpec,
    MinRankSpec,
    NaiveReservoirSpec,
    PipelineSpec,
    PointSummarySpec,
    SummarySpec,
    WindowedSpec,
)

__all__ = [
    "Summary",
    "SummaryEntry",
    "available",
    "build",
    "entries",
    "entry",
    "register_summary",
    "spec_class",
    "spec_from_state",
    "summary_class",
    "SummarySpec",
    "PointSummarySpec",
    "WindowedSpec",
    "L0InfiniteSpec",
    "L0SlidingSpec",
    "KSampleSpec",
    "F0InfiniteSpec",
    "F0SlidingSpec",
    "HeavyHittersSpec",
    "PipelineSpec",
    "ExactSpec",
    "NaiveReservoirSpec",
    "MinRankSpec",
    "FMSpec",
    "LogLogSpec",
    "HyperLogLogSpec",
    "BJKSTSpec",
]
