"""The :class:`Summary` protocol: the one interface every summary speaks.

The paper defines a *family* of robust summaries (l0-samples, F0
estimates, heavy hitters) over one data model; this protocol is the
library-level reflection of that family.  Anything registered in
:mod:`repro.api.registry` implements:

* ``process_many(points) -> int`` - batched ingestion (the engine's
  state-equivalence contract of :class:`repro.core.base.StreamSampler`
  applies: batching is never observable in output);
* ``query(rng=None, **kwargs)`` - the summary's natural answer (a sample
  point, a list of samples, a float estimate, a heavy-hitter list);
* ``merge(*others)`` - a NEW summary of the same type over the union of
  the inputs' streams, or :class:`~repro.errors.MergeUnsupportedError`
  when exact merging is impossible (see each class's docstring);
* ``to_state() -> dict`` / ``from_state(state)`` - lossless round-trip
  through a JSON-compatible dict.  A restored summary continues the
  stream with *decisions identical* to the original: for every core
  sampler, ``repro.engine.state_fingerprint`` of the restored object
  equals the original's.

``summary_key`` is the class's registry key, embedded in checkpoint
envelopes so :func:`repro.persist.summary_from_state` can dispatch the
restore without being told the type.
"""

from __future__ import annotations

import random
from typing import Any, ClassVar, Iterable, Protocol, runtime_checkable

from repro.errors import MergeUnsupportedError, ParameterError


@runtime_checkable
class Summary(Protocol):
    """Structural interface shared by every registered summary."""

    #: Registry key of the class (e.g. ``"l0-infinite"``); written into
    #: checkpoint envelopes and used to dispatch restores.
    summary_key: ClassVar[str]

    def process_many(self, points: Iterable[Any]) -> int:
        """Ingest a batch; returns the number of points processed."""
        ...  # pragma: no cover - protocol

    def query(self, rng: random.Random | None = None, **kwargs: Any) -> Any:
        """Return the summary's natural answer (sample/estimate/hitters)."""
        ...  # pragma: no cover - protocol

    def merge(self, *others: "Summary") -> "Summary":
        """Combine with same-typed summaries into one over the union."""
        ...  # pragma: no cover - protocol

    def to_state(self) -> dict[str, Any]:
        """Serialise to a JSON-compatible dict (no envelope)."""
        ...  # pragma: no cover - protocol

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> "Summary":
        """Rebuild an instance from :meth:`to_state` output."""
        ...  # pragma: no cover - protocol


def check_merge_peers(summary: Any, others: tuple[Any, ...]) -> None:
    """Shared preamble of every ``merge``: same concrete type throughout.

    Raises
    ------
    ParameterError
        When any peer is of a different type than ``summary``.
    """
    for other in others:
        # Subclass peers are allowed (e.g. ShardSampler merges into
        # RobustL0SamplerIW.merge); unrelated types are not.
        if not isinstance(other, type(summary)):
            raise ParameterError(
                f"cannot merge {type(summary).__name__} with "
                f"{type(other).__name__}"
            )


def check_compatible_configs(summary: Any, others: tuple[Any, ...]) -> None:
    """Merging requires value-identical grid + hash configurations.

    Two summaries built from the same spec (same seed) share equal-valued
    configurations even though the objects differ; summaries built with
    different seeds sample different cells and cannot be combined
    consistently.
    """
    reference = summary._config

    def signature(config):
        base = config.hash.base
        return (
            config.alpha,
            config.dim,
            config.grid.side,
            config.grid.offset,
            type(base).__name__,
            getattr(base, "seed", None),
            getattr(base, "coefficients", None),
        )

    expected = signature(reference)
    for other in others:
        if signature(other._config) != expected:
            raise ParameterError(
                "cannot merge summaries with different grid/hash "
                "configurations (build them from one spec, or share a "
                "config explicitly)"
            )


def merge_unsupported(summary: Any, reason: str) -> MergeUnsupportedError:
    """Uniform error for summaries that cannot merge."""
    return MergeUnsupportedError(
        f"{type(summary).__name__} does not support merge: {reason}"
    )
