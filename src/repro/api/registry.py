"""String-keyed registry: one construction path for every summary.

``build("l0-sliding", spec)`` turns a validated
:class:`~repro.api.specs.SummarySpec` into a live summary; the same
table drives checkpoint restores (:func:`repro.persist.summary_from_state`
looks the envelope's ``summary`` key up here) and the generic contract
test in ``tests/test_api.py`` (every registered key must build, ingest,
query, checkpoint and - where supported - merge through the same code
path).

Extensions register their own summaries with :func:`register_summary`;
the entry carries everything the rest of the library needs to treat the
new summary uniformly: its spec type, its class (for restore dispatch)
and a factory closing over any construction quirks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.api import specs as _specs
from repro.api.specs import SummarySpec
from repro.baselines.bjkst import BJKSTSketch
from repro.baselines.exact import ExactDistinctSampler
from repro.baselines.fm import FMSketch
from repro.baselines.hyperloglog import HyperLogLog
from repro.baselines.loglog import LogLogSketch
from repro.baselines.minrank import MinRankL0Sampler
from repro.baselines.naive import NaiveReservoirSampler
from repro.core.f0_infinite import RobustF0EstimatorIW
from repro.core.f0_sliding import RobustF0EstimatorSW
from repro.core.heavy_hitters import RobustHeavyHitters
from repro.core.infinite_window import RobustL0SamplerIW
from repro.core.ksample import KDistinctSampler
from repro.core.sliding_window import RobustL0SamplerSW
from repro.errors import ParameterError


@dataclass(frozen=True)
class SummaryEntry:
    """One registered summary kind."""

    key: str
    spec_cls: type[SummarySpec]
    summary_cls: type
    factory: Callable[..., Any]
    supports_merge: bool
    description: str


_REGISTRY: dict[str, SummaryEntry] = {}


def register_summary(
    key: str,
    spec_cls: type[SummarySpec],
    summary_cls: type,
    factory: Callable[..., Any],
    *,
    supports_merge: bool,
    description: str,
) -> None:
    """Register a summary kind under ``key`` (idempotent re-registration
    of the same class is allowed; conflicting keys are an error)."""
    existing = _REGISTRY.get(key)
    if existing is not None and existing.summary_cls is not summary_cls:
        raise ParameterError(
            f"registry key {key!r} already bound to "
            f"{existing.summary_cls.__name__}"
        )
    _REGISTRY[key] = SummaryEntry(
        key=key,
        spec_cls=spec_cls,
        summary_cls=summary_cls,
        factory=factory,
        supports_merge=supports_merge,
        description=description,
    )


def available() -> list[str]:
    """Sorted list of registered summary keys."""
    return sorted(_REGISTRY)


def entry(key: str) -> SummaryEntry:
    """The registry entry of ``key`` (raises on unknown keys)."""
    found = _REGISTRY.get(key)
    if found is None:
        raise ParameterError(
            f"unknown summary key {key!r}; available: "
            + ", ".join(available())
        )
    return found


def entries() -> list[SummaryEntry]:
    """All registry entries, sorted by key."""
    return [_REGISTRY[key] for key in available()]


def summary_class(key: str) -> type:
    """The summary class bound to ``key`` (checkpoint restore dispatch)."""
    return entry(key).summary_cls


def spec_class(key: str) -> type[SummarySpec]:
    """The spec dataclass bound to ``key``."""
    return entry(key).spec_cls


def spec_from_state(state: dict[str, Any]) -> SummarySpec:
    """Rebuild a spec from :meth:`SummarySpec.to_state` output."""
    fields = dict(state)
    key = fields.pop("key")
    return spec_class(key)(**fields)


def build(key: str, spec: SummarySpec | None = None, **kwargs: Any) -> Any:
    """Construct the summary registered under ``key``.

    Parameters
    ----------
    key:
        Registry key, e.g. ``"l0-sliding"``; see :func:`available`.
    spec:
        A matching spec instance.  When omitted, one is built from
        ``kwargs`` (so ``build("l0-infinite", alpha=0.5, dim=2)`` works
        without importing the spec class).
    kwargs:
        With ``spec`` given: construction overrides forwarded to the
        factory (e.g. the coordinator passes ``config=`` so all shards
        share one grid/hash).  Without ``spec``: the spec's fields.

    >>> sampler = build("l0-infinite", alpha=0.5, dim=1, seed=3)
    >>> sampler.process_many([(0.0,), (0.1,), (9.0,)])
    3
    >>> round(sampler.estimate_f0())
    2
    """
    found = entry(key)
    if spec is None:
        spec = found.spec_cls(**kwargs)
        kwargs = {}
    elif not isinstance(spec, found.spec_cls):
        raise ParameterError(
            f"summary {key!r} expects a {found.spec_cls.__name__}, "
            f"got {type(spec).__name__}"
        )
    return found.factory(spec, **kwargs)


# --------------------------------------------------------------------- #
# built-in factories
# --------------------------------------------------------------------- #


def _build_l0_infinite(spec: _specs.L0InfiniteSpec, *, config=None):
    return RobustL0SamplerIW(
        spec.alpha,
        spec.dim,
        kappa0=spec.kappa0,
        expected_stream_length=spec.expected_stream_length,
        seed=spec.seed,
        grid_side=spec.grid_side,
        kwise=spec.kwise,
        track_members=spec.track_members,
        accept_capacity=spec.accept_capacity,
        config=config,
    )


def _build_l0_sliding(spec: _specs.L0SlidingSpec, *, config=None):
    return RobustL0SamplerSW(
        spec.alpha,
        spec.dim,
        spec.window_spec(),
        window_capacity=spec.window_capacity,
        kappa0=spec.kappa0,
        expected_stream_length=spec.expected_stream_length,
        seed=spec.seed,
        grid_side=spec.grid_side,
        kwise=spec.kwise,
        config=config,
    )


def _build_ksample(spec: _specs.KSampleSpec):
    return KDistinctSampler(
        spec.alpha,
        spec.dim,
        spec.k,
        replacement=spec.replacement,
        window=spec.window_spec(),
        window_capacity=spec.window_capacity,
        seed=spec.seed,
        kappa0=spec.kappa0,
        expected_stream_length=spec.expected_stream_length,
    )


def _build_f0_infinite(spec: _specs.F0InfiniteSpec):
    return RobustF0EstimatorIW(
        spec.alpha,
        spec.dim,
        epsilon=spec.epsilon,
        copies=spec.copies,
        kappa_b=spec.kappa_b,
        seed=spec.seed,
        grid_side=spec.grid_side,
    )


def _build_f0_sliding(spec: _specs.F0SlidingSpec):
    return RobustF0EstimatorSW(
        spec.alpha,
        spec.dim,
        spec.window_spec(),
        window_capacity=spec.window_capacity,
        copies=spec.copies,
        mode=spec.mode,
        calibration=spec.calibration,
        kappa0=spec.kappa0,
        seed=spec.seed,
    )


def _build_heavy_hitters(spec: _specs.HeavyHittersSpec):
    return RobustHeavyHitters(
        spec.alpha,
        spec.dim,
        epsilon=spec.epsilon,
        seed=spec.seed,
        phi=spec.phi,
    )


def _build_pipeline(spec: _specs.PipelineSpec):
    from repro.engine.pipeline import BatchPipeline

    return BatchPipeline(spec=spec)


def _build_exact(spec: _specs.ExactSpec):
    return ExactDistinctSampler(spec.alpha, spec.dim, seed=spec.seed)


def _build_naive(spec: _specs.NaiveReservoirSpec):
    import random

    rng = random.Random(spec.seed) if spec.seed is not None else None
    return NaiveReservoirSampler(rng=rng)


def _build_minrank(spec: _specs.MinRankSpec):
    return MinRankL0Sampler(seed=spec.seed if spec.seed is not None else 0)


def _build_fm(spec: _specs.FMSpec):
    return FMSketch(
        copies=spec.copies, seed=spec.seed if spec.seed is not None else 0
    )


def _build_loglog(spec: _specs.LogLogSpec):
    return LogLogSketch(
        bucket_bits=spec.bucket_bits,
        seed=spec.seed if spec.seed is not None else 0,
    )


def _build_hyperloglog(spec: _specs.HyperLogLogSpec):
    return HyperLogLog(
        bucket_bits=spec.bucket_bits,
        seed=spec.seed if spec.seed is not None else 0,
    )


def _build_bjkst(spec: _specs.BJKSTSpec):
    return BJKSTSketch(
        epsilon=spec.epsilon,
        kappa=spec.kappa,
        seed=spec.seed if spec.seed is not None else 0,
    )


def _register_builtins() -> None:
    from repro.engine.pipeline import BatchPipeline

    register_summary(
        "l0-infinite",
        _specs.L0InfiniteSpec,
        RobustL0SamplerIW,
        _build_l0_infinite,
        supports_merge=True,
        description="Algorithm 1: robust l0-sample, infinite window",
    )
    register_summary(
        "l0-sliding",
        _specs.L0SlidingSpec,
        RobustL0SamplerSW,
        _build_l0_sliding,
        supports_merge=False,
        description="Algorithms 3-5: robust l0-sample, sliding window",
    )
    register_summary(
        "ksample",
        _specs.KSampleSpec,
        KDistinctSampler,
        _build_ksample,
        supports_merge=True,
        description="Section 2.3: k distinct samples (+/- replacement)",
    )
    register_summary(
        "f0-infinite",
        _specs.F0InfiniteSpec,
        RobustF0EstimatorIW,
        _build_f0_infinite,
        supports_merge=True,
        description="Section 5: (1+eps) robust F0, infinite window",
    )
    register_summary(
        "f0-sliding",
        _specs.F0SlidingSpec,
        RobustF0EstimatorSW,
        _build_f0_sliding,
        supports_merge=False,
        description="Section 5: robust F0 over a sliding window",
    )
    register_summary(
        "heavy-hitters",
        _specs.HeavyHittersSpec,
        RobustHeavyHitters,
        _build_heavy_hitters,
        supports_merge=True,
        description="SpaceSaving over near-duplicate groups",
    )
    register_summary(
        "batch-pipeline",
        _specs.PipelineSpec,
        BatchPipeline,
        _build_pipeline,
        supports_merge=False,
        description="Sharded batched ingestion over l0-infinite shards "
        "(serial/thread/process/remote executors)",
    )
    register_summary(
        "exact",
        _specs.ExactSpec,
        ExactDistinctSampler,
        _build_exact,
        supports_merge=True,
        description="Ground truth: Omega(n)-space exact distinct sampler",
    )
    register_summary(
        "naive-reservoir",
        _specs.NaiveReservoirSpec,
        NaiveReservoirSampler,
        _build_naive,
        supports_merge=True,
        description="Motivation baseline: uniform reservoir over raw points",
    )
    register_summary(
        "minrank",
        _specs.MinRankSpec,
        MinRankL0Sampler,
        _build_minrank,
        supports_merge=True,
        description="Folklore noiseless min-rank l0-sampler",
    )
    register_summary(
        "fm",
        _specs.FMSpec,
        FMSketch,
        _build_fm,
        supports_merge=True,
        description="Flajolet-Martin noiseless F0 sketch",
    )
    register_summary(
        "loglog",
        _specs.LogLogSpec,
        LogLogSketch,
        _build_loglog,
        supports_merge=True,
        description="Durand-Flajolet LogLog noiseless F0 sketch",
    )
    register_summary(
        "hyperloglog",
        _specs.HyperLogLogSpec,
        HyperLogLog,
        _build_hyperloglog,
        supports_merge=True,
        description="HyperLogLog noiseless F0 sketch",
    )
    register_summary(
        "bjkst",
        _specs.BJKSTSpec,
        BJKSTSketch,
        _build_bjkst,
        supports_merge=True,
        description="BJKST noiseless F0 sketch",
    )


_register_builtins()
