"""The paper's contribution: robust l0-sampling and robust F0 estimation.

Public classes
--------------
* :class:`~repro.core.infinite_window.RobustL0SamplerIW` - Algorithm 1.
* :class:`~repro.core.fixed_rate.FixedRateSlidingSampler` - Algorithm 2.
* :class:`~repro.core.sliding_window.RobustL0SamplerSW` - Algorithms 3-5.
* :class:`~repro.core.ksample.KDistinctSampler` - k samples with or
  without replacement (Section 2.3).
* :class:`~repro.core.f0_infinite.RobustF0EstimatorIW` and
  :class:`~repro.core.f0_sliding.RobustF0EstimatorSW` - Section 5.

All samplers share the conventions of :mod:`repro.core.base`: points in
R^d as float tuples, a random grid, one nested sampling hash, and explicit
word-level space accounting.  Every class here also implements the
:class:`repro.api.Summary` protocol (``process_many`` / ``query`` /
``merge`` / ``to_state`` / ``from_state``) and is registered in
:mod:`repro.api.registry`, so spec-driven construction, universal
checkpointing (:mod:`repro.persist`) and protocol merging apply
uniformly.
"""

from repro.core.base import CandidateRecord, SamplerConfig, default_grid_side
from repro.core.f0_infinite import RobustF0EstimatorIW
from repro.core.f0_sliding import RobustF0EstimatorSW
from repro.core.fixed_rate import FixedRateSlidingSampler
from repro.core.infinite_window import RobustL0SamplerIW
from repro.core.ksample import KDistinctSampler
from repro.core.sliding_window import RobustL0SamplerSW

__all__ = [
    "SamplerConfig",
    "CandidateRecord",
    "default_grid_side",
    "RobustL0SamplerIW",
    "FixedRateSlidingSampler",
    "RobustL0SamplerSW",
    "KDistinctSampler",
    "RobustF0EstimatorIW",
    "RobustF0EstimatorSW",
]
