"""Per-chunk vectorised geometry: the precompute object of the batch paths.

A :class:`ChunkGeometry` is built **once per chunk** and carries, for
every point of the chunk, the geometry the samplers' ``process_many``
overrides would otherwise recompute point by point in Python:

* the grid cell (as the usual int tuple, ready for dict keys),
* the cell's base-hash value (memo-aware: cells already in the config's
  shared ``cell_hash_memo`` are served from it, the rest are hashed in
  one vectorised pass and memoised),
* lazily, the fractional in-cell positions, the conservative
  high-dimensional ignore probe (:meth:`ChunkGeometry.high_dim_ignorable`)
  and the per-point ``adj(p)`` hash tuples
  (:meth:`ChunkGeometry.adj_hashes`, which switches itself from the
  scalar DFS to the vectorised enumeration when a chunk turns out to be
  founding-heavy).

Everything a ``ChunkGeometry`` serves is a pure function of the chunk's
coordinates and the shared :class:`~repro.core.base.SamplerConfig` - it
carries **no sampler state** - so it can be computed ahead of ingestion,
shared by the pipeline with whichever shard the chunk is dealt to
(:func:`repro.engine.batching.chunk_geometry_for`), or rebuilt
deterministically inside a worker process.  The values are bit-identical
to the scalar computations they replace (enforced by
``tests/test_geometry_kernels.py``), so batch ingestion through a
``ChunkGeometry`` remains ``state_fingerprint``-equivalent to per-point
ingestion.

This is the leaf home of the engine-facing
:func:`repro.engine.batching.compute_chunk_geometry` (the core package
cannot import the engine without a cycle, exactly like
:func:`~repro.core.base.chunked`).
"""

from __future__ import annotations

from itertools import chain
from typing import Callable, Iterable, Sequence

from repro.core.base import _CELL_MEMO_LIMIT, SamplerConfig
from repro.geometry import kernels
from repro.geometry.grid import Cell
from repro.streams.point import StreamPoint

if kernels.HAVE_NUMPY:
    import numpy as np
else:  # pragma: no cover - exercised only without numpy
    np = None  # type: ignore[assignment]

#: Chunks smaller than this stay on the scalar per-point path: the fixed
#: cost of array construction would exceed what vectorisation saves.
MIN_VECTOR_CHUNK = 4

#: Adaptive adjacency vectorisation: after this many scalar adjacency
#: requests within one counting window, and provided the request
#: *density* is high enough (at least one request per
#: ``_ADJ_EAGER_DENSITY`` points - otherwise a cold-start burst of
#: foundings at the head of a duplicate-heavy chunk would trigger a
#: mostly-wasted sweep), the next ``_ADJ_BLOCK`` points' adjacency is
#: enumerated in one vectorised pass.  Blocks bound the waste when a
#: founding-heavy prefix turns duplicate-heavy mid-chunk.
_ADJ_EAGER_AFTER = 8
_ADJ_EAGER_DENSITY = 8
_ADJ_BLOCK = 192
_ADJ_MIN_BLOCK = 16

_ENABLED = True


def vectorized_geometry_enabled() -> bool:
    """Whether chunk builders currently produce vectorised geometry."""
    return _ENABLED and kernels.HAVE_NUMPY


def set_vectorized_geometry(enabled: bool) -> bool:
    """Toggle the vectorised chunk-geometry path; returns the old setting.

    The scalar and vectorised paths are state-equivalent, so this is a
    performance switch only - the benchmark uses it to measure the
    scalar baseline, and it doubles as the escape hatch on numpy-less
    interpreters (where the toggle is effectively always off).
    """
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


def _hash_cells_list(
    config: SamplerConfig, coords: "np.ndarray"
) -> list[int]:
    """Base-hash values of int64 cell rows, memo-aware, as a plain list.

    The cell ids are computed in one vectorised pass
    (:func:`repro.geometry.kernels.cell_ids_chunk`); known ids are
    served from the config's shared ``cell_id_hash_memo`` (an int-keyed
    dict probe - near-duplicate chunks revisit the same few cells
    constantly), the missing ones are hashed in one array call and
    memoised.  A cell's base hash is by definition a function of its
    cell id, so the values are identical to ``config.cell_hash(cell)``
    per row - the memo is a pure cache.
    """
    if coords.shape[0] == 0:
        return []
    ids = kernels.cell_ids_chunk(coords)
    id_list = ids.tolist()
    memo = config.cell_id_hash_memo
    memo_get = memo.get
    hashes = [memo_get(cell_id) for cell_id in id_list]
    if None in hashes:
        missing = [
            index for index, value in enumerate(hashes) if value is None
        ]
        hashed = config.hash.value_chunk(
            ids[np.array(missing, dtype=np.intp)]
        ).tolist()
        if len(memo) + len(missing) >= _CELL_MEMO_LIMIT:
            memo.clear()
        for position, index in enumerate(missing):
            value = hashed[position]
            hashes[index] = value
            memo[id_list[index]] = value
    return hashes


class ChunkGeometry:
    """Vectorised per-chunk geometry (see the module docstring).

    Instances are created by :func:`compute_chunk_geometry`;
    ``cell_hashes`` is a plain Python list aligned with the chunk's
    points (the hot loops index it directly), cell *tuples* are built
    lazily per point (:meth:`cell_at` - only candidate foundings and the
    dim<=2 ignore filter ever need them), and the arrays behind the
    other lazy products are kept private.  ``n`` may be *shorter* than
    the chunk when a point's coordinates cannot be carried in the int64
    vector path (non-finite, or beyond ``2^62`` cells): consumers use
    the scalar path from that point on, which reproduces the scalar
    error semantics exactly.

    ``source_vectors``/``pure_coords`` carry the chunk's *coercion*
    result when the builder performed one: ``source_vectors`` is the
    full chunk's coerced float tuples (covering the whole chunk even
    when ``n`` was truncated) and ``pure_coords`` is ``True`` only when
    every source element was a raw coordinate row (no
    :class:`~repro.streams.point.StreamPoint`, whose arrival metadata a
    reuse would lose).  :func:`materialize_chunk` uses the pair to skip
    re-coercing a chunk the geometry builder already coerced.
    """

    __slots__ = (
        "config",
        "n",
        "cell_hashes",
        "source_vectors",
        "pure_coords",
        "_vectors",
        "_shifted",
        "_cells_f",
        "_coords",
        "_coords_list",
        "_fracs",
        "_ignorable",
        "_ignorable_mask",
        "_low_ignorable",
        "_low_ignorable_mask",
        "_adj_table",
        "_adj_start",
        "_adj_requests",
        "_adj_window_start",
        "_adj_failed",
    )

    def __init__(
        self,
        config: SamplerConfig,
        vectors: Sequence[tuple[float, ...]],
        shifted: "np.ndarray",
        cells_f: "np.ndarray",
        coords: "np.ndarray",
        cell_hashes: list[int],
        *,
        source_vectors: list[tuple[float, ...]] | None = None,
        pure_coords: bool = False,
    ) -> None:
        self.config = config
        self.n = len(cell_hashes)
        self.cell_hashes = cell_hashes
        self.source_vectors = source_vectors
        self.pure_coords = pure_coords
        self._vectors = vectors
        self._shifted = shifted
        self._cells_f = cells_f
        self._coords = coords
        self._coords_list: list[list[int]] | None = None
        self._fracs = None
        self._ignorable: list[bool] | None = None
        self._ignorable_mask = -1
        self._low_ignorable: list[bool] | None = None
        self._low_ignorable_mask = -1
        self._adj_table: list[tuple[int, ...]] | None = None
        self._adj_start = 0
        self._adj_requests = 0
        self._adj_window_start = 0
        self._adj_failed = False

    # ------------------------------------------------------------------ #
    # lazy products
    # ------------------------------------------------------------------ #

    def valid_for(
        self, config: SamplerConfig, vectors: Sequence[tuple[float, ...]]
    ) -> bool:
        """Whether this precompute may serve the given materialised chunk.

        Guards the ``process_many(..., geometry=...)`` surface against a
        caller handing a geometry built for a *different* chunk (a stale
        variable, a retry loop reusing the previous precompute): the
        config must be the same object, the covered prefix must fit, and
        the covered endpoints must be the very vectors of the chunk.
        Rejection is cheap and safe - the consumer just recomputes.
        (NaN endpoints fail the equality check and force a recompute,
        which is the conservative direction.)
        """
        n = self.n
        if config is not self.config or n > len(vectors):
            return False
        own = self._vectors
        if vectors is own:
            # The pipeline handed the shard this geometry's own coerced
            # tuples (see ``BatchPipeline.submit``): trivially valid,
            # skip the endpoint comparisons.
            return True
        return n == 0 or (
            vectors[0] == own[0] and vectors[n - 1] == own[n - 1]
        )

    def cell_at(self, index: int) -> Cell:
        """Cell tuple of point ``index`` (lazy - foundings only)."""
        coords_list = self._coords_list
        if coords_list is None:
            coords_list = self._coords.tolist()
            self._coords_list = coords_list
        return tuple(coords_list[index])

    @property
    def fracs(self) -> "np.ndarray":
        """Per-point fractional in-cell positions (lazy, cached)."""
        fracs = self._fracs
        if fracs is None:
            fracs = kernels.fractional_positions_chunk(
                self._shifted, self._cells_f, self.config.grid.side
            )
            self._fracs = fracs
        return fracs

    def high_dim_ignorable(self, mask: int) -> list[bool] | None:
        """The conservative sampled-cell probe for this chunk at ``mask``.

        ``True`` entries certainly have no sampled cell in ``adj(p)``
        beyond their own cell, so a point whose own cell is unsampled
        can be dropped without enumerating ``adj(p)`` - the
        high-dimensional twin of the dim<=2 conservative-neighbourhood
        filter.  Returns ``None`` when the grid's cells are not strictly
        larger than alpha (the probe's premise; the caller then runs the
        exact path for every point).  Verdicts stay valid when the rate
        doubles mid-chunk (decisions nest - the sampled set only
        shrinks), so one probe per chunk suffices.
        """
        if self._ignorable_mask == mask:
            return self._ignorable
        config = self.config
        probe = kernels.high_dim_ignore_probe(
            self._coords,
            self.fracs,
            config.grid.side,
            config.alpha,
            mask,
            lambda rows: np.array(
                _hash_cells_list(config, rows), dtype=np.uint64
            ),
        )
        self._ignorable = probe.tolist() if probe is not None else None
        self._ignorable_mask = mask
        return self._ignorable

    def low_dim_ignorable(self, mask: int) -> list[bool] | None:
        """The exact "no sampled cell in ``adj(p)``" verdicts at ``mask``.

        The dim<=2 twin of :meth:`high_dim_ignorable`, but *exact*
        rather than conservative (see
        :func:`repro.geometry.kernels.low_dim_ignore_probe`): ``True``
        entries are certainly ignored by the founding path when their
        own cell is unsampled, ``False`` entries certainly have a
        sampled adjacency cell and can skip the scalar corner filter.
        Lazy - chunks whose points all match tracked groups never pay
        for the enumeration - and cached per mask; ``True`` verdicts
        stay valid across mid-chunk rate doublings (decisions nest).
        Returns ``None`` when the adjacency enumeration cannot serve
        this configuration (the caller keeps the scalar corner filter).
        """
        if self._low_ignorable_mask == mask:
            return self._low_ignorable
        config = self.config
        probe = kernels.low_dim_ignore_probe(
            self._coords,
            self.fracs,
            config.grid.side,
            config.alpha,
            mask,
            lambda rows: np.array(
                _hash_cells_list(config, rows), dtype=np.uint64
            ),
        )
        self._low_ignorable = probe.tolist() if probe is not None else None
        self._low_ignorable_mask = mask
        return self._low_ignorable

    # ------------------------------------------------------------------ #
    # adjacency
    # ------------------------------------------------------------------ #

    def adj_hashes(self, index: int) -> tuple[int, ...]:
        """``adj(p)`` base-hash tuple for point ``index``.

        Value-identical to ``config.adj_hashes(vector, cell=cell)``.
        Requests outside the current vectorised block run the scalar
        DFS while a per-window request counter accumulates; when a
        stretch of the chunk proves founding-heavy (enough requests, at
        sufficient density - a cold-start burst alone does not qualify
        twice), the next :data:`_ADJ_BLOCK` points' adjacency is
        enumerated in one vectorised pass and served from the block
        table.  The block bound keeps the waste small when a
        founding-heavy prefix turns duplicate-heavy mid-chunk; chunks
        that never found pay nothing.
        """
        table = self._adj_table
        if table is not None:
            offset = index - self._adj_start
            if 0 <= offset < len(table):
                return table[offset]
        self._adj_requests += 1
        if not self._adj_failed and self._adj_requests >= _ADJ_EAGER_AFTER:
            span = index + 1 - self._adj_window_start
            block = min(_ADJ_BLOCK, self.n - index)
            if (
                span <= self._adj_requests * _ADJ_EAGER_DENSITY
                and block >= _ADJ_MIN_BLOCK
                and self._precompute_adjacency(index, block)
            ):
                return self._adj_table[0]  # type: ignore[index]
        return self._scalar_adj(index)

    def _scalar_adj(self, index: int) -> tuple[int, ...]:
        return self.config.adj_hashes(
            self._vectors[index], cell=self.cell_at(index)
        )

    def _precompute_adjacency(self, start: int, block: int) -> bool:
        config = self.config
        stop = start + block
        result = kernels.adjacent_cells_chunk(
            self._coords[start:stop],
            self.fracs[start:stop],
            config.grid.side,
            config.alpha,
        )
        if result is None:
            self._adj_failed = True
            return False
        flat_cells, counts = result
        flat_hashes = _hash_cells_list(config, flat_cells)
        table: list[tuple[int, ...]] = []
        position = 0
        for count in counts.tolist():
            table.append(tuple(flat_hashes[position : position + count]))
            position += count
        self._adj_start = start
        self._adj_table = table
        # Fresh counting window past the block: the next block is only
        # computed if founding density stays high beyond it.
        self._adj_requests = 0
        self._adj_window_start = stop
        return True


def _geometry_from_array(
    config: SamplerConfig,
    vectors: Sequence[tuple[float, ...]],
    array: "np.ndarray",
    *,
    source_vectors: list[tuple[float, ...]] | None = None,
    pure_coords: bool = False,
) -> ChunkGeometry | None:
    """Shared builder core over a prebuilt ``(total, dim)`` float array."""
    grid = config.grid
    total = len(vectors)
    shifted = array - np.array(grid.offset, dtype=np.float64)
    cells_f = kernels.cell_coords_chunk(shifted, grid.side)
    with np.errstate(invalid="ignore"):
        good = np.all(
            np.isfinite(cells_f) & (np.abs(cells_f) < kernels.COORD_LIMIT),
            axis=1,
        )
    if bool(good.all()):
        n = total
    else:
        # Truncate at the first point the int64 path cannot carry; the
        # scalar tail reproduces the exact behaviour (including the
        # exact exception for non-finite coordinates).
        n = int(np.argmin(good))
        if n < MIN_VECTOR_CHUNK:
            return None
        shifted = shifted[:n]
        cells_f = cells_f[:n]
    coords = cells_f.astype(np.int64)
    cell_hashes = _hash_cells_list(config, coords)
    return ChunkGeometry(
        config,
        # Keep the caller's list object when it is fully covered so the
        # ``valid_for``/``_reusable_vectors`` identity fast paths can
        # hit (a full-length slice would copy).
        vectors if n == total else vectors[:n],
        shifted,
        cells_f,
        coords,
        cell_hashes,
        source_vectors=source_vectors,
        pure_coords=pure_coords,
    )


def compute_chunk_geometry(
    config: SamplerConfig,
    vectors: Sequence[tuple[float, ...]],
    *,
    source_vectors: list[tuple[float, ...]] | None = None,
    pure_coords: bool = False,
) -> ChunkGeometry | None:
    """Build the chunk's :class:`ChunkGeometry`, or ``None`` for scalar.

    ``vectors`` must all have the config's dimension (the materialising
    callers guarantee it).  Returns ``None`` when vectorisation is
    disabled, numpy is unavailable, or the chunk is too small to
    amortise the array setup - the batch loops then run their scalar
    branch, which is state-equivalent by construction.

    ``source_vectors``/``pure_coords`` are recorded on the geometry for
    :func:`materialize_chunk`'s coercion-reuse fast path (see
    :class:`ChunkGeometry`); builders that coerced the whole chunk
    themselves pass them so downstream materialisation is free.
    """
    if not _ENABLED or not kernels.HAVE_NUMPY:
        return None
    total = len(vectors)
    if total < MIN_VECTOR_CHUNK:
        return None
    dim = config.dim
    # fromiter over a flattened view beats np.array on a list of tuples
    # by ~2x; the callers guarantee rectangular input of width dim.
    array = np.fromiter(
        chain.from_iterable(vectors), np.float64, count=total * dim
    ).reshape(total, dim)
    return _geometry_from_array(
        config,
        vectors,
        array,
        source_vectors=source_vectors,
        pure_coords=pure_coords,
    )


def geometry_from_array(
    config: SamplerConfig, array: "np.ndarray"
) -> tuple[list[tuple[float, ...]], ChunkGeometry | None]:
    """Rebuild a chunk's ``(vectors, geometry)`` from its float array.

    The zero-copy transport's worker-side entry point: the submitter
    shipped the chunk as a contiguous ``(n, dim)`` float64 array, so the
    coerced tuples are recovered with one ``tolist`` pass (value-
    identical to per-point ``tuple(float(x) for x in row)`` - float64
    round-trips exactly) and the geometry is built without re-flattening
    through ``fromiter``.  ``geometry`` is ``None`` on the same terms as
    :func:`compute_chunk_geometry` (toggle off, chunk below
    :data:`MIN_VECTOR_CHUNK`, unvectorisable prefix); ``vectors`` always
    covers the full chunk.  The returned geometry carries the vectors as
    its coercion source (``pure_coords``), so the consuming sampler's
    materialisation reuses them instead of coercing again.
    """
    if array.ndim != 2 or array.shape[1] != config.dim:
        raise ValueError(
            f"expected a (n, {config.dim}) array, got shape {array.shape!r}"
        )
    # Tuple recovery off the hot path: per-column tolist then one zip
    # builds every row tuple at C speed - faster than the nested
    # tolist + per-row tuple() and than regrouping a flat tolist
    # through iterator tricks.  Values are identical either way -
    # tolist yields Python floats.
    vectors = list(zip(*array.T.tolist()))
    if (
        not _ENABLED
        or not kernels.HAVE_NUMPY
        or len(vectors) < MIN_VECTOR_CHUNK
    ):
        return vectors, None
    geometry = _geometry_from_array(
        config,
        vectors,
        np.asarray(array, dtype=np.float64),
        source_vectors=vectors,
        pure_coords=True,
    )
    return vectors, geometry


def feed_copies_shared(
    copies: Sequence, points: Iterable[StreamPoint | Sequence[float]]
) -> int:
    """Shared-geometry batch path of the multi-copy wrappers (k-sample, F0).

    Like :func:`repro.core.base.materialize_and_feed` - raw coordinates
    are materialised once into :class:`StreamPoint` objects so all
    copies agree on arrival indices, then every copy ingests the shared
    chunk - but the chunk's float coercion and its flattened float64
    array are computed **once** and each copy's
    :class:`ChunkGeometry` is derived from that one array.  The grid
    derivation itself (offset shift, cell coordinates, cell hashing) is
    necessarily per copy - each copy owns an independently seeded
    :class:`~repro.core.base.SamplerConfig`, so their grids and hashes
    differ by construction - but the per-copy ``np.fromiter`` flatten
    and the per-element ``float()`` coercion the copies would otherwise
    repeat are gone.

    The shared array is only built when the coerced rows are provably
    rectangular at the wrappers' dimension (a cheap ``len`` sweep): a
    ragged chunk falls back to per-copy geometry computation, which
    reproduces the per-copy dimension-error semantics exactly.  Error
    semantics match :func:`materialize_and_feed`: a coercion failure or
    a copy-side rejection leaves every copy with exactly the valid
    prefix before the error propagates.

    Returns the number of points ingested.
    """
    index = copies[0].points_seen
    chunk: list[StreamPoint] = []
    vectors: list[tuple[float, ...]] = []
    append_point = chunk.append
    append_vector = vectors.append
    error: BaseException | None = None
    try:
        for point in points:
            if isinstance(point, StreamPoint):
                vector = point.vector
            else:
                vector = tuple(float(x) for x in point)
                point = StreamPoint(vector, index)
            append_point(point)
            append_vector(vector)
            index += 1
    except BaseException as exc:
        # Per-point ingestion would have fed the valid prefix to every
        # copy before hitting the bad coordinate; match that exactly.
        error = exc
    total = len(chunk)
    geometries: list[ChunkGeometry | None] = [None] * len(copies)
    if (
        _ENABLED
        and kernels.HAVE_NUMPY
        and total >= MIN_VECTOR_CHUNK
    ):
        dim = copies[0].dim
        if all(len(vector) == dim for vector in vectors):
            array = np.fromiter(
                chain.from_iterable(vectors), np.float64, count=total * dim
            ).reshape(total, dim)
            geometries = [
                _geometry_from_array(copy._config, vectors, array)
                for copy in copies
            ]
    first = copies[0]
    before = first.points_seen
    try:
        first.process_many(chunk, geometry=geometries[0])
    except BaseException:
        # First copy rejected a point mid-chunk: the rejection is
        # deterministic per point, so the other copies accept exactly
        # the prefix it ingested (their full-chunk geometries cannot
        # serve the shorter prefix and are dropped - valid_for would
        # reject them anyway).
        prefix = first.points_seen - before
        for copy in copies[1:]:
            copy.process_many(chunk[:prefix])
        raise
    for copy, geometry in zip(copies[1:], geometries[1:]):
        copy.process_many(chunk, geometry=geometry)
    if error is not None:
        raise error
    return total


def _reusable_vectors(
    points, dim: int, geometry: ChunkGeometry | None
) -> list[tuple[float, ...]] | None:
    """The geometry's cached coercion of ``points``, if provably theirs.

    Reuse requires the geometry to have coerced pure coordinate rows
    (``pure_coords`` - StreamPoint inputs carry arrival metadata a
    rebuild would lose) covering a chunk of the same length and
    dimension whose endpoints coerce to the cached endpoints - the same
    endpoint-trust model as :meth:`ChunkGeometry.valid_for`.  The
    identity case (``points is source_vectors``) is the worker-process
    path, where :func:`geometry_from_array` built both together.
    """
    if geometry is None or not geometry.pure_coords:
        return None
    source = geometry.source_vectors
    if source is None:
        return None
    if points is source:
        return source
    if (
        not isinstance(points, (list, tuple))
        or len(points) != len(source)
        or not source
        or len(source[0]) != dim
        or isinstance(points[0], StreamPoint)
        or isinstance(points[-1], StreamPoint)
    ):
        return None
    try:
        if (
            tuple(float(x) for x in points[0]) != source[0]
            or tuple(float(x) for x in points[-1]) != source[-1]
        ):
            return None
    except Exception:
        return None
    return source


def materialize_chunk(
    points: Iterable[StreamPoint | Sequence[float]],
    dim: int,
    next_index: int,
    dim_error: Callable[[int], Exception],
    *,
    coerce: bool = True,
    geometry: ChunkGeometry | None = None,
) -> tuple[
    list[StreamPoint],
    list[tuple[float, ...]],
    BaseException | None,
    StreamPoint | None,
]:
    """Materialise a chunk into StreamPoints, stopping at the first bad one.

    Returns ``(points, vectors, error, offender)``.  The valid prefix is
    complete and dimension-checked; ``error`` is the exception the
    per-point path would have raised at the first invalid point (a
    coercion failure, or ``dim_error(actual_dim)`` for a dimension
    mismatch - ``offender`` then carries the mismatched StreamPoint for
    callers whose per-point path still evicts with it before raising).
    The batch paths ingest the prefix first and re-raise ``error``
    afterwards, which leaves exactly the state per-point ingestion
    leaves: every point before the failure processed, nothing after it.

    ``geometry`` may pass the chunk's precomputed
    :class:`ChunkGeometry`: when it cached the chunk's own coercion
    (see :func:`_reusable_vectors`) the per-point float coercion is
    skipped entirely and the StreamPoints are built straight from the
    cached tuples - a geometry built from coordinate rows guarantees
    every row coerced and dimension-checked cleanly, so the fast path
    cannot miss an error the slow path would raise.

    ``coerce=False`` (the fixed-rate contract) requires StreamPoint
    inputs; raw sequences then fail with the same ``AttributeError`` the
    per-point path produces.
    """
    if coerce:
        reused = _reusable_vectors(points, dim, geometry)
        if reused is not None:
            return (
                [
                    StreamPoint(vector, index)
                    for index, vector in enumerate(reused, next_index)
                ],
                reused,
                None,
                None,
            )
    materialized: list[StreamPoint] = []
    vectors: list[tuple[float, ...]] = []
    error: BaseException | None = None
    offender: StreamPoint | None = None
    index = next_index
    append_point = materialized.append
    append_vector = vectors.append
    try:
        for point in points:
            if isinstance(point, StreamPoint):
                vector = point.vector
                if len(vector) != dim:
                    error = dim_error(len(vector))
                    offender = point
                    break
            elif coerce:
                vector = tuple(float(x) for x in point)
                if len(vector) != dim:
                    error = dim_error(len(vector))
                    break
                point = StreamPoint(vector, index)
            else:
                vector = point.vector  # AttributeError, as per-point does
            append_point(point)
            append_vector(vector)
            index += 1
    except BaseException as exc:  # re-raised by the caller after the prefix
        error = exc
    return materialized, vectors, error, offender
