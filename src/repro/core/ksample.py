"""Sampling k distinct groups with or without replacement (Section 2.3).

* **With replacement**: k independent copies of the single-sample
  algorithm, one sample from each.
* **Without replacement**: a single instance whose accept-set threshold is
  raised to ``kappa_0 * k * log m``; with probability ``1 - 1/m`` the
  accept set then always holds at least ``k`` groups, and a uniform
  k-subset of it is a without-replacement sample of the groups.

Both flavours work for the infinite window and for sliding windows.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from repro.core.base import DEFAULT_KAPPA0, StreamSampler
from repro.core.chunk_geometry import feed_copies_shared
from repro.core.infinite_window import RobustL0SamplerIW
from repro.core.sliding_window import RobustL0SamplerSW
from repro.errors import EmptySampleError, ParameterError
from repro.streams.point import StreamPoint
from repro.streams.windows import WindowSpec


class KDistinctSampler(StreamSampler):
    """Draw k robust distinct samples from a noisy stream.

    Parameters
    ----------
    alpha, dim:
        As in the single-sample algorithms.
    k:
        Number of samples per query (>= 1).
    replacement:
        True -> k independent single-samplers (samples may repeat groups);
        False -> one sampler with a k-times larger accept threshold and a
        uniform k-subset drawn at query time (all k samples come from
        distinct groups).
    window:
        ``None`` for the infinite window, otherwise a sliding-window spec
        (the Section 2.3 remark applies the same threshold change to
        Algorithm 3).
    seed, kappa0, expected_stream_length:
        Forwarded to the underlying sampler(s).

    Examples
    --------
    >>> ks = KDistinctSampler(0.5, 1, k=2, replacement=False, seed=5)
    >>> for v in [(0.0,), (10.0,), (20.0,), (0.1,)]:
    ...     ks.insert(v)
    >>> groups = {p.vector[0] // 10 for p in ks.sample(rng=random.Random(0))}
    >>> len(groups)
    2
    """

    #: Registry key (see :mod:`repro.api.registry`).
    summary_key = "ksample"

    def __init__(
        self,
        alpha: float,
        dim: int,
        k: int,
        *,
        replacement: bool = False,
        window: WindowSpec | None = None,
        window_capacity: int | None = None,
        seed: int | None = None,
        kappa0: float = DEFAULT_KAPPA0,
        expected_stream_length: int | None = None,
    ) -> None:
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        self._k = k
        self._replacement = replacement
        self._window = window
        base_seed = seed if seed is not None else random.Random().randrange(2**62)

        def build(instance_seed: int, kappa: float):
            if window is None:
                return RobustL0SamplerIW(
                    alpha,
                    dim,
                    kappa0=kappa,
                    expected_stream_length=expected_stream_length,
                    seed=instance_seed,
                )
            return RobustL0SamplerSW(
                alpha,
                dim,
                window,
                window_capacity=window_capacity,
                kappa0=kappa,
                expected_stream_length=expected_stream_length,
                seed=instance_seed,
            )

        if replacement:
            self._samplers = [build(base_seed + i, kappa0) for i in range(k)]
        else:
            # The Section 2.3 threshold boost: kappa_0 * k * log m.
            self._samplers = [build(base_seed, kappa0 * k)]

    @property
    def k(self) -> int:
        """Number of samples returned per query."""
        return self._k

    @property
    def replacement(self) -> bool:
        """Whether sampling is with replacement."""
        return self._replacement

    def insert(self, point: StreamPoint | Sequence[float]) -> None:
        """Feed one point to every underlying sampler."""
        if isinstance(point, StreamPoint):
            for sampler in self._samplers:
                sampler.insert(point)
        else:
            # Materialise a shared StreamPoint so all copies agree on the
            # arrival index.
            index = self._samplers[0].points_seen
            shared = StreamPoint(tuple(float(x) for x in point), index)
            for sampler in self._samplers:
                sampler.insert(shared)

    def process_many(
        self, points: Iterable[StreamPoint | Sequence[float]]
    ) -> int:
        """Batched :meth:`insert`: one shared materialisation, k batch runs.

        See :func:`~repro.core.chunk_geometry.feed_copies_shared`: one
        shared materialisation and one shared float-array flatten, then
        every underlying sampler ingests the chunk through its own
        specialised path with a chunk geometry derived from the shared
        array (grid/hash products stay per sampler - they have
        independent grids/hashes), with per-point error semantics
        preserved (every copy holds the valid prefix on failure).
        """
        return feed_copies_shared(self._samplers, points)

    def sample(self, rng: random.Random | None = None) -> list[StreamPoint]:
        """Return the k samples.

        Raises
        ------
        EmptySampleError
            When fewer than the required samples are available (empty
            stream, or - without replacement - the negligible event that
            the enlarged accept set undershoots ``k``).
        """
        rng = rng if rng is not None else random.Random()
        if self._replacement:
            return [sampler.sample(rng) for sampler in self._samplers]

        sampler = self._samplers[0]
        if isinstance(sampler, RobustL0SamplerIW):
            pool = [r.representative for r in sampler._store.accepted_records()]
        else:
            pool = self._sliding_pool(sampler, rng)
        if len(pool) < self._k:
            raise EmptySampleError(
                f"only {len(pool)} groups available, need {self._k}"
            )
        return rng.sample(pool, self._k)

    @staticmethod
    def _sliding_pool(
        sampler: RobustL0SamplerSW, rng: random.Random
    ) -> list[StreamPoint]:
        """Rate-unified pool of accepted last-points across levels."""
        if sampler._latest is None:
            return []
        latest = sampler._latest
        active = []
        for index in range(sampler.num_levels):
            instance = sampler.level(index)
            instance.evict(latest)
            records = instance.accepted_records()
            if records:
                active.append((index, records))
        if not active:
            return []
        coarsest = sampler.level(active[-1][0]).rate_denominator
        pool = []
        for index, records in active:
            keep = sampler.level(index).rate_denominator / coarsest
            for record in records:
                if keep >= 1.0 or rng.random() < keep:
                    pool.append(record.last)
        return pool

    def space_words(self) -> int:
        """Total footprint across the underlying samplers."""
        return sum(sampler.space_words() for sampler in self._samplers)

    # ------------------------------------------------------------------ #
    # Summary protocol (see repro.api.protocol)
    # ------------------------------------------------------------------ #

    def query(self, rng: random.Random | None = None) -> list[StreamPoint]:
        """Protocol query: the k samples (see :meth:`sample`)."""
        return self.sample(rng)

    def merge(self, *others: "KDistinctSampler") -> "KDistinctSampler":
        """Merge by merging the underlying samplers pairwise.

        Requires identical ``k``/``replacement`` and summaries built from
        one spec (same seed), so that sampler ``i`` of every input shares
        one grid/hash configuration.  Windowed k-samplers cannot merge
        (the underlying sliding hierarchy cannot; see
        :meth:`repro.core.sliding_window.RobustL0SamplerSW.merge`).
        """
        from repro.api.protocol import check_merge_peers

        check_merge_peers(self, others)
        for other in others:
            if other._k != self._k or other._replacement != self._replacement:
                raise ParameterError(
                    "cannot merge k-samplers with different k/replacement"
                )
        merged = KDistinctSampler.__new__(KDistinctSampler)
        merged._k = self._k
        merged._replacement = self._replacement
        merged._window = self._window
        merged._samplers = [
            sampler.merge(*(other._samplers[i] for other in others))
            for i, sampler in enumerate(self._samplers)
        ]
        return merged

    def to_state(self) -> dict:
        """Serialise to a JSON-compatible dict (protocol checkpoint)."""
        from repro.core import serialize

        return {
            "k": self._k,
            "replacement": self._replacement,
            "window": serialize.window_to_state(self._window),
            "samplers": [s.to_state() for s in self._samplers],
        }

    @classmethod
    def from_state(cls, state: dict) -> "KDistinctSampler":
        """Restore a k-sampler from :meth:`to_state` output."""
        from repro.core import serialize

        sampler = cls.__new__(cls)
        sampler._k = state["k"]
        sampler._replacement = state["replacement"]
        sampler._window = serialize.window_from_state(state["window"])
        underlying = RobustL0SamplerIW if sampler._window is None else (
            RobustL0SamplerSW
        )
        sampler._samplers = [
            underlying.from_state(sub_state)
            for sub_state in state["samplers"]
        ]
        return sampler
