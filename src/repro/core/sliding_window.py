"""Algorithms 3-5: space-efficient robust l0-sampling over sliding windows.

The hierarchy keeps ``L + 1`` instances of Algorithm 2 with sample rates
``1, 1/2, ..., 1/2^L`` over a dynamic partition of the window into
subwindows (Definition 2.9): level ``l`` covers an older slice of the
window at a coarser rate.  New groups enter at level 0 (rate 1 - every
cell is sampled, so "ALG_0 includes every point", cf. Lemma 2.10); when a
level's accept set outgrows ``kappa_0 * log m`` its older prefix is
*promoted*: `Split` re-derives the prefix's accept/reject status at the
doubled rate and `Merge` folds it into the level above, possibly
cascading (Lemma 2.8 bounds the cascade past the top level by 1/m^2).

A query resamples each level's accepted last-points down to the coarsest
active rate ``1/R_c`` and picks uniformly (Theorem 2.7: the result is a
robust l0-sample of the window using O(log w log m) words).  Uniformity
rests on two invariants: every live group is tracked at exactly one
level, and a group tracked at level ``l`` is accepted iff its
representative's cell is sampled at rate ``1/R_l`` - so each group's
inclusion probability is ``(1/R_l) * (R_l / R_c) = 1/R_c`` regardless of
which level it occupies.

Deviations from the paper's pseudocode (typos and an inconsistency
resolved; see DESIGN.md section 3 for the full discussion):

* the paper's insertion loop stops at the first level where the point is
  tracked *at all*, which lets a brand-new group be trapped as "rejected"
  at a high level; such a group is invisible to every accept set, which
  empirically starves the sampler and contradicts Fact 4 / Lemma 2.10.
  Here the top-down descent is used only to locate the group's existing
  record; genuinely new groups are inserted at level 0, and a rejected
  record that receives fresh activity is reassigned to level 0 (its
  subwindow is now the newest one; its representative is preserved);
* ``Split`` re-derives accept/reject status of the promoted points under
  the doubled rate exactly as Algorithm 1's resampling step does (the
  literal pseudocode would always promote an empty reject set);
* the query iterates levels ``0..c`` (not ``1..c``) and only over accepted
  groups' last-points;
* ``Merge`` deduplicates representatives of the same group.
"""

from __future__ import annotations

import math
import random
from typing import Iterable, Sequence

import heapq

from repro.core.base import (
    DEFAULT_KAPPA0,
    CandidateRecord,
    SamplerConfig,
    StreamSampler,
    _CELL_MEMO_LIMIT,
    _ThresholdPolicy,
    coerce_point,
)
from repro.core.fixed_rate import FixedRateSlidingSampler
from repro.errors import EmptySampleError, LevelOverflowError, ParameterError
from repro.streams.point import StreamPoint
from repro.streams.windows import SequenceWindow, WindowSpec


class RobustL0SamplerSW(StreamSampler):
    """Robust distinct sampler for sliding windows (Algorithm 3).

    Works for both sequence-based and time-based windows; only the
    expiration rule differs (encapsulated in ``window``).

    Parameters
    ----------
    alpha:
        Near-duplicate distance threshold.
    dim:
        Point dimensionality.
    window:
        A :class:`~repro.streams.windows.SequenceWindow` or
        :class:`~repro.streams.windows.TimeWindow`.
    window_capacity:
        Upper bound on the number of points a window can contain; sets the
        number of levels ``L = ceil(log2(capacity))``.  Defaults to the
        window size for sequence-based windows; required for time-based
        windows (where the point count is not implied by the duration).
    kappa0, expected_stream_length, seed, grid_side, kwise:
        As in :class:`~repro.core.infinite_window.RobustL0SamplerIW`.

    Examples
    --------
    >>> sw = RobustL0SamplerSW(0.5, 1, SequenceWindow(4), seed=3)
    >>> for i in range(12):
    ...     sw.insert((float(i * 10),))
    >>> sw.sample(rng=random.Random(0)).vector[0] >= 80.0
    True
    """

    #: Registry key (see :mod:`repro.api.registry`).
    summary_key = "l0-sliding"

    def __init__(
        self,
        alpha: float,
        dim: int,
        window: WindowSpec,
        *,
        window_capacity: int | None = None,
        kappa0: float = DEFAULT_KAPPA0,
        expected_stream_length: int | None = None,
        seed: int | None = None,
        grid_side: float | None = None,
        kwise: int | None = None,
        config: SamplerConfig | None = None,
    ) -> None:
        if window_capacity is None:
            if isinstance(window, SequenceWindow):
                window_capacity = int(window.size)
            else:
                raise ParameterError(
                    "window_capacity is required for time-based windows "
                    "(the duration does not bound the point count)"
                )
        if window_capacity < 1:
            raise ParameterError(
                f"window_capacity must be >= 1, got {window_capacity}"
            )
        self._config = config if config is not None else SamplerConfig.create(
            alpha, dim, seed=seed, grid_side=grid_side, kwise=kwise
        )
        self._window = window
        self._policy = _ThresholdPolicy(kappa0, expected_stream_length)
        self._max_level = max(1, math.ceil(math.log2(max(window_capacity, 2))))
        self._levels = [
            FixedRateSlidingSampler(self._config, 2**level, window)
            for level in range(self._max_level + 1)
        ]
        self._latest: StreamPoint | None = None
        self._count = 0
        self._peak_words = 0

    # ------------------------------------------------------------------ #
    # properties
    # ------------------------------------------------------------------ #

    @property
    def alpha(self) -> float:
        """The near-duplicate distance threshold."""
        return self._config.alpha

    @property
    def dim(self) -> int:
        """Point dimensionality."""
        return self._config.dim

    @property
    def window(self) -> WindowSpec:
        """The window specification."""
        return self._window

    @property
    def num_levels(self) -> int:
        """Number of hierarchy levels (``L + 1``)."""
        return len(self._levels)

    @property
    def points_seen(self) -> int:
        """Number of stream points inserted."""
        return self._count

    @property
    def peak_space_words(self) -> int:
        """Largest footprint observed across the run."""
        return self._peak_words

    def level(self, index: int) -> FixedRateSlidingSampler:
        """Access one Algorithm 2 instance (mostly for tests/inspection)."""
        return self._levels[index]

    # ------------------------------------------------------------------ #
    # streaming
    # ------------------------------------------------------------------ #

    def insert(self, point: StreamPoint | Sequence[float]) -> None:
        """Process one arriving stream point (Lines 4-18 of Algorithm 3)."""
        p = coerce_point(point, self._count)
        if p.dim != self._config.dim:
            raise ParameterError(
                f"point has dimension {p.dim}, sampler expects {self._config.dim}"
            )
        if self._latest is not None and (
            self._window.expiry_key(p) < self._window.expiry_key(self._latest)
        ):
            raise ParameterError(
                "stream points must arrive in non-decreasing window order"
            )
        self._count += 1
        self._policy.observe()
        self._latest = p

        ctx = self._config.point_context(p.vector)
        base = self._levels[0]
        for level in range(self._max_level, -1, -1):
            instance = self._levels[level]
            instance.evict(p)
            record = instance.find_group(p.vector, ctx.cell_hash)
            if record is None:
                continue
            record.last = p
            record.count += 1
            if record.accepted or level == 0:
                instance.adopt_last_update(record)
            else:
                # A rejected group with fresh activity belongs to the
                # newest subwindow: move it (representative preserved) to
                # level 0, whose rate 1 accepts everything.
                instance.remove_record(record)
                record.accepted = True
                base.adopt_record(record)
                if base.accepted_count > self._policy.threshold():
                    self._cascade(0)
            break
        else:
            # A genuinely new group enters at level 0 (Lemma 2.10: ALG_0
            # tracks every representative since R_0 = 1).
            tracked, ctx = base.insert(p, ctx)
            assert tracked, "level 0 samples every cell (R=1)"
            if base.accepted_count > self._policy.threshold():
                self._cascade(0)

        # Peak-space tracking is sampled (every 16th arrival) - summing the
        # footprint of every level on every insert would dominate runtime.
        if self._count & 0xF == 0:
            words = self.space_words()
            if words > self._peak_words:
                self._peak_words = words

    def _level_hot_state(self) -> list[tuple]:
        """Per-level bindings for the batched walk.

        Must be re-derived after any cascade: ``Split`` rebuilds a level
        via :meth:`~repro.core.fixed_rate.FixedRateSlidingSampler.clear`,
        which swaps the level's :class:`~repro.core.base.CandidateStore`
        for a fresh one.
        """
        return [
            (
                instance,
                instance._store,
                instance._store._records.get,
                instance._store._buckets.get,
                instance._heap,
                instance._reservoirs,
                instance._tiebreak,
            )
            for instance in self._levels
        ]

    def process_many(
        self, points: Iterable[StreamPoint | Sequence[float]]
    ) -> int:
        """Batched :meth:`insert` over the whole hierarchy.

        The per-arrival geometry (cell, cell hash through the config's
        shared memo) is computed once per point and reused by every level
        of the top-down walk, and each level's eviction + proximity probe
        runs inline - replicating :meth:`insert` operation-for-operation,
        so the resulting state (including each level's lazy heap) is
        identical to per-point ingestion.
        """
        config = self._config
        dim = config.dim
        grid = config.grid
        side = grid.side
        offset = grid.offset
        memo = config.cell_hash_memo
        memo_get = memo.get
        cell_id = grid.cell_id
        hash_value = config.hash.value
        window = self._window
        expiry_key = window.expiry_key
        in_window = window.in_window
        eviction_cutoff = window.eviction_cutoff
        heappush = heapq.heappush
        heappop = heapq.heappop
        policy = self._policy
        base = self._levels[0]
        max_level = self._max_level
        alpha_sq = config.alpha * config.alpha
        count = self._count
        latest = self._latest
        pending = 0  # arrivals not yet flushed into the threshold policy
        state = self._level_hot_state()
        processed = 0
        if dim == 1:
            off0 = offset[0]
            off1 = 0.0
        elif dim == 2:
            off0, off1 = offset
        else:
            off0 = off1 = 0.0
        try:
            for point in points:
                if isinstance(point, StreamPoint):
                    p = point
                    vector = p.vector
                else:
                    vector = tuple(float(x) for x in point)
                    p = StreamPoint(vector, count)
                if len(vector) != dim:
                    raise ParameterError(
                        f"point has dimension {len(vector)}, "
                        f"sampler expects {dim}"
                    )
                if latest is not None and expiry_key(p) < expiry_key(latest):
                    raise ParameterError(
                        "stream points must arrive in non-decreasing "
                        "window order"
                    )
                count += 1
                pending += 1
                processed += 1
                latest = p

                if dim == 2:
                    cell = (
                        int((vector[0] - off0) // side),
                        int((vector[1] - off1) // side),
                    )
                elif dim == 1:
                    cell = (int((vector[0] - off0) // side),)
                else:
                    cell = tuple(
                        int((x - o) // side) for x, o in zip(vector, offset)
                    )
                cell_hash = memo_get(cell)
                if cell_hash is None:
                    cell_hash = hash_value(cell_id(cell))
                    if len(memo) >= _CELL_MEMO_LIMIT:
                        memo.clear()
                    memo[cell] = cell_hash

                cutoff = eviction_cutoff(p)
                for level in range(max_level, -1, -1):
                    (
                        instance,
                        store,
                        records_get,
                        buckets_get,
                        heap,
                        reservoirs,
                        tiebreak,
                    ) = state[level]

                    # Inline evict(p), identical operations to the method.
                    while heap:
                        key, _, record, last_ref = heap[0]
                        if (
                            records_get(record.representative.index)
                            is not record
                            or record.last is not last_ref
                        ):
                            heappop(heap)
                            continue
                        if key > cutoff or in_window(record.last, p):
                            break
                        heappop(heap)
                        store.remove(record)
                        reservoirs.pop(record.representative.index, None)

                    # Inline find_group(p.vector, cell_hash).
                    bucket = buckets_get(cell_hash)
                    found = None
                    if bucket:
                        for record in bucket:
                            acc = 0.0
                            for a, b in zip(
                                record.representative.vector, vector
                            ):
                                diff = a - b
                                acc += diff * diff
                                if acc > alpha_sq:
                                    break
                            else:
                                found = record
                                break
                    if found is None:
                        continue
                    found.last = p
                    found.count += 1
                    if found.accepted or level == 0:
                        heappush(
                            heap, (expiry_key(p), next(tiebreak), found, p)
                        )
                    else:
                        # Rejected group with fresh activity: move it to
                        # level 0 (representative preserved).
                        instance.remove_record(found)
                        found.accepted = True
                        base.adopt_record(found)
                        policy.observe_many(pending)
                        pending = 0
                        if base.accepted_count > policy.threshold():
                            self._count = count
                            self._latest = latest
                            self._cascade(0)
                            state = self._level_hot_state()
                    break
                else:
                    # A genuinely new group enters at level 0, inlined:
                    # the walk already evicted level 0 and missed its
                    # buckets (insert() re-runs both, provably no-ops),
                    # and R_0 = 1 accepts every cell, so the record is
                    # created directly (Lemma 2.10).
                    self._count = count
                    self._latest = latest
                    policy.observe_many(pending)
                    pending = 0
                    record = CandidateRecord(
                        representative=p,
                        cell=cell,
                        cell_hash=cell_hash,
                        adj_hashes=config.adj_hashes(vector),
                        accepted=True,
                        last=p,
                    )
                    (
                        _,
                        store0,
                        _,
                        _,
                        heap0,
                        _,
                        tiebreak0,
                    ) = state[0]
                    store0.add(record)
                    heappush(
                        heap0, (expiry_key(p), next(tiebreak0), record, p)
                    )
                    if base._track_members:
                        base._reservoir_for(record).offer(
                            p, base._member_rng
                        )
                    if base.accepted_count > policy.threshold():
                        self._cascade(0)
                        state = self._level_hot_state()

                if count & 0xF == 0:
                    self._count = count
                    self._latest = latest
                    words = self.space_words()
                    if words > self._peak_words:
                        self._peak_words = words
        finally:
            self._count = count
            self._latest = latest
            policy.observe_many(pending)
        return processed

    # ------------------------------------------------------------------ #
    # Split / Merge (Algorithms 4 and 5)
    # ------------------------------------------------------------------ #

    def _cascade(self, start_level: int) -> None:
        """Restore the accept-set invariant by promoting prefixes upward."""
        level = start_level
        threshold = self._policy.threshold()
        while self._levels[level].accepted_count > threshold:
            if level + 1 > self._max_level:
                raise LevelOverflowError(
                    "sliding-window hierarchy overflow (Algorithm 3 Line 17); "
                    "this is the probability <= 1/m^2 failure event of "
                    "Lemma 2.8 - increase window_capacity or kappa0"
                )
            promoted = self._split(level)
            self._merge(promoted, level + 1)
            level += 1

    def _split(self, level: int) -> list[CandidateRecord]:
        """Algorithm 4: carve off the promotable prefix of ``level``.

        Returns the records of the prefix *re-derived at the doubled rate*
        (already filtered to accepted/rejected; dropped points discarded).
        The remaining suffix stays at ``level`` with its status unchanged.
        """
        instance = self._levels[level]
        doubled_mask = instance.rate_denominator * 2 - 1

        accepted = sorted(
            instance.accepted_records(), key=lambda r: r.representative.index
        )
        survivors = [
            r for r in accepted if r.cell_hash & doubled_mask == 0
        ]
        if survivors:
            boundary = survivors[-1].representative.index
        elif len(accepted) > 1:
            # Negligible-probability corner (see DESIGN.md): keep the last
            # accepted point at this level so Fact 3 survives.
            boundary = accepted[-2].representative.index
        else:
            boundary = accepted[-1].representative.index - 1

        all_records = list(instance.records())
        prefix = [
            r for r in all_records if r.representative.index <= boundary
        ]
        suffix = [r for r in all_records if r.representative.index > boundary]

        # Rebuild the level with the suffix (rate unchanged, Algorithm 4's
        # ALG_b) ...
        instance.clear()
        for record in suffix:
            instance.adopt_record(record)

        # ... and re-derive the prefix at the doubled rate (ALG_a).
        promoted: list[CandidateRecord] = []
        for record in prefix:
            if record.cell_hash & doubled_mask == 0:
                record.accepted = True
            elif any(
                value & doubled_mask == 0 for value in record.adj_hashes
            ):
                record.accepted = False
            else:
                continue
            promoted.append(record)
        return promoted

    def _merge(self, promoted: list[CandidateRecord], level: int) -> None:
        """Algorithm 5: fold promoted records into the level above.

        Deduplicates representatives of the same group: when the target
        level already tracks a group within ``alpha`` of a promoted
        representative, the existing record absorbs the promoted one's
        last-point and count.
        """
        target = self._levels[level]
        for record in promoted:
            existing = target.find_group(
                record.representative.vector, record.cell_hash
            )
            if existing is not None:
                if (
                    self._window.expiry_key(record.last)
                    > self._window.expiry_key(existing.last)
                ):
                    existing.last = record.last
                    target.adopt_last_update(existing)
                existing.count += record.count
            else:
                target.adopt_record(record)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def sample(self, rng: random.Random | None = None) -> StreamPoint:
        """Return a robust l0-sample of the current window (Lines 19-23).

        Each accepted group at level ``l`` is kept with probability
        ``R_l / R_c`` (``c`` the deepest non-empty level) so every group in
        the window survives with probability ``1/R_c``; the returned point
        is the group's last (most recent) point.
        """
        if self._latest is None:
            raise EmptySampleError("no points inserted yet")
        rng = rng if rng is not None else random.Random()
        latest = self._latest

        active: list[tuple[int, list[CandidateRecord]]] = []
        for index, instance in enumerate(self._levels):
            instance.evict(latest)
            records = instance.accepted_records()
            if records:
                active.append((index, records))
        if not active:
            raise EmptySampleError("the sliding window contains no points")

        deepest = active[-1][0]
        coarsest = self._levels[deepest].rate_denominator
        pool: list[StreamPoint] = []
        for index, records in active:
            keep_probability = self._levels[index].rate_denominator / coarsest
            for record in records:
                if keep_probability >= 1.0 or rng.random() < keep_probability:
                    pool.append(record.last)
        # Level c participates with probability 1, so the pool is never
        # empty (Lemma 2.10).
        return rng.choice(pool)

    def estimate_f0(self) -> float:
        """Estimate the number of groups in the window (Section 5).

        Horvitz-Thompson form: a group tracked at level ``l`` is accepted
        with probability ``1/R_l`` (invariant I2), so each accepted record
        stands for ``R_l`` groups and ``sum_l |S_acc_l| * R_l`` is an
        unbiased estimate of the window's group count.  The paper's
        FM-style level statistic is exposed by
        :class:`~repro.core.f0_sliding.RobustF0EstimatorSW`'s ``mode="fm"``.
        """
        if self._latest is None:
            raise EmptySampleError("no points inserted yet")
        total = 0.0
        for instance in self._levels:
            instance.evict(self._latest)
            total += instance.accepted_count * instance.rate_denominator
        return total

    def deepest_active_level(self) -> int | None:
        """Largest level index with a non-empty (unexpired) accept set."""
        if self._latest is None:
            return None
        deepest = None
        for index, instance in enumerate(self._levels):
            instance.evict(self._latest)
            if instance.accepted_count:
                deepest = index
        return deepest

    def space_words(self) -> int:
        """Current footprint across all levels."""
        return sum(level.space_words() for level in self._levels) + 4

    # ------------------------------------------------------------------ #
    # Summary protocol (see repro.api.protocol)
    # ------------------------------------------------------------------ #

    def query(self, rng: random.Random | None = None) -> StreamPoint:
        """Protocol query: a robust l0-sample of the current window."""
        return self.sample(rng)

    def merge(self, *others: "RobustL0SamplerSW") -> "RobustL0SamplerSW":
        """Sliding hierarchies cannot be merged exactly.

        A group's level assignment encodes *where in the interleaved
        arrival order* its subwindow sits (Definition 2.9); two
        independently grown hierarchies carry no consistent interleaving,
        so there is no union hierarchy whose invariants (I1/I2) are
        restorable from the two states alone.  Use per-stream sharding
        with infinite-window samplers (:class:`repro.engine.BatchPipeline`)
        when distributed merging is required.
        """
        from repro.api.protocol import merge_unsupported

        raise merge_unsupported(
            self, "level assignment depends on the interleaved arrival order"
        )

    def to_state(self) -> dict:
        """Serialise the hierarchy to a JSON-compatible dict.

        The state is the window's contents in replayable form - every
        level's candidate records (representative, most recent in-window
        point, reservoir members) and eviction heap, exactly as held -
        plus the shared config, window specification and threshold
        policy.  A restored hierarchy continues the stream with decisions
        identical to the original's
        (``repro.engine.state_fingerprint``-equal).
        """
        from repro.core import serialize

        return {
            "config": serialize.config_to_state(self._config),
            "window": serialize.window_to_state(self._window),
            "policy": serialize.policy_to_state(self._policy),
            "max_level": self._max_level,
            "points_seen": self._count,
            "peak_space_words": self._peak_words,
            "latest": (
                serialize.point_to_state(self._latest)
                if self._latest is not None
                else None
            ),
            "levels": [level.to_state() for level in self._levels],
        }

    @classmethod
    def from_state(cls, state: dict) -> "RobustL0SamplerSW":
        """Restore a hierarchy from :meth:`to_state` output."""
        from repro.core import serialize

        from repro.errors import CheckpointError

        config = serialize.config_from_state(state["config"])
        window = serialize.window_from_state(state["window"])
        if window is None:
            raise CheckpointError(
                "sliding-window checkpoint is missing its window spec"
            )
        sampler = cls.__new__(cls)
        sampler._config = config
        sampler._window = window
        sampler._policy = serialize.policy_from_state(state["policy"])
        sampler._max_level = state["max_level"]
        sampler._levels = [
            FixedRateSlidingSampler.from_state(
                level_state, config=config, window=window
            )
            for level_state in state["levels"]
        ]
        sampler._latest = (
            serialize.point_from_state(state["latest"])
            if state["latest"] is not None
            else None
        )
        sampler._count = state["points_seen"]
        sampler._peak_words = state["peak_space_words"]
        return sampler
