"""Algorithms 3-5: space-efficient robust l0-sampling over sliding windows.

The hierarchy tracks candidate groups at ``L + 1`` levels with sample
rates ``1, 1/2, ..., 1/2^L`` over a dynamic partition of the window into
subwindows (Definition 2.9): level ``l`` covers an older slice of the
window at a coarser rate.  New groups enter at level 0 (rate 1 - every
cell is sampled, so "ALG_0 includes every point", cf. Lemma 2.10); when a
level's accept set outgrows ``kappa_0 * log m`` its older prefix is
*promoted*: `Split` re-derives the prefix's accept/reject status at the
doubled rate and `Merge` folds it into the level above, possibly
cascading (Lemma 2.8 bounds the cascade past the top level by 1/m^2).

A query resamples each level's accepted last-points down to the coarsest
active rate ``1/R_c`` and picks uniformly (Theorem 2.7: the result is a
robust l0-sample of the window using O(log w log m) words).  Uniformity
rests on two invariants: every live group is tracked at exactly one
level, and a group tracked at level ``l`` is accepted iff its
representative's cell is sampled at rate ``1/R_l`` - so each group's
inclusion probability is ``(1/R_l) * (R_l / R_c) = 1/R_c`` regardless of
which level it occupies.

Representation (the incremental hot path)
-----------------------------------------

All levels share **one** :class:`~repro.core.base.CandidateStore` and
**one** lazy eviction heap; each :class:`~repro.core.base.CandidateRecord`
carries its ``level`` tag, and the sampler keeps per-level record maps,
accept counts and word counts beside the store.  Consequences, relative
to the earlier one-store-per-level layout:

* an arrival costs one eviction sweep and one bucket probe instead of a
  per-level top-down walk (the single-tracking invariant I1 guarantees
  the group's record is unique across levels);
* a ``Split``/``Merge`` promotion *moves* a record by retagging its
  level and shifting it between the per-level maps - the store's
  adjacency-bucket registration survives untouched, so cascades no
  longer tear down and re-register whole levels;
* ``space_words`` sums cached per-level word counters (updated on every
  record add/evict/promote and on ``last``-point detachment), so peak
  tracking is O(levels) instead of a full record walk;
  ``recount_space_words`` is the from-scratch oracle.

Eviction is hierarchy-wide and runs once per arrival, which matches the
paper's Line 4 (every ``A_l`` drops expired pairs on each arrival) more
closely than the earlier walk, which only evicted levels above the one
that absorbed the point.

Deviations from the paper's pseudocode (typos and an inconsistency
resolved; see DESIGN.md section 3 for the full discussion):

* the paper's insertion loop stops at the first level where the point is
  tracked *at all*, which lets a brand-new group be trapped as "rejected"
  at a high level; such a group is invisible to every accept set, which
  empirically starves the sampler and contradicts Fact 4 / Lemma 2.10.
  Here the probe only locates the group's existing record; genuinely new
  groups are inserted at level 0, and a rejected record that receives
  fresh activity is reassigned to level 0 (its subwindow is now the
  newest one; its representative is preserved);
* ``Split`` re-derives accept/reject status of the promoted points under
  the doubled rate exactly as Algorithm 1's resampling step does (the
  literal pseudocode would always promote an empty reject set);
* the query iterates levels ``0..c`` (not ``1..c``) and only over accepted
  groups' last-points;
* ``Merge`` deduplicates representatives of the same group.
"""

from __future__ import annotations

import math
import random
from typing import Iterable, Iterator, Sequence

import heapq
import itertools

from repro.core.base import (
    DEFAULT_BATCH_SIZE,
    DEFAULT_KAPPA0,
    CandidateRecord,
    CandidateStore,
    SamplerConfig,
    StreamSampler,
    _CELL_MEMO_LIMIT,
    _ThresholdPolicy,
    coerce_point,
    chunked,
)
from repro.core.chunk_geometry import (
    ChunkGeometry,
    compute_chunk_geometry,
    materialize_chunk,
)
from repro.errors import EmptySampleError, LevelOverflowError, ParameterError
from repro.geometry.distance import within_distance
from repro.streams.point import StreamPoint
from repro.streams.windows import SequenceWindow, WindowSpec

_record_words = CandidateStore.record_words


class HierarchyLevel:
    """Read-only Algorithm 2 view over one level of the shared hierarchy.

    The sliding-window sampler stores all levels in one
    :class:`~repro.core.base.CandidateStore`; this view exposes the
    classic per-level surface (``rate_denominator``, ``records()``,
    ``accepted_records()``, ``find_group``...) for queries, tests and
    the k-sample wrapper, backed by the shared structures.
    """

    __slots__ = ("_sampler", "_index")

    def __init__(self, sampler: "RobustL0SamplerSW", index: int) -> None:
        self._sampler = sampler
        self._index = index

    @property
    def rate_denominator(self) -> int:
        """``R_l = 2^l`` of this level."""
        return 1 << self._index

    @property
    def accepted_count(self) -> int:
        """``|S_acc_l|`` (pre-eviction; call :meth:`evict` for exactness)."""
        return self._sampler._level_accepted[self._index]

    @property
    def candidate_count(self) -> int:
        """Number of candidate groups tracked at this level."""
        return len(self._sampler._level_records[self._index])

    def records(self) -> Iterator[CandidateRecord]:
        """Iterate this level's candidate records."""
        return iter(list(self._sampler._level_records[self._index].values()))

    def accepted_records(self) -> list[CandidateRecord]:
        """Records of this level's accept set."""
        return [
            r
            for r in self._sampler._level_records[self._index].values()
            if r.accepted
        ]

    def rejected_records(self) -> list[CandidateRecord]:
        """Records of this level's reject set."""
        return [
            r
            for r in self._sampler._level_records[self._index].values()
            if not r.accepted
        ]

    def find_group(
        self, vector: Sequence[float], cell_hash: int
    ) -> CandidateRecord | None:
        """Proximity lookup restricted to this level's records."""
        sampler = self._sampler
        bucket = sampler._store._buckets.get(cell_hash)
        if not bucket:
            return None
        alpha = sampler._config.alpha
        index = self._index
        for record in bucket:
            if record.level == index and within_distance(
                record.representative.vector, vector, alpha
            ):
                return record
        return None

    def evict(self, latest: StreamPoint) -> None:
        """Evict expired groups (hierarchy-wide; levels share one heap)."""
        self._sampler._evict(latest)

    def space_words(self) -> int:
        """This level's footprint in words (cached counter + scalars)."""
        return self._sampler._level_words[self._index] + 3


class RobustL0SamplerSW(StreamSampler):
    """Robust distinct sampler for sliding windows (Algorithm 3).

    Works for both sequence-based and time-based windows; only the
    expiration rule differs (encapsulated in ``window``).

    Parameters
    ----------
    alpha:
        Near-duplicate distance threshold.
    dim:
        Point dimensionality.
    window:
        A :class:`~repro.streams.windows.SequenceWindow` or
        :class:`~repro.streams.windows.TimeWindow`.
    window_capacity:
        Upper bound on the number of points a window can contain; sets the
        number of levels ``L = ceil(log2(capacity))``.  Defaults to the
        window size for sequence-based windows; required for time-based
        windows (where the point count is not implied by the duration).
    kappa0, expected_stream_length, seed, grid_side, kwise:
        As in :class:`~repro.core.infinite_window.RobustL0SamplerIW`.

    Examples
    --------
    >>> sw = RobustL0SamplerSW(0.5, 1, SequenceWindow(4), seed=3)
    >>> for i in range(12):
    ...     sw.insert((float(i * 10),))
    >>> sw.sample(rng=random.Random(0)).vector[0] >= 80.0
    True
    """

    #: Registry key (see :mod:`repro.api.registry`).
    summary_key = "l0-sliding"

    def __init__(
        self,
        alpha: float,
        dim: int,
        window: WindowSpec,
        *,
        window_capacity: int | None = None,
        kappa0: float = DEFAULT_KAPPA0,
        expected_stream_length: int | None = None,
        seed: int | None = None,
        grid_side: float | None = None,
        kwise: int | None = None,
        config: SamplerConfig | None = None,
    ) -> None:
        if window_capacity is None:
            if isinstance(window, SequenceWindow):
                window_capacity = int(window.size)
            else:
                raise ParameterError(
                    "window_capacity is required for time-based windows "
                    "(the duration does not bound the point count)"
                )
        if window_capacity < 1:
            raise ParameterError(
                f"window_capacity must be >= 1, got {window_capacity}"
            )
        self._config = config if config is not None else SamplerConfig.create(
            alpha, dim, seed=seed, grid_side=grid_side, kwise=kwise
        )
        self._window = window
        self._policy = _ThresholdPolicy(kappa0, expected_stream_length)
        self._max_level = max(1, math.ceil(math.log2(max(window_capacity, 2))))
        levels = self._max_level + 1
        self._store = CandidateStore(self._config)
        self._heap: list[tuple[float, int, CandidateRecord, StreamPoint]] = []
        self._tiebreak = itertools.count()
        self._level_records: list[dict[int, CandidateRecord]] = [
            {} for _ in range(levels)
        ]
        self._level_accepted: list[int] = [0] * levels
        self._level_words: list[int] = [0] * levels
        self._latest: StreamPoint | None = None
        self._count = 0
        self._peak_words = 0

    # ------------------------------------------------------------------ #
    # properties
    # ------------------------------------------------------------------ #

    @property
    def alpha(self) -> float:
        """The near-duplicate distance threshold."""
        return self._config.alpha

    @property
    def dim(self) -> int:
        """Point dimensionality."""
        return self._config.dim

    @property
    def window(self) -> WindowSpec:
        """The window specification."""
        return self._window

    @property
    def num_levels(self) -> int:
        """Number of hierarchy levels (``L + 1``)."""
        return self._max_level + 1

    @property
    def points_seen(self) -> int:
        """Number of stream points inserted."""
        return self._count

    @property
    def peak_space_words(self) -> int:
        """Largest footprint observed across the run."""
        return self._peak_words

    def level(self, index: int) -> HierarchyLevel:
        """Access one level's Algorithm 2 view (for queries/tests)."""
        if not 0 <= index <= self._max_level:
            raise ParameterError(
                f"level must be in [0, {self._max_level}], got {index}"
            )
        return HierarchyLevel(self, index)

    # ------------------------------------------------------------------ #
    # shared-store bookkeeping
    # ------------------------------------------------------------------ #

    def _push(self, record: CandidateRecord) -> None:
        # Stamping the record's slot with the entry's tiebreak is what
        # makes the eviction staleness check O(1): an entry is current
        # iff its tiebreak matches the slot's generation counter (see
        # the slot-pool notes on CandidateStore).
        tiebreak = next(self._tiebreak)
        self._store._slot_tb[record.slot] = tiebreak
        heapq.heappush(
            self._heap,
            (
                self._window.expiry_key(record.last),
                tiebreak,
                record,
                record.last,
            ),
        )

    def _add(self, record: CandidateRecord) -> None:
        """Register a record (store + its level's map/counters)."""
        store = self._store
        store.add(record)
        level = record.level
        self._level_records[level][record.representative.index] = record
        if record.accepted:
            self._level_accepted[level] += 1
        self._level_words[level] += store._slot_words[record.slot]

    def _remove(self, record: CandidateRecord) -> None:
        """Drop a record (store + its level's map/counters)."""
        store = self._store
        words = store._slot_words[record.slot]
        store.remove(record)
        level = record.level
        del self._level_records[level][record.representative.index]
        if record.accepted:
            self._level_accepted[level] -= 1
        self._level_words[level] -= words

    def _move(self, record: CandidateRecord, target: int) -> None:
        """Retag a record's level - the store registration survives."""
        source = record.level
        key = record.representative.index
        del self._level_records[source][key]
        self._level_records[target][key] = record
        record.level = target
        # The record's footprint is served from its slot (kept exact by
        # add/relink), so the promotion is counter moves only.
        words = self._store._slot_words[record.slot]
        level_words = self._level_words
        level_words[source] -= words
        level_words[target] += words
        if record.accepted:
            level_accepted = self._level_accepted
            level_accepted[source] -= 1
            level_accepted[target] += 1

    def _set_accepted(self, record: CandidateRecord, accepted: bool) -> None:
        """Flip accept status, keeping store and level counters in sync."""
        if record.accepted != accepted:
            self._store.set_accepted(record, accepted)
            self._level_accepted[record.level] += 1 if accepted else -1

    def _relink_last(self, record: CandidateRecord, new_last: StreamPoint) -> None:
        """Level-aware :meth:`CandidateStore.relink_last`."""
        rep = record.representative
        extra = len(rep.vector) + 2
        store = self._store
        if record.last is rep:
            if new_last is not rep:
                store._base_words += extra
                store._slot_words[record.slot] += extra
                self._level_words[record.level] += extra
        elif new_last is rep:
            store._base_words -= extra
            store._slot_words[record.slot] -= extra
            self._level_words[record.level] -= extra
        record.last = new_last

    def _evict(self, latest: StreamPoint) -> None:
        """Drop groups whose last point expired (Lines 1-3, all levels).

        One lazy heap covers the whole hierarchy.  The window's
        ``eviction_cutoff`` pre-filters by heap key first - the common
        nothing-expires case costs one float comparison - then stale
        entries (detected in O(1): the entry's tiebreak no longer
        matches its record's slot generation - the record was removed,
        or a later push superseded the entry) are popped, and the
        authoritative ``in_window`` test decides the rest.
        """
        heap = self._heap
        if not heap:
            return
        window = self._window
        cutoff = window.eviction_cutoff(latest)
        slot_tb = self._store._slot_tb
        while heap:
            key, tiebreak, record, _ = heap[0]
            if key > cutoff:
                break
            if slot_tb[record.slot] != tiebreak:
                heapq.heappop(heap)
                continue
            if window.in_window(record.last, latest):
                break
            heapq.heappop(heap)
            self._remove(record)

    def _note_space(self) -> None:
        """Record the current footprint into the running peak.

        The single call site family for peak tracking (both the per-point
        and the batched paths go through here on the same every-16th
        cadence), so per-point and batch ingestion report identical
        ``peak_space_words`` by construction.
        """
        words = self.space_words()
        if words > self._peak_words:
            self._peak_words = words

    # ------------------------------------------------------------------ #
    # streaming
    # ------------------------------------------------------------------ #

    def insert(self, point: StreamPoint | Sequence[float]) -> None:
        """Process one arriving stream point (Lines 4-18 of Algorithm 3)."""
        p = coerce_point(point, self._count)
        if p.dim != self._config.dim:
            raise ParameterError(
                f"point has dimension {p.dim}, sampler expects {self._config.dim}"
            )
        if self._latest is not None and (
            self._window.expiry_key(p) < self._window.expiry_key(self._latest)
        ):
            raise ParameterError(
                "stream points must arrive in non-decreasing window order"
            )
        self._count += 1
        self._policy.observe()
        self._latest = p
        self._evict(p)

        ctx = self._config.point_context(p.vector)
        record = self._store.find_nearby(p.vector, ctx.cell_hash)
        if record is not None:
            # The group is tracked at exactly one level (invariant I1);
            # the shared store finds its record in one bucket probe.
            self._relink_last(record, p)
            record.count += 1
            self._push(record)
            if not record.accepted and record.level != 0:
                # A rejected group with fresh activity belongs to the
                # newest subwindow: move it (representative preserved) to
                # level 0, whose rate 1 accepts everything.
                self._move(record, 0)
                self._set_accepted(record, True)
                if self._level_accepted[0] > self._policy.threshold():
                    self._cascade(0)
        else:
            # A genuinely new group enters at level 0 (Lemma 2.10: ALG_0
            # tracks every representative since R_0 = 1).
            record = CandidateRecord(
                representative=p,
                cell=ctx.cell,
                cell_hash=ctx.cell_hash,
                adj_hashes=self._config.adj_hashes(p.vector, cell=ctx.cell),
                accepted=True,
                last=p,
                level=0,
            )
            self._add(record)
            self._push(record)
            if self._level_accepted[0] > self._policy.threshold():
                self._cascade(0)

        # Peak-space tracking is sampled (every 16th arrival); with the
        # cached per-level counters each probe is O(levels).
        if self._count & 0xF == 0:
            self._note_space()

    def process_many(
        self,
        points: Iterable[StreamPoint | Sequence[float]],
        *,
        geometry: "ChunkGeometry | None" = None,
    ) -> int:
        """Batched :meth:`insert` over the whole hierarchy.

        The chunk's cells and memo-aware cell hashes come from one
        vectorised :class:`~repro.core.chunk_geometry.ChunkGeometry`
        precompute (``geometry`` accepts one computed upstream by the
        pipeline; founding-heavy chunks also get their ``adj(p)`` hash
        tuples from its vectorised enumeration), so the per-arrival loop
        keeps only the sequential machinery - eviction sweep, the single
        shared-store bucket probe, the distance test - replicating
        :meth:`insert` operation-for-operation; the resulting state
        (including the shared lazy heap) is identical to per-point
        ingestion.  Cascades never invalidate the hoisted locals: the
        shared store and heap objects are stable across Split/Merge
        (promotions retag records in place).  Chunks too small to
        vectorise take the inlined scalar branch.
        """
        if geometry is None and not isinstance(points, (list, tuple)):
            # A non-materialised iterable is streamed in bounded chunks:
            # building one ChunkGeometry over an arbitrary stream would
            # regress the O(chunk)-memory behaviour of the batch engine
            # (chunk boundaries are state-invisible by the layout-
            # invariance contract, so this is purely a memory bound).
            streamed = 0
            for chunk in chunked(points, DEFAULT_BATCH_SIZE):
                streamed += self.process_many(chunk)
            return streamed

        config = self._config
        dim = config.dim
        grid = config.grid
        side = grid.side
        offset = grid.offset
        memo = config.cell_hash_memo
        memo_get = memo.get
        cell_id = grid.cell_id
        hash_value = config.hash.value
        window = self._window
        expiry_key = window.expiry_key
        in_window = window.in_window
        eviction_cutoff = window.eviction_cutoff
        heap = self._heap
        heappush = heapq.heappush
        heappop = heapq.heappop
        policy = self._policy
        threshold = policy.threshold
        store = self._store
        slot_tb = store._slot_tb
        slot_words = store._slot_words
        buckets_get = store._buckets.get
        level_records0 = self._level_records[0]
        level_accepted = self._level_accepted
        level_words = self._level_words
        remove = self._remove
        tiebreak = self._tiebreak
        alpha_sq = config.alpha * config.alpha
        last_extra = dim + 2
        count = self._count
        latest = self._latest
        latest_key = expiry_key(latest) if latest is not None else None
        # Sequence windows admit exact inline arithmetic for the three
        # per-arrival window calls: expiry_key(p) == float(p.index),
        # eviction_cutoff(p) == float(p.index - w) == float(p.index) - w
        # and in_window(q, p) == q.index > p.index - w (indices stay far
        # below 2^53, so the float forms are exact).
        seq_size = (
            int(window.size) if type(window) is SequenceWindow else None
        )
        pending = 0  # arrivals not yet flushed into the threshold policy
        processed = 0
        if dim == 1:
            off0 = offset[0]
            off1 = 0.0
        elif dim == 2:
            off0, off1 = offset
        else:
            off0 = off1 = 0.0

        pts, vectors, error, _offender = materialize_chunk(
            points,
            dim,
            count,
            lambda actual: ParameterError(
                f"point has dimension {actual}, sampler expects {dim}"
            ),
            geometry=geometry,
        )
        if geometry is not None and not geometry.valid_for(config, vectors):
            geometry = None
        geom = (
            geometry
            if geometry is not None
            else compute_chunk_geometry(config, vectors)
        )
        if geom is not None:
            geom_n = min(geom.n, len(pts))
            hashes_list = geom.cell_hashes
            cell_at = geom.cell_at
        else:
            geom_n = 0
            hashes_list = ()
            cell_at = None
        try:
            for i in range(len(pts)):
                p = pts[i]
                vector = vectors[i]
                point_key = (
                    float(p.index) if seq_size is not None else expiry_key(p)
                )
                if latest_key is not None and point_key < latest_key:
                    raise ParameterError(
                        "stream points must arrive in non-decreasing "
                        "window order"
                    )
                count += 1
                pending += 1
                processed += 1
                latest = p
                latest_key = point_key

                # Inline _evict(p): identical operations to the method.
                if heap:
                    if seq_size is not None:
                        cutoff = point_key - seq_size
                    else:
                        cutoff = eviction_cutoff(p)
                    while heap:
                        key, entry_tb, record, _ = heap[0]
                        if key > cutoff:
                            break
                        if slot_tb[record.slot] != entry_tb:
                            heappop(heap)
                            continue
                        if (
                            record.last.index > cutoff
                            if seq_size is not None
                            else in_window(record.last, p)
                        ):
                            break
                        heappop(heap)
                        remove(record)

                if i < geom_n:
                    # Cell tuples are built lazily (cell_at) - only
                    # candidate foundings need them.
                    cell = None
                    cell_hash = hashes_list[i]
                else:
                    if dim == 2:
                        cell = (
                            int((vector[0] - off0) // side),
                            int((vector[1] - off1) // side),
                        )
                    elif dim == 1:
                        cell = (int((vector[0] - off0) // side),)
                    else:
                        cell = tuple(
                            int((x - o) // side)
                            for x, o in zip(vector, offset)
                        )
                    cell_hash = memo_get(cell)
                    if cell_hash is None:
                        cell_hash = hash_value(cell_id(cell))
                        if len(memo) >= _CELL_MEMO_LIMIT:
                            memo.clear()
                        memo[cell] = cell_hash

                # Inline find_nearby(p.vector, cell_hash): one probe
                # covers every level (single-tracking invariant I1).
                bucket = buckets_get(cell_hash)
                found = None
                if bucket:
                    for record in bucket:
                        acc = 0.0
                        for a, b in zip(
                            record.representative.vector, vector
                        ):
                            diff = a - b
                            acc += diff * diff
                            if acc > alpha_sq:
                                break
                        else:
                            found = record
                            break
                if found is not None:
                    # Inline _relink_last: footprint moves only on the
                    # (once per record) rep -> non-rep transition.
                    rep = found.representative
                    if p is not rep:
                        if found.last is rep:
                            store._base_words += last_extra
                            slot_words[found.slot] += last_extra
                            level_words[found.level] += last_extra
                    elif found.last is not rep:
                        store._base_words -= last_extra
                        slot_words[found.slot] -= last_extra
                        level_words[found.level] -= last_extra
                    found.last = p
                    found.count += 1
                    entry_tb = next(tiebreak)
                    slot_tb[found.slot] = entry_tb
                    heappush(heap, (point_key, entry_tb, found, p))
                    if not found.accepted and found.level:
                        # Rejected group with fresh activity: move it to
                        # level 0 (representative preserved).
                        self._count = count
                        self._latest = latest
                        policy.observe_many(pending)
                        pending = 0
                        self._move(found, 0)
                        self._set_accepted(found, True)
                        if level_accepted[0] > threshold():
                            self._cascade(0)
                else:
                    # A genuinely new group enters at level 0 (R_0 = 1
                    # accepts every cell, Lemma 2.10).
                    self._count = count
                    self._latest = latest
                    policy.observe_many(pending)
                    pending = 0
                    if i < geom_n:
                        if cell is None:
                            cell = cell_at(i)
                        adj_hashes = geom.adj_hashes(i)
                    else:
                        adj_hashes = config.adj_hashes(vector, cell=cell)
                    record = CandidateRecord(
                        representative=p,
                        cell=cell,
                        cell_hash=cell_hash,
                        adj_hashes=adj_hashes,
                        accepted=True,
                        last=p,
                        level=0,
                    )
                    store.add(record)
                    level_records0[p.index] = record
                    level_accepted[0] += 1
                    level_words[0] += slot_words[record.slot]
                    entry_tb = next(tiebreak)
                    slot_tb[record.slot] = entry_tb
                    heappush(heap, (point_key, entry_tb, record, p))
                    if level_accepted[0] > threshold():
                        self._cascade(0)

                if count & 0xF == 0:
                    self._note_space()
        finally:
            self._count = count
            self._latest = latest
            policy.observe_many(pending)
        if error is not None:
            raise error
        return processed

    # ------------------------------------------------------------------ #
    # Split / Merge (Algorithms 4 and 5)
    # ------------------------------------------------------------------ #

    def _cascade(self, start_level: int) -> None:
        """Restore the accept-set invariant by promoting prefixes upward."""
        level = start_level
        threshold = self._policy.threshold()
        while self._level_accepted[level] > threshold:
            if level + 1 > self._max_level:
                raise LevelOverflowError(
                    "sliding-window hierarchy overflow (Algorithm 3 Line 17); "
                    "this is the probability <= 1/m^2 failure event of "
                    "Lemma 2.8 - increase window_capacity or kappa0"
                )
            promoted = self._split(level)
            self._merge(promoted, level + 1)
            level += 1

    def _split(self, level: int) -> list[CandidateRecord]:
        """Algorithm 4: carve off the promotable prefix of ``level``.

        Returns the records of the prefix *re-derived at the doubled rate*
        (already filtered to accepted/rejected; dropped points removed),
        still registered in the shared store and tagged with ``level`` -
        :meth:`_merge` retags the survivors.  The remaining suffix stays
        at ``level`` completely untouched: no store re-registration, no
        heap churn.
        """
        level_map = self._level_records[level]
        doubled_exponent = level + 1
        doubled_mask = (1 << doubled_exponent) - 1

        all_records = sorted(
            level_map.values(), key=lambda r: r.representative.index
        )
        accepted = [r for r in all_records if r.accepted]
        survivors = [
            r for r in accepted if r.cell_hash & doubled_mask == 0
        ]
        if survivors:
            boundary = survivors[-1].representative.index
        elif len(accepted) > 1:
            # Negligible-probability corner (see DESIGN.md): keep the last
            # accepted point at this level so Fact 3 survives.
            boundary = accepted[-2].representative.index
        else:
            boundary = accepted[-1].representative.index - 1

        # Re-derive the prefix at the doubled rate (Algorithm 4's ALG_a);
        # the suffix (ALG_b) keeps its rate and status by simply staying.
        # ``all_records`` is index-sorted, so the prefix is its leading
        # run; the adj test is the cached O(1) survival exponent.
        promoted: list[CandidateRecord] = []
        for record in all_records:
            if record.representative.index > boundary:
                break
            if record.cell_hash & doubled_mask == 0:
                self._set_accepted(record, True)
            else:
                # Inline the cached survival-exponent read (computed at
                # most once per record by survival_exponent()).
                tz = record.adj_tz
                if tz < 0:
                    tz = record.survival_exponent()
                if tz >= doubled_exponent:
                    self._set_accepted(record, False)
                else:
                    self._remove(record)
                    continue
            promoted.append(record)
        return promoted

    def _merge(self, promoted: list[CandidateRecord], level: int) -> None:
        """Algorithm 5: fold promoted records into the level above.

        Promotion is a *move*: the record's level tag flips and it shifts
        between the per-level maps; its store registration and its live
        heap entry survive as-is.  Deduplicates representatives of the
        same group: when the target level already tracks a group within
        ``alpha`` of a promoted representative, the existing record
        absorbs the promoted one's last-point and count.
        """
        buckets_get = self._store._buckets.get
        alpha = self._config.alpha
        expiry_key = self._window.expiry_key
        for record in promoted:
            existing = None
            bucket = buckets_get(record.cell_hash)
            if bucket:
                vector = record.representative.vector
                for candidate in bucket:
                    # Promoted-but-not-yet-moved records still carry the
                    # source level tag, so they can never match here.
                    if candidate.level == level and within_distance(
                        candidate.representative.vector, vector, alpha
                    ):
                        existing = candidate
                        break
            if existing is not None:
                if expiry_key(record.last) > expiry_key(existing.last):
                    self._relink_last(existing, record.last)
                    self._push(existing)
                existing.count += record.count
                self._remove(record)
            else:
                self._move(record, level)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def sample(self, rng: random.Random | None = None) -> StreamPoint:
        """Return a robust l0-sample of the current window (Lines 19-23).

        Each accepted group at level ``l`` is kept with probability
        ``R_l / R_c`` (``c`` the deepest non-empty level) so every group in
        the window survives with probability ``1/R_c``; the returned point
        is the group's last (most recent) point.
        """
        if self._latest is None:
            raise EmptySampleError("no points inserted yet")
        rng = rng if rng is not None else random.Random()
        self._evict(self._latest)

        active: list[tuple[int, list[CandidateRecord]]] = []
        for index, level_map in enumerate(self._level_records):
            if not self._level_accepted[index]:
                continue
            records = [r for r in level_map.values() if r.accepted]
            if records:
                active.append((index, records))
        if not active:
            raise EmptySampleError("the sliding window contains no points")

        deepest = active[-1][0]
        coarsest = 1 << deepest
        pool: list[StreamPoint] = []
        for index, records in active:
            keep_probability = (1 << index) / coarsest
            for record in records:
                if keep_probability >= 1.0 or rng.random() < keep_probability:
                    pool.append(record.last)
        # Level c participates with probability 1, so the pool is never
        # empty (Lemma 2.10).
        return rng.choice(pool)

    def estimate_f0(self) -> float:
        """Estimate the number of groups in the window (Section 5).

        Horvitz-Thompson form: a group tracked at level ``l`` is accepted
        with probability ``1/R_l`` (invariant I2), so each accepted record
        stands for ``R_l`` groups and ``sum_l |S_acc_l| * R_l`` is an
        unbiased estimate of the window's group count.  The paper's
        FM-style level statistic is exposed by
        :class:`~repro.core.f0_sliding.RobustF0EstimatorSW`'s ``mode="fm"``.
        """
        if self._latest is None:
            raise EmptySampleError("no points inserted yet")
        self._evict(self._latest)
        return float(
            sum(
                count << index
                for index, count in enumerate(self._level_accepted)
            )
        )

    def deepest_active_level(self) -> int | None:
        """Largest level index with a non-empty (unexpired) accept set."""
        if self._latest is None:
            return None
        self._evict(self._latest)
        deepest = None
        for index, count in enumerate(self._level_accepted):
            if count:
                deepest = index
        return deepest

    def space_words(self) -> int:
        """Current footprint across all levels (cached counters, O(levels))."""
        return sum(self._level_words) + 3 * (self._max_level + 1) + 4

    def recount_space_words(self) -> int:
        """Debug oracle: recompute :meth:`space_words` from scratch.

        Walks every level's records and sums their true footprints; the
        invariant tests assert this equals :meth:`space_words` (and that
        the per-level cached counters match per level) after every
        operation.
        """
        total = 0
        for level_map in self._level_records:
            total += sum(_record_words(r) for r in level_map.values())
        return total + 3 * (self._max_level + 1) + 4

    # ------------------------------------------------------------------ #
    # Summary protocol (see repro.api.protocol)
    # ------------------------------------------------------------------ #

    def query(self, rng: random.Random | None = None) -> StreamPoint:
        """Protocol query: a robust l0-sample of the current window."""
        return self.sample(rng)

    def merge(self, *others: "RobustL0SamplerSW") -> "RobustL0SamplerSW":
        """Sliding hierarchies cannot be merged exactly.

        A group's level assignment encodes *where in the interleaved
        arrival order* its subwindow sits (Definition 2.9); two
        independently grown hierarchies carry no consistent interleaving,
        so there is no union hierarchy whose invariants (I1/I2) are
        restorable from the two states alone.  Use per-stream sharding
        with infinite-window samplers (:class:`repro.engine.BatchPipeline`)
        when distributed merging is required.
        """
        from repro.api.protocol import merge_unsupported

        raise merge_unsupported(
            self, "level assignment depends on the interleaved arrival order"
        )

    def to_state(self) -> dict:
        """Serialise the hierarchy to a JSON-compatible dict.

        The state is the window's contents in replayable form - every
        candidate record (representative, most recent in-window point,
        level tag) plus the shared lazy eviction heap **verbatim** (stale
        entries, tiebreak counter position and all) - plus the shared
        config, window specification and threshold policy.  A restored
        hierarchy continues the stream with decisions identical to the
        original's (``repro.engine.state_fingerprint``-equal).

        Heap entries are stored with two linkage flags instead of object
        references: ``linked`` (the referenced record is still the store's
        record for that representative) and ``cur`` (the entry's last-point
        is the record's current one).  ``from_state`` uses them to restore
        the identity relationships the lazy-eviction staleness checks rely
        on (``store.get(i) is record`` / ``record.last is last_ref``).
        """
        from repro.core import serialize

        store = self._store
        records = sorted(
            store.records(), key=lambda r: r.representative.index
        )
        heap_state = []
        for key, tiebreak, record, last_ref in self._heap:
            current = store.get(record.representative.index)
            heap_state.append(
                {
                    "k": key,
                    "t": tiebreak,
                    "r": record.representative.index,
                    "p": serialize.point_to_state(last_ref),
                    "linked": current is record,
                    "cur": record.last is last_ref,
                }
            )
        # Read the tiebreak position without perturbing the sequence: the
        # counter object is consumed by one peek and replaced by an equal
        # continuation (fingerprints never include the object itself).
        position = next(self._tiebreak)
        self._tiebreak = itertools.count(position)
        return {
            "config": serialize.config_to_state(self._config),
            "window": serialize.window_to_state(self._window),
            "policy": serialize.policy_to_state(self._policy),
            "max_level": self._max_level,
            "points_seen": self._count,
            "peak_space_words": self._peak_words,
            "latest": (
                serialize.point_to_state(self._latest)
                if self._latest is not None
                else None
            ),
            "records": [serialize.record_to_state(r) for r in records],
            "heap": heap_state,
            "next_tiebreak": position,
        }

    @classmethod
    def from_state(cls, state: dict) -> "RobustL0SamplerSW":
        """Restore a hierarchy from :meth:`to_state` output.

        Also reads the legacy one-store-per-level layout (states written
        before the shared-store refactor, recognisable by their
        ``"levels"`` list): records are re-tagged with their level index
        and the per-level lazy heaps are folded into the shared heap
        (live entries only - stale entries are semantically inert, they
        only existed to be popped).
        """
        from repro.core import serialize

        from repro.errors import CheckpointError

        config = serialize.config_from_state(state["config"])
        window = serialize.window_from_state(state["window"])
        if window is None:
            raise CheckpointError(
                "sliding-window checkpoint is missing its window spec"
            )
        sampler = cls.__new__(cls)
        sampler._config = config
        sampler._window = window
        sampler._policy = serialize.policy_from_state(state["policy"])
        sampler._max_level = state["max_level"]
        levels = sampler._max_level + 1
        sampler._store = CandidateStore(config)
        sampler._heap = []
        sampler._level_records = [{} for _ in range(levels)]
        sampler._level_accepted = [0] * levels
        sampler._level_words = [0] * levels
        sampler._latest = (
            serialize.point_from_state(state["latest"])
            if state["latest"] is not None
            else None
        )
        sampler._count = state["points_seen"]
        sampler._peak_words = state["peak_space_words"]
        if "levels" in state:
            sampler._restore_legacy_levels(state["levels"])
            return sampler

        records: dict[int, CandidateRecord] = {}
        for record_state in state["records"]:
            record = serialize.record_from_state(record_state)
            records[record.representative.index] = record
            sampler._add(record)
        sampler._tiebreak = itertools.count(state["next_tiebreak"])
        slot_tb = sampler._store._slot_tb
        for entry in state["heap"]:
            last = serialize.point_from_state(entry["p"])
            record = records.get(entry["r"]) if entry["linked"] else None
            if record is None:
                # The referenced record left the store: fabricate a
                # detached stand-in so the staleness check pops the entry
                # exactly as it would have popped the original (a
                # detached record carries the sentinel slot 0, whose
                # generation counter never matches a real tiebreak).
                record = CandidateRecord(
                    representative=StreamPoint(last.vector, entry["r"]),
                    cell=(),
                    cell_hash=0,
                    adj_hashes=(),
                    accepted=False,
                    last=last,
                )
            elif entry["cur"]:
                # Live entry: restore the identity record.last is last_ref
                # and stamp the record's slot generation so the entry
                # reads as current.  Max-wins, matching live stamping
                # (the record's *latest* push owns the slot counter).
                last = record.last
                if entry["t"] > slot_tb[record.slot]:
                    slot_tb[record.slot] = entry["t"]
            # The saved list order *is* a valid heap arrangement (it was
            # the live heap), so it is restored verbatim - heapifying
            # could legally rearrange it and break fingerprint equality.
            sampler._heap.append((entry["k"], entry["t"], record, last))
        return sampler

    def _restore_legacy_levels(self, level_states: list[dict]) -> None:
        """Rebuild shared structures from per-level legacy states."""
        from repro.core import serialize

        live_entries: list[tuple[float, int, int, int]] = []
        records: dict[int, CandidateRecord] = {}
        for index, level_state in enumerate(level_states):
            for record_state in level_state["records"]:
                record = serialize.record_from_state(record_state)
                record.level = index
                records[record.representative.index] = record
                self._add(record)
            for entry in level_state["heap"]:
                if entry["linked"] and entry["cur"]:
                    live_entries.append(
                        (entry["k"], index, entry["t"], entry["r"])
                    )
        covered = {key for _, _, _, key in live_entries}
        for key, record in records.items():
            if key not in covered:
                live_entries.append(
                    (
                        self._window.expiry_key(record.last),
                        len(level_states),
                        0,
                        key,
                    )
                )
        # Pushing in sorted order yields a valid heap with fresh,
        # collision-free tiebreaks (per-level counters overlapped).
        self._tiebreak = itertools.count()
        slot_tb = self._store._slot_tb
        for heap_key, _, _, record_key in sorted(live_entries):
            record = records[record_key]
            tiebreak = next(self._tiebreak)
            # Later pushes overwrite: the slot generation tracks the
            # record's freshest entry, exactly as live stamping does.
            slot_tb[record.slot] = tiebreak
            self._heap.append((heap_key, tiebreak, record, record.last))
