"""Shared machinery for the robust samplers.

All three samplers (Algorithms 1-3) revolve around the same bookkeeping:
representative points of *candidate groups*, each classified as accepted
(its own cell is sampled) or rejected (only some neighbouring cell is),
looked up by proximity when new points arrive.  This module provides:

* :func:`default_grid_side` - the grid side-length policy,
* :class:`SamplerConfig` - immutable bundle of grid + hash + alpha shared
  by a sampler (and across the levels of the sliding-window hierarchy),
* :class:`PointContext` - the per-arrival geometry (cell, cell hash,
  ``adj(p)`` hashes) computed once and shared across hierarchy levels,
* :class:`CandidateRecord` - one tracked group,
* :class:`CandidateStore` - the accept/reject sets with hash-bucketed
  proximity search.

Proximity search exploits the geometry: a stored representative ``u`` can
satisfy ``d(u, p) <= alpha`` only if ``cell(p)`` is within distance
``alpha`` of ``u`` - i.e. ``cell(p) in adj(u)``.  Each record is therefore
registered under the hash values of ``adj(representative)`` (already
computed for its accept/reject classification), and an arriving point only
inspects the single bucket of its own cell: the common "point of an
already-seen group" case costs one cell computation and one dictionary
lookup, no adjacency enumeration.

Sampling decisions everywhere reduce to ``hash_value & (R - 1) == 0``
(i.e. ``h_R(cell) = 0``) with ``R`` a power of two, so they are nested
across rates (Fact 1(b)) and records can be re-classified at a doubled
rate from their cached hash values alone.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from itertools import islice
from typing import Iterable, Iterator, Sequence

from repro.errors import ParameterError
from repro.geometry.adjacency import collect_adjacent
from repro.geometry.distance import within_distance
from repro.geometry.grid import Cell, Grid
from repro.hashing.kwise import KWiseHash
from repro.hashing.sampling import SamplingHash
from repro.streams.point import StreamPoint

#: Default threshold constant kappa_0 (Line 10 of Algorithm 1).  The paper
#: only requires "a large enough constant": Lemma 2.5 needs kappa_0 >= 2
#: for the 1/m^2 failure bound; 4 doubles that exponent while keeping the
#: accept set (and hence pSpace) small.
DEFAULT_KAPPA0 = 4

#: Dimension up to which the conservative side alpha/sqrt(d) stays cheap
#: (|adj(p)| <= 25 at dim 2, exactly the paper's Section 2 setting; by
#: dim 4 the conservative neighbourhood already spans hundreds of cells).
_SMALL_DIM = 2

#: Chunk size used by :meth:`StreamSampler.extend` when slicing an
#: arbitrary iterable into batches for :meth:`StreamSampler.process_many`.
#: Large enough to amortise the per-batch setup, small enough that a
#: batch of dim-2 points stays well inside the L2 cache.
DEFAULT_BATCH_SIZE = 1024

#: Cap on the shared cell-hash memo of a :class:`SamplerConfig`.  The memo
#: is a pure cache (hash values are deterministic), so clearing it is
#: always safe; the cap only bounds memory on adversarial streams that
#: touch millions of distinct cells.
_CELL_MEMO_LIMIT = 1 << 20


def chunked(items, size: int):
    """Slice any iterable into consecutive lists of at most ``size`` items.

    Order-preserving; the final chunk may be shorter (the "uneven tail").
    Works on one-shot iterators, so it can sit directly on a file reader
    or a socket without materialising the stream.  Re-exported as
    :func:`repro.engine.batching.chunked` (this is the leaf definition -
    the engine package imports the core, not vice versa).

    >>> list(chunked(range(7), 3))
    [[0, 1, 2], [3, 4, 5], [6]]
    >>> list(chunked([], 3))
    []
    """
    if size < 1:
        raise ParameterError(f"chunk size must be >= 1, got {size}")
    iterator = iter(items)
    while True:
        chunk = list(islice(iterator, size))
        if not chunk:
            return
        yield chunk


class StreamSampler:
    """Ingestion interface shared by every sampler in the library.

    Subclasses implement :meth:`insert` (one point) and may override
    :meth:`process_many` (one batch) with a specialised hot path.  The
    batched-ingestion contract, enforced by ``tests/test_engine.py``:

        ``process_many(batch)`` must leave the sampler in a state
        identical to ``for p in batch: insert(p)`` - same records, same
        rates, same counters, same RNG states - for every batch size,
        including singleton and empty batches.

    Equivalently: batching is an *implementation detail of throughput*,
    never observable in sampler output.  The default ``process_many``
    realises the contract trivially by looping over :meth:`insert`;
    :meth:`extend` slices any iterable into chunks of
    :data:`DEFAULT_BATCH_SIZE` so every bulk caller automatically rides
    the batch path of samplers that specialise it.
    """

    def insert(self, point: StreamPoint | Sequence[float]) -> None:
        """Process one arriving stream point."""
        raise NotImplementedError

    def process_many(
        self, points: Iterable[StreamPoint | Sequence[float]]
    ) -> int:
        """Process a batch of points; returns the number processed.

        Default fallback: per-point dispatch.  Subclasses override this
        with an inlined loop that computes the per-arrival geometry once
        per batch chunk (see the contract in the class docstring).
        """
        insert = self.insert
        processed = 0
        for point in points:
            insert(point)
            processed += 1
        return processed

    def extend(
        self,
        points: Iterable[StreamPoint | Sequence[float]],
        *,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> int:
        """Insert a sequence of points through the batched path.

        Returns the number of points inserted.
        """
        if batch_size < 1:
            raise ParameterError(
                f"batch_size must be >= 1, got {batch_size}"
            )
        total = 0
        for chunk in chunked(points, batch_size):
            total += self.process_many(chunk)
        return total


def default_grid_side(alpha: float, dim: int) -> float:
    """Grid side length used when the caller does not pick one.

    * ``dim <= 2``: ``alpha / sqrt(dim)`` - the cell diameter is at most
      ``alpha``, so Fact 1(a) holds for *any* well-separated dataset
      (separation ratio just above 2), matching Section 2's setting.
    * ``dim > 2``: ``alpha * dim`` - the Section 4 configuration.  Cells
      are large relative to ``alpha``, making ``adj(p)`` expected O(1)
      (Lemma 4.2); it assumes the stronger sparsity ``beta > dim**1.5 *
      alpha``, which the paper's own evaluation datasets satisfy by
      construction (their separation ratio is about ``dim**1.5``).

    Callers with small separation ratios in middling dimension should pass
    an explicit ``grid_side`` of about ``beta / sqrt(dim)`` instead.
    """
    if alpha <= 0:
        raise ParameterError(f"alpha must be positive, got {alpha}")
    if dim < 1:
        raise ParameterError(f"dim must be >= 1, got {dim}")
    if dim <= _SMALL_DIM:
        return alpha / math.sqrt(dim)
    return alpha * dim


@dataclass(frozen=True, slots=True)
class PointContext:
    """Per-arrival geometry shared across a hierarchy's levels.

    Attributes
    ----------
    cell:
        ``cell(p)`` coordinates.
    cell_hash:
        Base-hash value of ``cell(p)`` (sampling test: ``& (R-1) == 0``).
    adj_hashes:
        Base-hash values of every cell of ``adj(p)``, or ``None`` when not
        yet computed (they are only needed on the first-point path, so
        they are filled lazily).
    """

    cell: Cell
    cell_hash: int
    adj_hashes: tuple[int, ...] | None = None


@dataclass(frozen=True)
class SamplerConfig:
    """Geometry and hashing shared by one sampler instance.

    The sliding-window hierarchy creates many Algorithm 2 instances that
    *must* share the same grid and hash (sampling decisions have to be
    nested across levels); bundling them makes that sharing explicit.
    """

    alpha: float
    dim: int
    grid: Grid
    hash: SamplingHash
    #: Shared cell -> base-hash memo.  A pure cache: hash values are a
    #: deterministic function of the cell, so the memo never influences
    #: sampler state - it only lets the batched ingestion paths (and every
    #: hierarchy level / shard sharing this config) skip re-hashing cells
    #: they have already seen.  Excluded from equality and repr.
    cell_hash_memo: dict[Cell, int] = field(
        default_factory=dict, repr=False, compare=False
    )
    #: Shared cell -> conservative neighbourhood memo (see
    #: :meth:`conservative_neighborhood`).  A pure cache like
    #: :attr:`cell_hash_memo`.
    conservative_memo: dict[Cell, tuple] = field(
        default_factory=dict, repr=False, compare=False
    )
    #: Shared cell-id -> base-hash memo used by the vectorised chunk
    #: geometry (:mod:`repro.core.chunk_geometry`).  Sound by
    #: construction: a cell's base hash is *defined* as a function of
    #: its 64-bit cell id (``hash.value(grid.cell_id(cell))``), so
    #: caching by id can never diverge from hashing the cell directly.
    #: Keyed by int (cheaper lookups than coordinate tuples on the
    #: vectorised path, where ids come out of the kernels anyway).
    cell_id_hash_memo: dict[int, int] = field(
        default_factory=dict, repr=False, compare=False
    )

    @classmethod
    def create(
        cls,
        alpha: float,
        dim: int,
        *,
        seed: int | None = None,
        rng: random.Random | None = None,
        grid_side: float | None = None,
        kwise: int | None = None,
    ) -> "SamplerConfig":
        """Build a configuration with sensible defaults.

        Parameters
        ----------
        alpha:
            Group-diameter threshold (the user-chosen input of the paper).
        dim:
            Ambient dimension.
        seed:
            Seed for both the grid offset and the sampling hash.  ``None``
            draws fresh randomness.  Ignored when ``rng`` is given.
        rng:
            Explicit source of randomness, as an alternative to ``seed``:
            library callers that already own one seeded generator can
            thread it through every construction instead of scattering
            integer seeds.
        grid_side:
            Override for the grid side length (see :func:`default_grid_side`).
        kwise:
            When given, use a ``kwise``-wise independent polynomial hash
            (the theory-faithful choice) instead of the default splitmix64
            mixer.
        """
        if alpha <= 0:
            raise ParameterError(f"alpha must be positive, got {alpha}")
        if dim < 1:
            raise ParameterError(f"dim must be >= 1, got {dim}")
        if rng is None:
            rng = random.Random(seed)
        side = grid_side if grid_side is not None else default_grid_side(alpha, dim)
        grid = Grid(side=side, dim=dim, rng=rng)
        hash_seed = rng.randrange(2**63)
        if kwise is not None:
            sampling = SamplingHash(KWiseHash(k=kwise, seed=hash_seed))
        else:
            sampling = SamplingHash(seed=hash_seed)
        return cls(alpha=alpha, dim=dim, grid=grid, hash=sampling)

    def cell_hash(self, cell: Cell) -> int:
        """Base-hash value of a cell (before the ``mod R`` reduction)."""
        return self.hash.value(self.grid.cell_id(cell))

    def cell_hashes(self, cells: Sequence[Cell]) -> list[int]:
        """Base-hash values of a batch of cells (batched base hash)."""
        cell_id = self.grid.cell_id
        return self.hash.value_many([cell_id(cell) for cell in cells])

    def conservative_neighborhood(
        self, cell: Cell
    ) -> tuple[tuple[tuple[float, ...], int], ...]:
        """Cells possibly within ``alpha`` of *any* point of ``cell``.

        Returns ``((lower_corner, base_hash), ...)`` for every cell whose
        minimum distance to ``cell``'s region is at most ``alpha`` (by the
        triangle inequality: within ``alpha + half-diagonal`` of the cell
        centre; the radius carries a relative epsilon so floating-point
        drift can only *over*-include).  This is the batched ingestion
        paths' ignore filter: a point of ``cell`` whose own cell is
        unsampled and that is farther than ``alpha`` from every *sampled*
        cell of this superset has no sampled cell in ``adj(p)`` and can be
        dropped without enumerating ``adj(p)`` at all.  Memoised per cell
        (mask-independent), shared across levels and shards.
        """
        memo = self.conservative_memo
        entry = memo.get(cell)
        if entry is None:
            grid = self.grid
            side = grid.side
            corner = grid.lower_corner(cell)
            center = tuple(c + side * 0.5 for c in corner)
            half_diagonal = side * math.sqrt(self.dim) * 0.5
            radius = (self.alpha + half_diagonal) * (1.0 + 1e-9)
            cells = collect_adjacent(grid, center, radius)
            hashes = self.cell_hashes(cells)
            entry = tuple(
                (grid.lower_corner(c), h) for c, h in zip(cells, hashes)
            )
            if len(memo) >= _CELL_MEMO_LIMIT:
                memo.clear()
            memo[cell] = entry
        return entry

    def point_context(self, vector: Sequence[float]) -> PointContext:
        """The cheap part of an arrival's geometry (no adjacency yet)."""
        cell = self.grid.cell_of(vector)
        return PointContext(cell=cell, cell_hash=self.cell_hash(cell))

    def adj_hashes(
        self, vector: Sequence[float], *, cell: Cell | None = None
    ) -> tuple[int, ...]:
        """Hash values of every cell of ``adj(vector)`` (DFS pruned).

        Each cell's hash is routed through the shared ``cell_hash_memo``:
        near-duplicate streams found new candidate groups around the same
        few cells over and over, so almost every adjacency cell has been
        hashed before.  Only memo misses pay for a base-hash evaluation,
        batched in one call (``adj(p)`` spans up to 25 cells at dim 2).
        The values are identical to hashing every cell directly - the
        memo is a pure cache.  ``cell``, when the caller has already
        computed ``cell(vector)``, skips the recomputation.
        """
        cells = collect_adjacent(
            self.grid, vector, self.alpha, base_cell=cell
        )
        memo = self.cell_hash_memo
        memo_get = memo.get
        hashes: list[int | None] = [memo_get(cell) for cell in cells]
        if None in hashes:
            missing = [
                index for index, value in enumerate(hashes) if value is None
            ]
            computed = self.cell_hashes([cells[index] for index in missing])
            if len(memo) + len(missing) >= _CELL_MEMO_LIMIT:
                memo.clear()
            for index, value in zip(missing, computed):
                hashes[index] = value
                memo[cells[index]] = value
        return tuple(hashes)  # type: ignore[arg-type]

    def with_adj(self, vector: Sequence[float], ctx: PointContext) -> PointContext:
        """Return ``ctx`` with ``adj_hashes`` filled (computing if needed)."""
        if ctx.adj_hashes is not None:
            return ctx
        return PointContext(
            cell=ctx.cell,
            cell_hash=ctx.cell_hash,
            adj_hashes=self.adj_hashes(vector, cell=ctx.cell),
        )


@dataclass(slots=True)
class CandidateRecord:
    """Bookkeeping for one candidate group.

    Attributes
    ----------
    representative:
        The group's representative point (the decision point of the
        algorithms; first point in the infinite window, the Observation 1
        point in sliding windows).
    cell:
        The representative's grid cell.
    cell_hash:
        Base-hash value of that cell; the record is *accepted* at rate
        ``1/R`` iff ``cell_hash & (R - 1) == 0``.
    adj_hashes:
        Base-hash values of ``adj(representative)``, cached because they
        are re-examined on every rate change (resampling / Split) and
        double as the record's bucket keys in the store.
    accepted:
        True when the record is in the accept set, False for the reject
        set.
    last:
        The group's most recent point (the value side of the paper's
        key-value store ``A``; equals the representative in the infinite
        window).
    count:
        Number of points of the group observed (drives Section 2.3's
        reservoir sampling).
    member:
        A uniformly random member of the group so far (reservoir sample);
        only maintained when member tracking is enabled.
    level:
        Hierarchy level owning the record (sliding-window samplers share
        one :class:`CandidateStore` across levels and tag each record
        with its level, so Split/Merge promotions move records without
        re-registering their adjacency buckets).  Always 0 outside a
        hierarchy.
    """

    representative: StreamPoint
    cell: Cell
    cell_hash: int
    adj_hashes: tuple[int, ...]
    accepted: bool
    last: StreamPoint
    count: int = 1
    member: StreamPoint | None = None
    level: int = 0
    #: Cached ``max_v tz(v)`` over ``adj_hashes`` (-1 = not yet computed;
    #: see :meth:`survival_exponent`).  Derived state - never serialised.
    adj_tz: int = -1
    #: Slot index into the owning :class:`CandidateStore`'s parallel
    #: arrays (``_slot_tb`` / ``_slot_words``).  0 is the reserved
    #: sentinel slot: a record not currently held by a store (detached
    #: stand-ins, removed records) carries slot 0, whose generation
    #: counter is permanently stale.  Derived state - never serialised.
    slot: int = 0

    def survival_exponent(self) -> int:
        """Largest ``k`` such that some ``adj`` hash is sampled at ``2^k``.

        ``any(v & (2^k - 1) == 0 for v in adj_hashes)`` is equivalent to
        ``survival_exponent() >= k`` (for ``k >= 1``), because a hash
        value survives the rate ``2^k`` test iff its trailing-zero count
        is at least ``k``.  Split re-derivations query this once per
        record per promotion, so the maximum is computed lazily and
        cached.
        """
        tz = self.adj_tz
        if tz < 0:
            tz = 0
            for value in self.adj_hashes:
                if value == 0:
                    tz = 64
                    break
                z = (value & -value).bit_length() - 1
                if z > tz:
                    tz = z
            self.adj_tz = tz
        return tz

    def space_words(self, *, track_members: bool) -> int:
        """Approximate memory footprint in machine words.

        Counts coordinates of the stored points plus one word per integer
        field, mirroring how the paper reports pSpace in words.
        """
        dim = len(self.representative.vector)
        words = dim + 2  # representative coordinates + index/time
        if self.last is not self.representative:
            words += dim + 2
        words += 3  # cell hash, accepted flag, count
        words += len(self.adj_hashes)
        if track_members and self.member is not None:
            words += dim + 2
        return words


class CandidateStore:
    """The accept/reject sets with hash-bucketed proximity lookup.

    Space accounting is *incremental*: the store maintains the exact sum
    of its records' footprints (``_base_words``, plus ``_member_words``
    for the optional member points) updated on :meth:`add`,
    :meth:`remove` and :meth:`relink_last`, so :meth:`space_words` is
    O(1) instead of a full record walk.  ``recount_space_words`` is the
    from-scratch oracle the invariant tests compare against.

    Slot pool (the array-backed hot path)
    -------------------------------------
    Every live record owns an integer *slot* into the store's parallel
    arrays, granted by :meth:`add` from an explicit free list and
    released by :meth:`remove`:

    * ``_slot_record[slot]`` - the record occupying the slot (``None``
      when free),
    * ``_slot_tb[slot]`` - generation counter: the heap tiebreak of the
      record's most recent heap entry (-1 when the record has never been
      pushed, or the slot is free),
    * ``_slot_words[slot]`` - the record's current ``record_words``
      footprint, kept exact by :meth:`add` / :meth:`relink_last` (and
      the samplers' inlined relink fast paths).

    The sliding-window samplers stamp ``_slot_tb`` on every heap push,
    turning the lazy-eviction staleness check into one list index plus
    an int compare (``slot_tb[record.slot] != entry_tb``) instead of two
    object-identity probes through dict lookups.  Soundness: heap
    tiebreaks are drawn from a strictly increasing counter, every
    re-link of a record is immediately followed by a push with a fresh
    tiebreak, and a *reused* slot is only ever re-stamped with a later
    tiebreak - so ``slot_tb`` matches an entry's tiebreak iff that entry
    is the record's current (freshest) one.  Slot 0 is a reserved
    sentinel whose counter is permanently stale (-1): detached records
    (checkpoint stand-ins, removed records) carry slot 0, so their heap
    entries read as stale without special-casing.
    """

    __slots__ = (
        "_config",
        "_records",
        "_buckets",
        "_accepted_count",
        "_base_words",
        "_member_words",
        "_slot_record",
        "_slot_tb",
        "_slot_words",
        "_free",
    )

    def __init__(self, config: SamplerConfig) -> None:
        self._config = config
        self._records: dict[int, CandidateRecord] = {}
        # Bucket key: a hash value of some cell of adj(representative).
        self._buckets: dict[int, list[CandidateRecord]] = {}
        self._accepted_count = 0
        self._base_words = 0
        self._member_words = 0
        # Parallel slot arrays; index 0 is the reserved stale sentinel.
        self._slot_record: list[CandidateRecord | None] = [None]
        self._slot_tb: list[int] = [-1]
        self._slot_words: list[int] = [0]
        self._free: list[int] = []

    def __len__(self) -> int:
        return len(self._records)

    @property
    def accepted_count(self) -> int:
        """Size of the accept set ``|S_acc|``."""
        return self._accepted_count

    @property
    def rejected_count(self) -> int:
        """Size of the reject set ``|S_rej|``."""
        return len(self._records) - self._accepted_count

    def records(self) -> Iterator[CandidateRecord]:
        """Iterate all candidate records (accepted and rejected)."""
        return iter(list(self._records.values()))

    def get(self, representative_index: int) -> CandidateRecord | None:
        """Return the record keyed by its representative's arrival index."""
        return self._records.get(representative_index)

    def __contains__(self, record: CandidateRecord) -> bool:
        return self._records.get(record.representative.index) is record

    def accepted_records(self) -> list[CandidateRecord]:
        """The accept set's records."""
        return [r for r in self._records.values() if r.accepted]

    def rejected_records(self) -> list[CandidateRecord]:
        """The reject set's records."""
        return [r for r in self._records.values() if not r.accepted]

    def find_nearby(
        self, vector: Sequence[float], cell_hash: int
    ) -> CandidateRecord | None:
        """Return the record whose representative is within alpha, if any.

        ``cell_hash`` must be the hash value of ``cell(vector)``.  A
        matching representative ``u`` has ``cell(vector) in adj(u)``, and
        every record is registered under its ``adj`` hash values, so the
        single bucket of ``cell_hash`` suffices.
        """
        bucket = self._buckets.get(cell_hash)
        if not bucket:
            return None
        alpha = self._config.alpha
        for record in bucket:
            if within_distance(record.representative.vector, vector, alpha):
                return record
        return None

    @staticmethod
    def record_words(record: CandidateRecord) -> int:
        """One record's footprint, member excluded (the ``_base_words``
        contribution; value-identical to
        :meth:`CandidateRecord.space_words` with ``track_members=False``)."""
        dim = len(record.representative.vector)
        words = dim + 5 + len(record.adj_hashes)
        if record.last is not record.representative:
            words += dim + 2
        return words

    def add(self, record: CandidateRecord) -> None:
        """Insert a new candidate record (granting it a slot)."""
        key = record.representative.index
        if key in self._records:
            raise ParameterError(
                f"representative with index {key} already stored"
            )
        self._records[key] = record
        buckets = self._buckets
        buckets_get = buckets.get
        # No dedup: adj hash values are distinct in practice (distinct
        # cells, 64-bit hashes), and a collision merely registers the
        # record twice in one bucket - remove() iterates the same
        # sequence, so registration stays symmetric either way.
        for value in record.adj_hashes:
            bucket = buckets_get(value)
            if bucket is None:
                buckets[value] = [record]
            else:
                bucket.append(record)
        if record.accepted:
            self._accepted_count += 1
        words = self.record_words(record)
        self._base_words += words
        if record.member is not None:
            self._member_words += len(record.representative.vector) + 2
        free = self._free
        if free:
            slot = free.pop()
            self._slot_record[slot] = record
            self._slot_tb[slot] = -1
            self._slot_words[slot] = words
        else:
            slot = len(self._slot_record)
            self._slot_record.append(record)
            self._slot_tb.append(-1)
            self._slot_words.append(words)
        record.slot = slot

    def remove(self, record: CandidateRecord) -> None:
        """Remove a candidate record (releasing its slot)."""
        key = record.representative.index
        del self._records[key]
        buckets = self._buckets
        for value in record.adj_hashes:
            bucket = buckets[value]
            bucket.remove(record)
            if not bucket:
                del buckets[value]
        if record.accepted:
            self._accepted_count -= 1
        slot = record.slot
        self._base_words -= self._slot_words[slot]
        if record.member is not None:
            self._member_words -= len(record.representative.vector) + 2
        self._slot_record[slot] = None
        self._slot_tb[slot] = -1
        self._slot_words[slot] = 0
        self._free.append(slot)
        record.slot = 0

    def relink_last(self, record: CandidateRecord, new_last: StreamPoint) -> None:
        """Set ``record.last`` keeping the incremental footprint exact.

        A record's ``last`` point only occupies extra words while it is a
        *distinct* object from the representative
        (:meth:`CandidateRecord.space_words`), so the counter moves only
        on the rep/non-rep identity transitions.  The hot ingestion loops
        inline this logic (the common non-rep -> non-rep update is free);
        every non-inlined call site goes through this method.
        """
        rep = record.representative
        extra = len(rep.vector) + 2
        if record.last is rep:
            if new_last is not rep:
                self._base_words += extra
                self._slot_words[record.slot] += extra
        elif new_last is rep:
            self._base_words -= extra
            self._slot_words[record.slot] -= extra
        record.last = new_last

    def check_slot_integrity(self) -> None:
        """Free-list / slot-pool invariant oracle (test hook, O(slots)).

        Raises ``AssertionError`` unless:

        * slot 0 is the pristine stale sentinel,
        * every live record owns exactly one slot, that slot points back
          at it, and its cached words match :meth:`record_words`,
        * every free-list entry is a cleared slot, listed exactly once,
          never slot 0, and never a live record's slot (no double-grant,
          no live-slot reuse),
        * live slots + free slots account for the whole pool.
        """
        slot_record = self._slot_record
        slot_tb = self._slot_tb
        slot_words = self._slot_words
        assert len(slot_record) == len(slot_tb) == len(slot_words)
        assert slot_record[0] is None and slot_tb[0] == -1 and slot_words[0] == 0
        free = self._free
        free_set = set(free)
        assert len(free_set) == len(free), "free list double-grants a slot"
        assert 0 not in free_set, "sentinel slot 0 on the free list"
        live_slots = set()
        for record in self._records.values():
            slot = record.slot
            assert 0 < slot < len(slot_record), "live record without a slot"
            assert slot not in live_slots, "two live records share a slot"
            assert slot not in free_set, "live record's slot on the free list"
            assert slot_record[slot] is record, "slot does not point back"
            assert slot_words[slot] == self.record_words(record)
            live_slots.add(slot)
        for slot in free_set:
            assert slot_record[slot] is None and slot_tb[slot] == -1
            assert slot_words[slot] == 0
        assert len(live_slots) + len(free_set) == len(slot_record) - 1

    def set_accepted(self, record: CandidateRecord, accepted: bool) -> None:
        """Flip a record between the accept and reject sets."""
        if record.accepted != accepted:
            record.accepted = accepted
            self._accepted_count += 1 if accepted else -1

    def resample(self, rate_denominator: int) -> None:
        """Re-derive every record's status at a new (coarser) rate.

        Implements the "update S_acc and S_rej according to the updated
        hash function" step (Line 12 of Algorithm 1): a record stays
        accepted if its own cell is still sampled, is rejected if some cell
        of ``adj(representative)`` is, and is dropped otherwise.
        """
        mask = rate_denominator - 1
        for record in self.records():
            if record.cell_hash & mask == 0:
                self.set_accepted(record, True)
            elif any(value & mask == 0 for value in record.adj_hashes):
                self.set_accepted(record, False)
            else:
                self.remove(record)

    def space_words(self, *, track_members: bool = False) -> int:
        """Total footprint of the store in words - O(1).

        Served from the incremental counters maintained by :meth:`add`,
        :meth:`remove` and :meth:`relink_last` (peak tracking runs this
        on the hot path); :meth:`recount_space_words` is the from-scratch
        recomputation the invariant tests compare against.
        """
        if track_members:
            return self._base_words + self._member_words
        return self._base_words

    def recount_space_words(self, *, track_members: bool = False) -> int:
        """From-scratch footprint walk (the incremental counters' oracle).

        Kept value-identical to summing
        :meth:`CandidateRecord.space_words` over all records; the
        invariant ``store.space_words() == store.recount_space_words()``
        must hold after every operation.
        """
        total = 0
        for record in self._records.values():
            dim = len(record.representative.vector)
            words = dim + 5 + len(record.adj_hashes)
            if record.last is not record.representative:
                words += dim + 2
            if track_members and record.member is not None:
                words += dim + 2
            total += words
        return total


def feed_copies(copies: Sequence, chunk: Sequence[StreamPoint]) -> None:
    """Feed a materialised chunk to independent sampler copies.

    Preserves per-point error semantics across copies: per-point
    ingestion gives every copy the same prefix before an invalid point
    raises, so if the first copy rejects a point mid-chunk, the other
    copies receive exactly the prefix it ingested before the error is
    re-raised.  (The rejection is deterministic per point - dimension or
    window-order checks - so the other copies accept that prefix.)
    """
    first = copies[0]
    before = first.points_seen
    try:
        first.process_many(chunk)
    except BaseException:
        prefix = first.points_seen - before
        for copy in copies[1:]:
            copy.process_many(chunk[:prefix])
        raise
    for copy in copies[1:]:
        copy.process_many(chunk)


def materialize_and_feed(
    copies: Sequence, points: Iterable[StreamPoint | Sequence[float]]
) -> int:
    """Shared batch path of the multi-copy wrappers (k-sample, F0).

    Raw coordinates are materialised once into :class:`StreamPoint`
    objects - all copies must agree on arrival indices, exactly as the
    wrappers' per-point ``insert`` arranges - then every copy ingests
    the shared chunk through its own specialised path.  Copies are
    independent, so chunk-at-a-time feeding leaves the same final state
    as point-interleaved feeding; error semantics also match per-point
    ingestion: if materialisation rejects a coordinate (non-numeric) or
    a copy rejects a point (dimension, window order), every copy ends up
    with exactly the valid prefix before the error propagates.

    Returns the number of points ingested.
    """
    index = copies[0].points_seen
    chunk: list[StreamPoint] = []
    append = chunk.append
    try:
        for point in points:
            if isinstance(point, StreamPoint):
                append(point)
            else:
                append(StreamPoint(tuple(float(x) for x in point), index))
            index += 1
    except BaseException:
        # Per-point ingestion would have fed the valid prefix to every
        # copy before hitting the bad coordinate; match that exactly.
        feed_copies(copies, chunk)
        raise
    feed_copies(copies, chunk)
    return len(chunk)


def coerce_point(
    value: StreamPoint | Sequence[float], next_index: int
) -> StreamPoint:
    """Accept either a StreamPoint or raw coordinates.

    Raw coordinates receive the sampler's running arrival index (and a
    matching timestamp).
    """
    if isinstance(value, StreamPoint):
        return value
    return StreamPoint(tuple(map(float, value)), next_index)


@dataclass
class _ThresholdPolicy:
    """Computes the kappa_0 * log m accept-set threshold.

    When the caller announces the expected stream length the threshold is
    fixed up front (the paper's setting); otherwise it grows with the
    number of points seen, which only affects *when* the rate halves, not
    correctness.  A ``fixed`` capacity short-circuits the log-m rule - the
    Section 5 F0 estimator replaces the threshold with ``kappa_B / eps^2``.
    """

    kappa0: float
    expected_stream_length: int | None = None
    minimum: int = 4
    fixed: int | None = None
    _seen: int = field(default=0, init=False)
    #: Memo ``(lo, hi, value)``: the inclusive interval of effective
    #: stream lengths ``m`` over which :meth:`threshold` is constant,
    #: and its value there.  A pure cache of the deterministic
    #: ``ceil(kappa0 * log2(m))`` rule - recomputed (and re-verified
    #: against the exact formula at both endpoints) on any miss, so it
    #: can never change what ``threshold()`` returns.  Excluded from
    #: equality; never serialised.
    _memo: tuple[int, int, int] | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def observe(self) -> None:
        """Record one arrival (drives the growing-m fallback)."""
        self._seen += 1

    def observe_many(self, count: int) -> None:
        """Record ``count`` arrivals in one step (the batched paths)."""
        self._seen += count

    @property
    def seen(self) -> int:
        """Number of arrivals observed so far."""
        return self._seen

    def threshold(self) -> int:
        """Current accept-set capacity.

        The growing-``m`` rule is a step function of the arrival count,
        so the hot paths' per-batch (and the eviction loops' per-point)
        calls are served from an interval memo: one tuple compare on a
        hit, with the full ``ceil(kappa0 * log2(m))`` evaluation - plus
        an exact-formula verification of the memoised interval's
        endpoints - only on a step boundary.
        """
        if self.fixed is not None:
            return max(self.minimum, self.fixed)
        m = (
            self.expected_stream_length
            if self.expected_stream_length is not None
            else max(self._seen, 16)
        )
        if m < 2:
            m = 2
        memo = self._memo
        if memo is not None and memo[0] <= m <= memo[1]:
            return memo[2]
        value = max(self.minimum, math.ceil(self.kappa0 * math.log2(m)))
        # Largest hi with the same threshold: analytically floor(2^(t/k0))
        # for the active branch, then nudged against the exact formula so
        # float drift in the analytic guess can never widen the interval.
        kappa0 = self.kappa0
        t = math.ceil(kappa0 * math.log2(m))
        if t <= self.minimum and kappa0 > 0:
            # minimum dominates: constant until ceil(k0*log2(hi)) exceeds it.
            t = self.minimum
        if kappa0 > 0:
            exponent = t / kappa0
            hi = int(2.0**exponent) if exponent < 62 else 1 << 62
            if hi < m:
                hi = m
            while math.ceil(kappa0 * math.log2(hi)) > t:
                hi -= 1
            while hi < 1 << 62 and math.ceil(kappa0 * math.log2(hi + 1)) <= t:
                hi += 1
        else:
            # Non-positive kappa0: the rule is no longer non-decreasing
            # in m, so memoise only the exact point just computed.
            hi = m
        # lo is recorded (rather than assuming m only grows) so the memo
        # stays sound even if _seen is rewound by a state restore.
        self._memo = (m, hi, value)
        return value
