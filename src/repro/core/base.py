"""Shared machinery for the robust samplers.

All three samplers (Algorithms 1-3) revolve around the same bookkeeping:
representative points of *candidate groups*, each classified as accepted
(its own cell is sampled) or rejected (only some neighbouring cell is),
looked up by proximity when new points arrive.  This module provides:

* :func:`default_grid_side` - the grid side-length policy,
* :class:`SamplerConfig` - immutable bundle of grid + hash + alpha shared
  by a sampler (and across the levels of the sliding-window hierarchy),
* :class:`PointContext` - the per-arrival geometry (cell, cell hash,
  ``adj(p)`` hashes) computed once and shared across hierarchy levels,
* :class:`CandidateRecord` - one tracked group,
* :class:`CandidateStore` - the accept/reject sets with hash-bucketed
  proximity search.

Proximity search exploits the geometry: a stored representative ``u`` can
satisfy ``d(u, p) <= alpha`` only if ``cell(p)`` is within distance
``alpha`` of ``u`` - i.e. ``cell(p) in adj(u)``.  Each record is therefore
registered under the hash values of ``adj(representative)`` (already
computed for its accept/reject classification), and an arriving point only
inspects the single bucket of its own cell: the common "point of an
already-seen group" case costs one cell computation and one dictionary
lookup, no adjacency enumeration.

Sampling decisions everywhere reduce to ``hash_value & (R - 1) == 0``
(i.e. ``h_R(cell) = 0``) with ``R`` a power of two, so they are nested
across rates (Fact 1(b)) and records can be re-classified at a doubled
rate from their cached hash values alone.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.errors import ParameterError
from repro.geometry.adjacency import collect_adjacent
from repro.geometry.distance import within_distance
from repro.geometry.grid import Cell, Grid
from repro.hashing.kwise import KWiseHash
from repro.hashing.sampling import SamplingHash
from repro.streams.point import StreamPoint

#: Default threshold constant kappa_0 (Line 10 of Algorithm 1).  The paper
#: only requires "a large enough constant": Lemma 2.5 needs kappa_0 >= 2
#: for the 1/m^2 failure bound; 4 doubles that exponent while keeping the
#: accept set (and hence pSpace) small.
DEFAULT_KAPPA0 = 4

#: Dimension up to which the conservative side alpha/sqrt(d) stays cheap
#: (|adj(p)| <= 25 at dim 2, exactly the paper's Section 2 setting; by
#: dim 4 the conservative neighbourhood already spans hundreds of cells).
_SMALL_DIM = 2


def default_grid_side(alpha: float, dim: int) -> float:
    """Grid side length used when the caller does not pick one.

    * ``dim <= 2``: ``alpha / sqrt(dim)`` - the cell diameter is at most
      ``alpha``, so Fact 1(a) holds for *any* well-separated dataset
      (separation ratio just above 2), matching Section 2's setting.
    * ``dim > 2``: ``alpha * dim`` - the Section 4 configuration.  Cells
      are large relative to ``alpha``, making ``adj(p)`` expected O(1)
      (Lemma 4.2); it assumes the stronger sparsity ``beta > dim**1.5 *
      alpha``, which the paper's own evaluation datasets satisfy by
      construction (their separation ratio is about ``dim**1.5``).

    Callers with small separation ratios in middling dimension should pass
    an explicit ``grid_side`` of about ``beta / sqrt(dim)`` instead.
    """
    if alpha <= 0:
        raise ParameterError(f"alpha must be positive, got {alpha}")
    if dim < 1:
        raise ParameterError(f"dim must be >= 1, got {dim}")
    if dim <= _SMALL_DIM:
        return alpha / math.sqrt(dim)
    return alpha * dim


@dataclass(frozen=True, slots=True)
class PointContext:
    """Per-arrival geometry shared across a hierarchy's levels.

    Attributes
    ----------
    cell:
        ``cell(p)`` coordinates.
    cell_hash:
        Base-hash value of ``cell(p)`` (sampling test: ``& (R-1) == 0``).
    adj_hashes:
        Base-hash values of every cell of ``adj(p)``, or ``None`` when not
        yet computed (they are only needed on the first-point path, so
        they are filled lazily).
    """

    cell: Cell
    cell_hash: int
    adj_hashes: tuple[int, ...] | None = None


@dataclass(frozen=True)
class SamplerConfig:
    """Geometry and hashing shared by one sampler instance.

    The sliding-window hierarchy creates many Algorithm 2 instances that
    *must* share the same grid and hash (sampling decisions have to be
    nested across levels); bundling them makes that sharing explicit.
    """

    alpha: float
    dim: int
    grid: Grid
    hash: SamplingHash

    @classmethod
    def create(
        cls,
        alpha: float,
        dim: int,
        *,
        seed: int | None = None,
        grid_side: float | None = None,
        kwise: int | None = None,
    ) -> "SamplerConfig":
        """Build a configuration with sensible defaults.

        Parameters
        ----------
        alpha:
            Group-diameter threshold (the user-chosen input of the paper).
        dim:
            Ambient dimension.
        seed:
            Seed for both the grid offset and the sampling hash.  ``None``
            draws fresh randomness.
        grid_side:
            Override for the grid side length (see :func:`default_grid_side`).
        kwise:
            When given, use a ``kwise``-wise independent polynomial hash
            (the theory-faithful choice) instead of the default splitmix64
            mixer.
        """
        if alpha <= 0:
            raise ParameterError(f"alpha must be positive, got {alpha}")
        if dim < 1:
            raise ParameterError(f"dim must be >= 1, got {dim}")
        rng = random.Random(seed)
        side = grid_side if grid_side is not None else default_grid_side(alpha, dim)
        grid = Grid(side=side, dim=dim, rng=rng)
        hash_seed = rng.randrange(2**63)
        if kwise is not None:
            sampling = SamplingHash(KWiseHash(k=kwise, seed=hash_seed))
        else:
            sampling = SamplingHash(seed=hash_seed)
        return cls(alpha=alpha, dim=dim, grid=grid, hash=sampling)

    def cell_hash(self, cell: Cell) -> int:
        """Base-hash value of a cell (before the ``mod R`` reduction)."""
        return self.hash.value(self.grid.cell_id(cell))

    def point_context(self, vector: Sequence[float]) -> PointContext:
        """The cheap part of an arrival's geometry (no adjacency yet)."""
        cell = self.grid.cell_of(vector)
        return PointContext(cell=cell, cell_hash=self.cell_hash(cell))

    def adj_hashes(self, vector: Sequence[float]) -> tuple[int, ...]:
        """Hash values of every cell of ``adj(vector)`` (DFS pruned)."""
        grid = self.grid
        value = self.hash.value
        cell_id = grid.cell_id
        return tuple(
            value(cell_id(cell))
            for cell in collect_adjacent(grid, vector, self.alpha)
        )

    def with_adj(self, vector: Sequence[float], ctx: PointContext) -> PointContext:
        """Return ``ctx`` with ``adj_hashes`` filled (computing if needed)."""
        if ctx.adj_hashes is not None:
            return ctx
        return PointContext(
            cell=ctx.cell,
            cell_hash=ctx.cell_hash,
            adj_hashes=self.adj_hashes(vector),
        )


@dataclass
class CandidateRecord:
    """Bookkeeping for one candidate group.

    Attributes
    ----------
    representative:
        The group's representative point (the decision point of the
        algorithms; first point in the infinite window, the Observation 1
        point in sliding windows).
    cell:
        The representative's grid cell.
    cell_hash:
        Base-hash value of that cell; the record is *accepted* at rate
        ``1/R`` iff ``cell_hash & (R - 1) == 0``.
    adj_hashes:
        Base-hash values of ``adj(representative)``, cached because they
        are re-examined on every rate change (resampling / Split) and
        double as the record's bucket keys in the store.
    accepted:
        True when the record is in the accept set, False for the reject
        set.
    last:
        The group's most recent point (the value side of the paper's
        key-value store ``A``; equals the representative in the infinite
        window).
    count:
        Number of points of the group observed (drives Section 2.3's
        reservoir sampling).
    member:
        A uniformly random member of the group so far (reservoir sample);
        only maintained when member tracking is enabled.
    """

    representative: StreamPoint
    cell: Cell
    cell_hash: int
    adj_hashes: tuple[int, ...]
    accepted: bool
    last: StreamPoint
    count: int = 1
    member: StreamPoint | None = None

    def space_words(self, *, track_members: bool) -> int:
        """Approximate memory footprint in machine words.

        Counts coordinates of the stored points plus one word per integer
        field, mirroring how the paper reports pSpace in words.
        """
        dim = len(self.representative.vector)
        words = dim + 2  # representative coordinates + index/time
        if self.last is not self.representative:
            words += dim + 2
        words += 3  # cell hash, accepted flag, count
        words += len(self.adj_hashes)
        if track_members and self.member is not None:
            words += dim + 2
        return words


class CandidateStore:
    """The accept/reject sets with hash-bucketed proximity lookup."""

    __slots__ = ("_config", "_records", "_buckets", "_accepted_count")

    def __init__(self, config: SamplerConfig) -> None:
        self._config = config
        self._records: dict[int, CandidateRecord] = {}
        # Bucket key: a hash value of some cell of adj(representative).
        self._buckets: dict[int, list[CandidateRecord]] = {}
        self._accepted_count = 0

    def __len__(self) -> int:
        return len(self._records)

    @property
    def accepted_count(self) -> int:
        """Size of the accept set ``|S_acc|``."""
        return self._accepted_count

    @property
    def rejected_count(self) -> int:
        """Size of the reject set ``|S_rej|``."""
        return len(self._records) - self._accepted_count

    def records(self) -> Iterator[CandidateRecord]:
        """Iterate all candidate records (accepted and rejected)."""
        return iter(list(self._records.values()))

    def get(self, representative_index: int) -> CandidateRecord | None:
        """Return the record keyed by its representative's arrival index."""
        return self._records.get(representative_index)

    def __contains__(self, record: CandidateRecord) -> bool:
        return self._records.get(record.representative.index) is record

    def accepted_records(self) -> list[CandidateRecord]:
        """The accept set's records."""
        return [r for r in self._records.values() if r.accepted]

    def rejected_records(self) -> list[CandidateRecord]:
        """The reject set's records."""
        return [r for r in self._records.values() if not r.accepted]

    def find_nearby(
        self, vector: Sequence[float], cell_hash: int
    ) -> CandidateRecord | None:
        """Return the record whose representative is within alpha, if any.

        ``cell_hash`` must be the hash value of ``cell(vector)``.  A
        matching representative ``u`` has ``cell(vector) in adj(u)``, and
        every record is registered under its ``adj`` hash values, so the
        single bucket of ``cell_hash`` suffices.
        """
        bucket = self._buckets.get(cell_hash)
        if not bucket:
            return None
        alpha = self._config.alpha
        for record in bucket:
            if within_distance(record.representative.vector, vector, alpha):
                return record
        return None

    def add(self, record: CandidateRecord) -> None:
        """Insert a new candidate record."""
        key = record.representative.index
        if key in self._records:
            raise ParameterError(
                f"representative with index {key} already stored"
            )
        self._records[key] = record
        buckets = self._buckets
        for value in set(record.adj_hashes):
            buckets.setdefault(value, []).append(record)
        if record.accepted:
            self._accepted_count += 1

    def remove(self, record: CandidateRecord) -> None:
        """Remove a candidate record."""
        key = record.representative.index
        del self._records[key]
        buckets = self._buckets
        for value in set(record.adj_hashes):
            bucket = buckets[value]
            bucket.remove(record)
            if not bucket:
                del buckets[value]
        if record.accepted:
            self._accepted_count -= 1

    def set_accepted(self, record: CandidateRecord, accepted: bool) -> None:
        """Flip a record between the accept and reject sets."""
        if record.accepted != accepted:
            record.accepted = accepted
            self._accepted_count += 1 if accepted else -1

    def resample(self, rate_denominator: int) -> None:
        """Re-derive every record's status at a new (coarser) rate.

        Implements the "update S_acc and S_rej according to the updated
        hash function" step (Line 12 of Algorithm 1): a record stays
        accepted if its own cell is still sampled, is rejected if some cell
        of ``adj(representative)`` is, and is dropped otherwise.
        """
        mask = rate_denominator - 1
        for record in self.records():
            if record.cell_hash & mask == 0:
                self.set_accepted(record, True)
            elif any(value & mask == 0 for value in record.adj_hashes):
                self.set_accepted(record, False)
            else:
                self.remove(record)

    def space_words(self, *, track_members: bool = False) -> int:
        """Total footprint of the store in words."""
        return sum(
            record.space_words(track_members=track_members)
            for record in self._records.values()
        )


def coerce_point(
    value: StreamPoint | Sequence[float], next_index: int
) -> StreamPoint:
    """Accept either a StreamPoint or raw coordinates.

    Raw coordinates receive the sampler's running arrival index (and a
    matching timestamp).
    """
    if isinstance(value, StreamPoint):
        return value
    return StreamPoint(tuple(float(x) for x in value), next_index)


@dataclass
class _ThresholdPolicy:
    """Computes the kappa_0 * log m accept-set threshold.

    When the caller announces the expected stream length the threshold is
    fixed up front (the paper's setting); otherwise it grows with the
    number of points seen, which only affects *when* the rate halves, not
    correctness.  A ``fixed`` capacity short-circuits the log-m rule - the
    Section 5 F0 estimator replaces the threshold with ``kappa_B / eps^2``.
    """

    kappa0: float
    expected_stream_length: int | None = None
    minimum: int = 4
    fixed: int | None = None
    _seen: int = field(default=0, init=False)

    def observe(self) -> None:
        """Record one arrival (drives the growing-m fallback)."""
        self._seen += 1

    def threshold(self) -> int:
        """Current accept-set capacity."""
        if self.fixed is not None:
            return max(self.minimum, self.fixed)
        m = (
            self.expected_stream_length
            if self.expected_stream_length is not None
            else max(self._seen, 16)
        )
        return max(self.minimum, math.ceil(self.kappa0 * math.log2(max(m, 2))))
