"""Robust heavy hitters: frequent *elements* under near-duplication.

The related work (Zhang, SPAA 2015) studies heavy hitters in the same
noisy data model, in the distributed setting; this module provides the
streaming counterpart as a natural companion to the samplers: find the
groups contributing more than a ``phi`` fraction of the stream, treating
near-duplicates as one element.

Algorithm: Misra-Gries / SpaceSaving over *group representatives*.  The
counter table is keyed by representatives; an arriving point increments
the counter of the group it belongs to (proximity probe via the same
cell-bucket trick the samplers use).  When the table overflows, the
classic SpaceSaving eviction replaces the minimum-count entry.  Standard
guarantee transfers: with ``k = ceil(1/epsilon)`` counters, every group
with true count > (epsilon * m) is reported, and reported counts
overestimate by at most m/k - with the Section 3 caveat that on general
(non-separated) data "group" means greedy-partition group.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.core.base import (
    DEFAULT_BATCH_SIZE,
    SamplerConfig,
    StreamSampler,
    _CELL_MEMO_LIMIT,
    coerce_point,
    chunked,
)
from repro.core.chunk_geometry import (
    ChunkGeometry,
    compute_chunk_geometry,
    materialize_chunk,
)
from repro.errors import ParameterError
from repro.streams.point import StreamPoint


@dataclass
class _Counter:
    representative: StreamPoint
    cell_hash: int
    adj_hashes: tuple[int, ...]
    count: int
    error: int  # SpaceSaving overestimation bound carried by this entry


@dataclass(frozen=True, slots=True)
class HeavyHitter:
    """One reported heavy group.

    Attributes
    ----------
    representative:
        The group's first tracked point.
    count:
        Estimated number of stream points in the group (overestimate by
        at most ``error``).
    error:
        Maximum overestimation inherited from SpaceSaving evictions.
    """

    representative: StreamPoint
    count: int
    error: int

    @property
    def guaranteed_count(self) -> int:
        """Lower bound on the group's true frequency."""
        return self.count - self.error


class RobustHeavyHitters(StreamSampler):
    """SpaceSaving over near-duplicate groups.

    Parameters
    ----------
    alpha, dim:
        Noisy data model geometry.
    epsilon:
        Frequency resolution: counts are accurate to ``epsilon * m`` using
        ``ceil(1/epsilon)`` counters.
    seed:
        Seed for the grid (proximity bucketing only - no subsampling here).
    phi:
        Default report threshold used by the protocol :meth:`query` when
        none is passed explicitly.

    Examples
    --------
    >>> hh = RobustHeavyHitters(0.5, 1, epsilon=0.25, seed=0)
    >>> for v in [(0.0,), (0.1,), (0.05,), (9.0,)]:
    ...     hh.insert(v)
    >>> top = hh.heavy_hitters(phi=0.5)
    >>> len(top), top[0].count
    (1, 3)
    """

    #: Registry key (see :mod:`repro.api.registry`).
    summary_key = "heavy-hitters"

    def __init__(
        self,
        alpha: float,
        dim: int,
        *,
        epsilon: float = 0.01,
        seed: int | None = None,
        phi: float = 0.05,
        config: SamplerConfig | None = None,
    ) -> None:
        if not 0 < epsilon <= 1:
            raise ParameterError(f"epsilon must be in (0, 1], got {epsilon}")
        if not 0 < phi <= 1:
            raise ParameterError(f"phi must be in (0, 1], got {phi}")
        self._config = config if config is not None else SamplerConfig.create(
            alpha, dim, seed=seed
        )
        self._capacity = max(1, int(1.0 / epsilon + 0.5))
        self._default_phi = phi
        self._counters: dict[int, _Counter] = {}
        self._buckets: dict[int, list[int]] = {}
        self._count = 0

    @property
    def capacity(self) -> int:
        """Maximum number of simultaneously tracked groups."""
        return self._capacity

    @property
    def points_seen(self) -> int:
        """Stream length so far."""
        return self._count

    @property
    def num_tracked(self) -> int:
        """Currently tracked groups."""
        return len(self._counters)

    def _find(self, vector, cell_hash: int) -> _Counter | None:
        from repro.geometry.distance import within_distance

        alpha = self._config.alpha
        for key in self._buckets.get(cell_hash, ()):
            counter = self._counters[key]
            if within_distance(counter.representative.vector, vector, alpha):
                return counter
        return None

    def _attach(self, key: int, counter: _Counter) -> None:
        self._counters[key] = counter
        for value in set(counter.adj_hashes):
            self._buckets.setdefault(value, []).append(key)

    def _detach(self, key: int) -> _Counter:
        counter = self._counters.pop(key)
        for value in set(counter.adj_hashes):
            bucket = self._buckets[value]
            bucket.remove(key)
            if not bucket:
                del self._buckets[value]
        return counter

    def _admit(
        self,
        p: StreamPoint,
        cell_hash: int,
        *,
        adj_hashes: tuple[int, ...] | None = None,
    ) -> None:
        """Install a new group's counter (SpaceSaving admission).

        ``adj_hashes`` accepts the precomputed chunk-geometry tuple
        (value-identical to ``config.adj_hashes(p.vector)``).
        """
        if adj_hashes is None:
            adj_hashes = self._config.adj_hashes(p.vector)
        if len(self._counters) < self._capacity:
            self._attach(
                p.index,
                _Counter(
                    representative=p,
                    cell_hash=cell_hash,
                    adj_hashes=adj_hashes,
                    count=1,
                    error=0,
                ),
            )
            return

        # SpaceSaving eviction: the new group inherits the minimum count.
        victim_key = min(
            self._counters, key=lambda k: self._counters[k].count
        )
        victim = self._detach(victim_key)
        self._attach(
            p.index,
            _Counter(
                representative=p,
                cell_hash=cell_hash,
                adj_hashes=adj_hashes,
                count=victim.count + 1,
                error=victim.count,
            ),
        )

    def insert(self, point: StreamPoint | Sequence[float]) -> None:
        """Count one arriving point into its group."""
        p = coerce_point(point, self._count)
        if p.dim != self._config.dim:
            raise ParameterError(
                f"point has dimension {p.dim}, expected {self._config.dim}"
            )
        self._count += 1
        ctx = self._config.point_context(p.vector)
        counter = self._find(p.vector, ctx.cell_hash)
        if counter is not None:
            counter.count += 1
            return
        self._admit(p, ctx.cell_hash)

    def process_many(
        self,
        points: Iterable[StreamPoint | Sequence[float]],
        *,
        geometry: "ChunkGeometry | None" = None,
    ) -> int:
        """Batched :meth:`insert` with the counting fast path inlined.

        Cells, memo-aware cell hashes and (on admission) the ``adj(p)``
        hash tuples come from one vectorised
        :class:`~repro.core.chunk_geometry.ChunkGeometry` precompute per
        chunk (``geometry`` accepts one computed upstream by the
        pipeline); small chunks take the scalar branch.
        """
        if geometry is None and not isinstance(points, (list, tuple)):
            # A non-materialised iterable is streamed in bounded chunks:
            # building one ChunkGeometry over an arbitrary stream would
            # regress the O(chunk)-memory behaviour of the batch engine
            # (chunk boundaries are state-invisible by the layout-
            # invariance contract, so this is purely a memory bound).
            streamed = 0
            for chunk in chunked(points, DEFAULT_BATCH_SIZE):
                streamed += self.process_many(chunk)
            return streamed

        config = self._config
        dim = config.dim
        grid = config.grid
        side = grid.side
        offset = grid.offset
        memo = config.cell_hash_memo
        memo_get = memo.get
        cell_id = grid.cell_id
        hash_value = config.hash.value
        counters = self._counters
        buckets_get = self._buckets.get
        alpha_sq = config.alpha * config.alpha
        count = self._count

        pts, vectors, error, _offender = materialize_chunk(
            points,
            dim,
            count,
            lambda actual: ParameterError(
                f"point has dimension {actual}, expected {dim}"
            ),
            geometry=geometry,
        )
        if geometry is not None and not geometry.valid_for(config, vectors):
            geometry = None
        geom = (
            geometry
            if geometry is not None
            else compute_chunk_geometry(config, vectors)
        )
        if geom is not None:
            geom_n = min(geom.n, len(pts))
            hashes_list = geom.cell_hashes
        else:
            geom_n = 0
            hashes_list = ()
        processed = 0
        try:
            for i in range(len(pts)):
                p = pts[i]
                vector = vectors[i]
                count += 1
                processed += 1
                if i < geom_n:
                    cell_hash = hashes_list[i]
                else:
                    cell = tuple(
                        int((x - o) // side) for x, o in zip(vector, offset)
                    )
                    cell_hash = memo_get(cell)
                    if cell_hash is None:
                        cell_hash = hash_value(cell_id(cell))
                        if len(memo) >= _CELL_MEMO_LIMIT:
                            memo.clear()
                        memo[cell] = cell_hash
                found = None
                for key in buckets_get(cell_hash, ()):
                    counter = counters[key]
                    acc = 0.0
                    for a, b in zip(counter.representative.vector, vector):
                        diff = a - b
                        acc += diff * diff
                        if acc > alpha_sq:
                            break
                    else:
                        found = counter
                        break
                if found is not None:
                    found.count += 1
                    continue
                self._admit(
                    p,
                    cell_hash,
                    adj_hashes=geom.adj_hashes(i) if i < geom_n else None,
                )
        finally:
            self._count = count
        if error is not None:
            raise error
        return processed

    def heavy_hitters(self, phi: float) -> list[HeavyHitter]:
        """Groups with estimated frequency above ``phi * m``, sorted.

        Every group whose true frequency exceeds ``phi * m`` appears
        (SpaceSaving guarantee, given ``phi >= epsilon``); reported counts
        overestimate by at most each entry's ``error``.
        """
        if not 0 < phi <= 1:
            raise ParameterError(f"phi must be in (0, 1], got {phi}")
        threshold = phi * self._count
        hits = [
            HeavyHitter(c.representative, c.count, c.error)
            for c in self._counters.values()
            if c.count > threshold
        ]
        hits.sort(key=lambda h: h.count, reverse=True)
        return hits

    def estimated_count(self, vector: Sequence[float]) -> int:
        """Estimated frequency of the group containing ``vector`` (0 when
        untracked)."""
        cell_hash = self._config.point_context(tuple(vector)).cell_hash
        counter = self._find(tuple(float(x) for x in vector), cell_hash)
        return counter.count if counter is not None else 0

    def space_words(self) -> int:
        """Footprint in words."""
        words = 3
        dim = self._config.dim
        for counter in self._counters.values():
            words += dim + 4 + len(counter.adj_hashes)
        return words

    # ------------------------------------------------------------------ #
    # Summary protocol (see repro.api.protocol)
    # ------------------------------------------------------------------ #

    def query(
        self, rng=None, *, phi: float | None = None
    ) -> list[HeavyHitter]:
        """Protocol query: the heavy hitters above ``phi`` (rng unused).

        ``phi`` defaults to the instance's configured threshold.
        """
        return self.heavy_hitters(self._default_phi if phi is None else phi)

    def merge(self, *others: "RobustHeavyHitters") -> "RobustHeavyHitters":
        """SpaceSaving merge over groups (Agarwal et al. style).

        Counters of the same group (proximity match under the shared
        grid/hash) are pooled - counts and error bounds both add, so
        pooled counts remain overestimates of the group's pooled true
        frequency.  If the union overflows the capacity, the
        smallest-count counters are dropped (they are precisely the
        candidates that cannot be ``phi``-heavy in the union for any
        ``phi >= epsilon``).  A group tracked by only some inputs may
        additionally be *under*-counted by the untracking inputs' minimum
        counter values - the usual mergeable-summaries caveat.
        """
        from repro.api.protocol import (
            check_compatible_configs,
            check_merge_peers,
        )

        check_merge_peers(self, others)
        check_compatible_configs(self, others)
        summaries = (self, *others)
        for other in others:
            if other._capacity != self._capacity:
                raise ParameterError(
                    "cannot merge heavy-hitter summaries with different "
                    "capacities (epsilon)"
                )
        merged = RobustHeavyHitters(
            self._config.alpha,
            self._config.dim,
            epsilon=1.0 / self._capacity,
            phi=self._default_phi,
            config=self._config,
        )
        merged._capacity = self._capacity
        # Fresh negative keys: input-local keys overlap across inputs, and
        # non-negative keys would collide with the arrival indices of
        # points counted into the merged summary later (_admit keys new
        # counters by p.index, which is always >= 0).
        next_key = -1
        for summary in summaries:
            merged._count += summary._count
            for counter in summary._counters.values():
                existing = merged._find(
                    counter.representative.vector, counter.cell_hash
                )
                if existing is not None:
                    existing.count += counter.count
                    existing.error += counter.error
                    continue
                merged._attach(
                    next_key,
                    _Counter(
                        representative=counter.representative,
                        cell_hash=counter.cell_hash,
                        adj_hashes=counter.adj_hashes,
                        count=counter.count,
                        error=counter.error,
                    ),
                )
                next_key -= 1
        while len(merged._counters) > merged._capacity:
            victim = min(
                merged._counters, key=lambda k: merged._counters[k].count
            )
            merged._detach(victim)
        return merged

    def to_state(self) -> dict:
        """Serialise to a JSON-compatible dict (protocol checkpoint)."""
        from repro.core import serialize

        return {
            "config": serialize.config_to_state(self._config),
            "capacity": self._capacity,
            "phi": self._default_phi,
            "points_seen": self._count,
            "counters": [
                {
                    "key": key,
                    "rep": serialize.point_to_state(counter.representative),
                    "cell_hash": counter.cell_hash,
                    "adj_hashes": list(counter.adj_hashes),
                    "count": counter.count,
                    "error": counter.error,
                }
                for key, counter in sorted(self._counters.items())
            ],
        }

    @classmethod
    def from_state(cls, state: dict) -> "RobustHeavyHitters":
        """Restore a heavy-hitter summary from :meth:`to_state` output."""
        from repro.core import serialize

        config = serialize.config_from_state(state["config"])
        summary = cls(
            config.alpha,
            config.dim,
            epsilon=1.0 / state["capacity"],
            phi=state["phi"],
            config=config,
        )
        summary._capacity = state["capacity"]
        summary._count = state["points_seen"]
        for counter_state in state["counters"]:
            summary._attach(
                counter_state["key"],
                _Counter(
                    representative=serialize.point_from_state(
                        counter_state["rep"]
                    ),
                    cell_hash=counter_state["cell_hash"],
                    adj_hashes=tuple(counter_state["adj_hashes"]),
                    count=counter_state["count"],
                    error=counter_state["error"],
                ),
            )
        return summary
