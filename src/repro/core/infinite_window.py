"""Algorithm 1: robust l0-sampling in the infinite window (Section 2.1).

The sampler maintains, for each *candidate group* (a group whose first
point landed in or next to a sampled grid cell), the group's first point as
its representative; representatives whose own cell is sampled form the
accept set ``S_acc``, the others the reject set ``S_rej``.  When the accept
set outgrows ``kappa_0 * log m`` the cell sample rate is halved in place
(``R <- 2R``), which is consistent because sampling decisions are nested
across rates (Fact 1(b)).  A query returns a uniformly random point of
``S_acc``, which Theorem 2.4 shows is a robust l0-sample with probability
``1 - 1/m`` using O(log m) words.

Section 2.3 extensions implemented here:

* ``sample_member`` - return a uniformly random *member* of the sampled
  group rather than its fixed representative, via reservoir counters.
* ``estimate_f0`` - ``|S_acc| * R``, the Section 5 estimator (see
  :mod:`repro.core.f0_infinite` for the full median-of-copies wrapper).
"""

from __future__ import annotations

import random
from typing import Any, Iterable, Sequence

from repro.core.base import (
    DEFAULT_BATCH_SIZE,
    DEFAULT_KAPPA0,
    CandidateRecord,
    CandidateStore,
    SamplerConfig,
    StreamSampler,
    _CELL_MEMO_LIMIT,
    _SMALL_DIM,
    _ThresholdPolicy,
    coerce_point,
    chunked,
)
from repro.core.chunk_geometry import (
    ChunkGeometry,
    compute_chunk_geometry,
    materialize_chunk,
)
from repro.errors import EmptySampleError, ParameterError
from repro.streams.point import StreamPoint


class RobustL0SamplerIW(StreamSampler):
    """Robust distinct sampler for the standard streaming model.

    Parameters
    ----------
    alpha:
        Distance threshold: points within ``alpha`` are near-duplicates.
    dim:
        Dimensionality of the points.
    kappa0:
        The constant of the ``kappa_0 * log m`` accept-set threshold.
    expected_stream_length:
        Optional a-priori bound on the stream length ``m``; fixes the
        threshold up front as in the paper.  When omitted the threshold
        grows with the points seen.
    seed:
        Seed for the grid offset and the sampling hash.
    grid_side:
        Override the grid side length (see
        :func:`repro.core.base.default_grid_side` for the default policy).
    kwise:
        Use a k-wise independent polynomial hash instead of the default
        mixer (theory-faithful mode).
    track_members:
        Maintain reservoir samples so :meth:`sample_member` can return a
        uniformly random group member (Section 2.3).
    accept_capacity:
        Fixed accept-set capacity overriding the ``kappa_0 * log m`` rule;
        Section 5's F0 estimator sets this to ``kappa_B / eps^2``.

    Examples
    --------
    >>> sampler = RobustL0SamplerIW(alpha=0.5, dim=2, seed=7)
    >>> for v in [(0.0, 0.0), (0.1, 0.0), (10.0, 10.0)]:
    ...     sampler.insert(v)
    >>> sampler.num_candidate_groups >= 1
    True
    >>> point = sampler.sample(rng=random.Random(1))
    >>> point.vector in {(0.0, 0.0), (10.0, 10.0)}
    True
    """

    #: Registry key (see :mod:`repro.api.registry`).
    summary_key = "l0-infinite"

    def __init__(
        self,
        alpha: float,
        dim: int,
        *,
        kappa0: float = DEFAULT_KAPPA0,
        expected_stream_length: int | None = None,
        seed: int | None = None,
        grid_side: float | None = None,
        kwise: int | None = None,
        track_members: bool = False,
        config: SamplerConfig | None = None,
        accept_capacity: int | None = None,
    ) -> None:
        if kappa0 <= 0:
            raise ParameterError(f"kappa0 must be positive, got {kappa0}")
        self._config = config if config is not None else SamplerConfig.create(
            alpha, dim, seed=seed, grid_side=grid_side, kwise=kwise
        )
        if self._config.dim != dim:
            raise ParameterError("config dimension does not match dim")
        self._store = CandidateStore(self._config)
        self._policy = _ThresholdPolicy(
            kappa0, expected_stream_length, fixed=accept_capacity
        )
        self._rate_denominator = 1
        self._track_members = track_members
        self._count = 0
        self._member_rng = random.Random(
            None if seed is None else seed ^ 0x5EED
        )
        self._peak_words = 0
        # Batch-path ignore filter: cell -> lower corners of the cells of
        # its conservative neighbourhood sampled at the memoised mask.  A
        # pure cache (decisions are re-derived by the exact path); it is
        # rebuilt whenever the rate changes.
        self._sampled_nearby: dict = {}
        self._sampled_nearby_mask = -1

    # ------------------------------------------------------------------ #
    # properties
    # ------------------------------------------------------------------ #

    @property
    def alpha(self) -> float:
        """The near-duplicate distance threshold."""
        return self._config.alpha

    @property
    def dim(self) -> int:
        """Point dimensionality."""
        return self._config.dim

    @property
    def config(self) -> SamplerConfig:
        """Grid/hash bundle (shared with derived samplers)."""
        return self._config

    @property
    def rate_denominator(self) -> int:
        """Current ``R``: cells are sampled with probability ``1/R``."""
        return self._rate_denominator

    @property
    def points_seen(self) -> int:
        """Number of stream points inserted so far."""
        return self._count

    @property
    def accept_size(self) -> int:
        """``|S_acc|``."""
        return self._store.accepted_count

    @property
    def reject_size(self) -> int:
        """``|S_rej|``."""
        return self._store.rejected_count

    @property
    def num_candidate_groups(self) -> int:
        """Number of tracked (candidate) groups."""
        return len(self._store)

    @property
    def peak_space_words(self) -> int:
        """Largest footprint observed (the paper's pSpace measure)."""
        return self._peak_words

    # ------------------------------------------------------------------ #
    # streaming
    # ------------------------------------------------------------------ #

    def insert(self, point: StreamPoint | Sequence[float]) -> None:
        """Process one arriving stream point (the body of Algorithm 1)."""
        p = coerce_point(point, self._count)
        if p.dim != self._config.dim:
            raise ParameterError(
                f"point has dimension {p.dim}, sampler expects {self._config.dim}"
            )
        self._count += 1
        self._policy.observe()

        config = self._config
        ctx = config.point_context(p.vector)
        existing = self._store.find_nearby(p.vector, ctx.cell_hash)
        if existing is not None:
            # Line 4: p is not the first point of its candidate group.
            existing.count += 1
            self._store.relink_last(existing, p)
            if self._track_members and (
                self._member_rng.random() < 1.0 / existing.count
            ):
                existing.member = p
            return

        adj_hashes = config.adj_hashes(p.vector, cell=ctx.cell)
        mask = self._rate_denominator - 1
        if ctx.cell_hash & mask == 0:
            accepted = True
        elif any(value & mask == 0 for value in adj_hashes):
            accepted = False
        else:
            return  # the group is ignored at the current rate

        record = CandidateRecord(
            representative=p,
            cell=ctx.cell,
            cell_hash=ctx.cell_hash,
            adj_hashes=adj_hashes,
            accepted=accepted,
            last=p,
            member=p if self._track_members else None,
        )
        self._store.add(record)

        while self._store.accepted_count > self._policy.threshold():
            self._rate_denominator *= 2
            self._store.resample(self._rate_denominator)

        # Peak tracking samples the footprint on the new-record path (the
        # paper's pSpace is driven by the record set; the O(1) incremental
        # counters make the probe itself free).
        words = self.space_words()
        if words > self._peak_words:
            self._peak_words = words

    def process_many(
        self,
        points: Iterable[StreamPoint | Sequence[float]],
        *,
        geometry: "ChunkGeometry | None" = None,
    ) -> int:
        """Batched :meth:`insert`: state-equivalent, several times faster.

        The chunk's geometry - cells, memo-aware cell hashes, the
        high-dimensional ignore probe, adjacency hash tuples - is
        computed once per chunk through the vectorised kernel layer
        (:class:`~repro.core.chunk_geometry.ChunkGeometry`; ``geometry``
        accepts one precomputed by the pipeline), so the per-point loop
        reduces to the sequential state machine: the bucket probe, the
        distance test and the rate bookkeeping.  New candidate groups
        run the same code the per-point path runs (adjacency hashing,
        rate halving, peak tracking); chunks too small to vectorise (and
        points whose coordinates the int64 kernels cannot carry) take
        the inlined scalar branch, which is the pre-kernel hot path.
        See :class:`~repro.core.base.StreamSampler` for the equivalence
        contract this method honours.
        """
        if geometry is None and not isinstance(points, (list, tuple)):
            # A non-materialised iterable is streamed in bounded chunks:
            # building one ChunkGeometry over an arbitrary stream would
            # regress the O(chunk)-memory behaviour of the batch engine
            # (chunk boundaries are state-invisible by the layout-
            # invariance contract, so this is purely a memory bound).
            streamed = 0
            for chunk in chunked(points, DEFAULT_BATCH_SIZE):
                streamed += self.process_many(chunk)
            return streamed

        config = self._config
        dim = config.dim
        grid = config.grid
        side = grid.side
        offset = grid.offset
        memo = config.cell_hash_memo
        memo_get = memo.get
        cell_id = grid.cell_id
        hash_value = config.hash.value
        store = self._store
        buckets_get = store._buckets.get
        alpha_sq = config.alpha * config.alpha
        # Inclusive threshold with 1-ulp headroom: boundary points must
        # reach the exact path, never be dropped by the filter.
        alpha_eps = alpha_sq * (1.0 + 1e-9)
        track = self._track_members
        member_random = self._member_rng.random
        policy = self._policy
        count = self._count

        pts, vectors, error, _offender = materialize_chunk(
            points,
            dim,
            count,
            lambda actual: ParameterError(
                f"point has dimension {actual}, sampler expects {dim}"
            ),
            geometry=geometry,
        )
        if geometry is not None and not geometry.valid_for(config, vectors):
            geometry = None
        geom = (
            geometry
            if geometry is not None
            else compute_chunk_geometry(config, vectors)
        )
        if geom is not None:
            geom_n = min(geom.n, len(pts))
            hashes_list = geom.cell_hashes
            cell_at = geom.cell_at
        else:
            geom_n = 0
            hashes_list = ()
            cell_at = None

        processed = 0
        pending = 0  # arrivals not yet flushed into the threshold policy
        mask = self._rate_denominator - 1
        if self._sampled_nearby_mask != mask:
            self._sampled_nearby = {}
            self._sampled_nearby_mask = mask
        nearby_memo = self._sampled_nearby
        nearby_get = nearby_memo.get
        conservative_neighborhood = config.conservative_neighborhood
        # The conservative-neighbourhood ignore filter pays off only
        # where the neighbourhood is small (<= 25 cells at dim <= 2, the
        # paper's Section 2 setting) - it is exponential in dim.  High
        # dimensions use the vectorised sampled-cell probe instead: a
        # per-chunk conservative verdict whose False entries certainly
        # have no sampled cell in adj(p) beyond their own (verdicts stay
        # valid across mid-chunk rate doublings because sampling
        # decisions nest).  Without chunk geometry (tiny chunks, scalar
        # mode) high dimensions go straight to the exact path, exactly
        # as insert() does.
        use_ignore_filter = dim <= _SMALL_DIM
        ignorable = None
        if geom_n and not use_ignore_filter:
            ignorable = geom.high_dim_ignorable(mask)
        # Low-dimensional twin: the exact vectorised adj(p) probe
        # (fetched lazily on the first untracked point, so chunks of
        # pure duplicates never pay for it).  Unlike the conservative
        # corner filter it is exact in both directions: True entries
        # are certainly ignored, False entries certainly found or join
        # a sampled neighbourhood and skip the corner test entirely.
        low_ignorable = None
        low_probe_ok = bool(geom_n) and use_ignore_filter
        if dim == 1:
            off0 = offset[0]
            off1 = 0.0
        elif dim == 2:
            off0, off1 = offset
        else:
            off0 = off1 = 0.0
        try:
            for i in range(len(pts)):
                p = pts[i]
                vector = vectors[i]
                count += 1
                processed += 1
                pending += 1

                if i < geom_n:
                    # Cell tuples are built lazily (cell_at) - only the
                    # ignore filter and candidate foundings need them.
                    cell = None
                    cell_hash = hashes_list[i]
                else:
                    if dim == 2:
                        cell = (
                            int((vector[0] - off0) // side),
                            int((vector[1] - off1) // side),
                        )
                    elif dim == 1:
                        cell = (int((vector[0] - off0) // side),)
                    else:
                        cell = tuple(
                            int((x - o) // side)
                            for x, o in zip(vector, offset)
                        )
                    cell_hash = memo_get(cell)
                    if cell_hash is None:
                        cell_hash = hash_value(cell_id(cell))
                        if len(memo) >= _CELL_MEMO_LIMIT:
                            memo.clear()
                        memo[cell] = cell_hash

                bucket = buckets_get(cell_hash)
                if bucket:
                    existing = None
                    for record in bucket:
                        acc = 0.0
                        for a, b in zip(record.representative.vector, vector):
                            diff = a - b
                            acc += diff * diff
                            if acc > alpha_sq:
                                break
                        else:
                            existing = record
                            break
                    if existing is not None:
                        existing.count += 1
                        # Inline relink_last: the footprint only moves on
                        # the (once per record) rep -> non-rep transition.
                        if p is not existing.representative:
                            if existing.last is existing.representative:
                                store._base_words += dim + 2
                                store._slot_words[existing.slot] += dim + 2
                        elif existing.last is not existing.representative:
                            store._base_words -= dim + 2
                            store._slot_words[existing.slot] -= dim + 2
                        existing.last = p
                        if track and member_random() < 1.0 / existing.count:
                            existing.member = p
                        continue

                # Untracked group.  Ignore filter: unless the point's own
                # cell is sampled, it can only become tracked by lying
                # within alpha of a sampled cell - and the sampled cells
                # of its conservative neighbourhood are few and memoised.
                # The exact path below stays authoritative for the rest.
                if use_ignore_filter and cell_hash & mask != 0:
                    if low_probe_ok and i < geom_n:
                        if low_ignorable is None:
                            low_ignorable = geom.low_dim_ignorable(mask)
                            low_probe_ok = low_ignorable is not None
                        if low_probe_ok:
                            if low_ignorable[i]:
                                # Exact verdict: no sampled cell in
                                # adj(p), and cell(p) is unsampled -
                                # insert() would ignore the point.
                                continue
                            # A sampled adjacency cell certainly
                            # exists: skip the corner filter, the
                            # founding path below decides.
                            low_verdict = True
                        else:
                            low_verdict = False
                    else:
                        low_verdict = False
                    if not low_verdict:
                        if cell is None:
                            cell = cell_at(i)
                        corners = nearby_get(cell)
                        if corners is None:
                            corners = tuple(
                                corner
                                for corner, value in (
                                    conservative_neighborhood(cell)
                                )
                                if value & mask == 0
                            )
                            if len(nearby_memo) >= _CELL_MEMO_LIMIT:
                                nearby_memo.clear()
                            nearby_memo[cell] = corners
                        for corner in corners:
                            acc = 0.0
                            for x, low in zip(vector, corner):
                                if x < low:
                                    diff = low - x
                                else:
                                    diff = x - low - side
                                    if diff <= 0.0:
                                        continue
                                acc += diff * diff
                                if acc > alpha_eps:
                                    break
                            else:
                                break  # near a sampled cell: exact path
                        else:
                            continue  # certainly ignored at current rate
                elif (
                    ignorable is not None
                    and i < geom_n
                    and cell_hash & mask != 0
                    and ignorable[i]
                ):
                    # High-dimensional ignore filter: the sampled-cell
                    # probe proved no sampled cell exists in adj(p)
                    # beyond cell(p), and cell(p) is unsampled - insert()
                    # would ignore the point at the current rate.
                    continue

                # First point of a candidate group: same code as insert().
                if i < geom_n:
                    if cell is None:
                        cell = cell_at(i)
                    adj_hashes = geom.adj_hashes(i)
                else:
                    adj_hashes = config.adj_hashes(vector, cell=cell)
                if cell_hash & mask == 0:
                    accepted = True
                elif any(value & mask == 0 for value in adj_hashes):
                    accepted = False
                else:
                    continue

                record = CandidateRecord(
                    representative=p,
                    cell=cell,
                    cell_hash=cell_hash,
                    adj_hashes=adj_hashes,
                    accepted=accepted,
                    last=p,
                    member=p if track else None,
                )
                store.add(record)

                policy.observe_many(pending)
                pending = 0
                while store.accepted_count > policy.threshold():
                    self._rate_denominator *= 2
                    store.resample(self._rate_denominator)
                    mask = self._rate_denominator - 1
                    nearby_memo.clear()
                    self._sampled_nearby_mask = mask

                self._count = count
                words = self.space_words()
                if words > self._peak_words:
                    self._peak_words = words
        finally:
            self._count = count
            policy.observe_many(pending)
        if error is not None:
            raise error
        return processed

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def sample(self, rng: random.Random | None = None) -> StreamPoint:
        """Return a robust l0-sample: a random representative of ``S_acc``.

        Raises
        ------
        EmptySampleError
            If no group is currently accepted (empty stream, or the
            probability-``1/m`` failure event of Lemma 2.5).
        """
        accepted = self._store.accepted_records()
        if not accepted:
            raise EmptySampleError(
                "accept set is empty; no robust sample available"
            )
        rng = rng if rng is not None else random.Random()
        return rng.choice(accepted).representative

    def sample_member(self, rng: random.Random | None = None) -> StreamPoint:
        """Return a uniformly random *member* of a random group (S 2.3).

        Requires ``track_members=True``.
        """
        if not self._track_members:
            raise ParameterError(
                "sampler was built with track_members=False"
            )
        accepted = self._store.accepted_records()
        if not accepted:
            raise EmptySampleError(
                "accept set is empty; no robust sample available"
            )
        rng = rng if rng is not None else random.Random()
        record = rng.choice(accepted)
        assert record.member is not None
        return record.member

    def accepted_representatives(self) -> list[StreamPoint]:
        """The representatives of all accepted groups (for F0 estimation)."""
        return [r.representative for r in self._store.accepted_records()]

    def rejected_representatives(self) -> list[StreamPoint]:
        """The representatives of all rejected groups."""
        return [r.representative for r in self._store.rejected_records()]

    def estimate_f0(self) -> float:
        """Point estimate ``|S_acc| * R`` of the number of groups (S 5)."""
        return float(self._store.accepted_count * self._rate_denominator)

    def space_words(self) -> int:
        """Current memory footprint in words (records + scalars) - O(1)."""
        return self._store.space_words(track_members=self._track_members) + 4

    def recount_space_words(self) -> int:
        """Debug oracle: recompute :meth:`space_words` from scratch."""
        return (
            self._store.recount_space_words(
                track_members=self._track_members
            )
            + 4
        )

    # ------------------------------------------------------------------ #
    # Summary protocol (see repro.api.protocol)
    # ------------------------------------------------------------------ #

    def query(self, rng: random.Random | None = None) -> StreamPoint:
        """Protocol query: one robust l0-sample (see :meth:`sample`)."""
        return self.sample(rng)

    def merge(self, *others: "RobustL0SamplerIW") -> "RobustL0SamplerIW":
        """Combine samplers sharing one grid/hash into a union sampler.

        This is the coordinator's merge protocol (consistency argument in
        :mod:`repro.distributed.coordinator`): every input is first raised
        to the maximum rate - decisions nest, so resampling only drops or
        demotes records - then groups observed by several inputs are
        deduplicated by proximity, keeping the earliest representative and
        pooling the counts.  Representatives are re-keyed injectively
        (input-local arrival indices overlap across inputs).

        Returns a NEW :class:`RobustL0SamplerIW`; the inputs are not
        modified.  The merged sampler remains a live summary: re-keyed
        representatives receive fresh *negative* indices (marking them as
        synthetic union representatives), so they can never collide with
        the arrival indices of points ingested after the merge.  Member
        tracking does not survive merging (a uniform member of a union
        group cannot be derived from two independent reservoirs), so
        ``track_members=True`` inputs are rejected.
        """
        from repro.api.protocol import (
            check_compatible_configs,
            check_merge_peers,
            merge_unsupported,
        )

        check_merge_peers(self, others)
        check_compatible_configs(self, others)
        samplers: tuple[RobustL0SamplerIW, ...] = (self, *others)
        if any(s._track_members for s in samplers):
            raise merge_unsupported(
                self, "member reservoirs cannot be combined exactly"
            )

        target_rate = max(s.rate_denominator for s in samplers)
        policy = self._policy
        merged = RobustL0SamplerIW(
            self._config.alpha,
            self._config.dim,
            kappa0=policy.kappa0,
            expected_stream_length=policy.expected_stream_length,
            accept_capacity=policy.fixed,
            config=self._config,
        )
        merged._rate_denominator = target_rate
        store = merged._store
        mask = target_rate - 1
        total_seen = 0
        # Re-keyed representatives get fresh negative indices: input-local
        # arrival indices overlap across inputs (so they cannot be kept),
        # and non-negative keys would eventually collide with the arrival
        # indices of points inserted into the merged sampler later.
        next_key = -1
        for sampler in samplers:
            total_seen += sampler.points_seen
            sampler_records = sorted(
                sampler._store.records(),
                key=lambda r: r.representative.index,
            )
            for record in sampler_records:
                if record.cell_hash & mask == 0:
                    accepted = True
                elif any(v & mask == 0 for v in record.adj_hashes):
                    accepted = False
                else:
                    continue
                existing = store.find_nearby(
                    record.representative.vector, record.cell_hash
                )
                if existing is not None:
                    # Same group seen by several inputs: keep the earlier
                    # representative, pool the counts.
                    existing.count += record.count
                    continue
                rep = record.representative
                global_rep = StreamPoint(rep.vector, next_key, rep.time)
                next_key -= 1
                store.add(
                    CandidateRecord(
                        representative=global_rep,
                        cell=record.cell,
                        cell_hash=record.cell_hash,
                        adj_hashes=record.adj_hashes,
                        accepted=accepted,
                        last=record.last,
                        count=record.count,
                    )
                )
        merged._count = total_seen
        merged._policy.observe_many(total_seen)
        while store.accepted_count > merged._policy.threshold():
            merged._rate_denominator *= 2
            store.resample(merged._rate_denominator)
        return merged

    def to_state(self) -> dict[str, Any]:
        """Serialise to a JSON-compatible dict (protocol checkpoint)."""
        from repro.core import serialize

        return {
            "config": serialize.config_to_state(self._config),
            "rate_denominator": self._rate_denominator,
            "points_seen": self._count,
            "peak_space_words": self._peak_words,
            "track_members": self._track_members,
            "member_rng": serialize.rng_to_state(self._member_rng),
            "policy": serialize.policy_to_state(self._policy),
            "records": [
                serialize.record_to_state(record)
                for record in self._store.records()
            ],
        }

    @classmethod
    def _construct_for_restore(
        cls, state: dict[str, Any], config: SamplerConfig, policy
    ) -> "RobustL0SamplerIW":
        """Build the empty shell ``from_state`` fills (subclass hook)."""
        return cls(
            config.alpha,
            config.dim,
            kappa0=policy.kappa0,
            expected_stream_length=policy.expected_stream_length,
            accept_capacity=policy.fixed,
            track_members=state["track_members"],
            config=config,
        )

    @classmethod
    def from_state(
        cls, state: dict[str, Any], *, config: SamplerConfig | None = None
    ) -> "RobustL0SamplerIW":
        """Restore a sampler from :meth:`to_state` output.

        The restored sampler continues the stream with decisions identical
        to the original (same grid, hash, rate, candidate records and
        member-RNG state); ``config`` lets a coordinator re-share one
        configuration object across restored shards.
        """
        from repro.core import serialize

        if config is None:
            config = serialize.config_from_state(state["config"])
        policy = serialize.policy_from_state(state["policy"])
        sampler = cls._construct_for_restore(state, config, policy)
        sampler._policy = policy
        sampler._rate_denominator = state["rate_denominator"]
        sampler._count = state["points_seen"]
        sampler._peak_words = state["peak_space_words"]
        sampler._member_rng = serialize.rng_from_state(state["member_rng"])
        for record_state in state["records"]:
            sampler._store.add(serialize.record_from_state(record_state))
        return sampler
