"""Shared codecs for the universal checkpoint protocol.

Every summary implements ``to_state()`` / ``from_state(state)`` (the
:class:`repro.api.Summary` protocol); the states are plain
JSON-compatible trees.  This module holds the codecs the summaries share
- points, RNG states, grid/hash configurations, candidate records,
threshold policies and window specifications - so each summary's state
methods stay a short description of *its own* fields.

This is a leaf module: it imports only the geometry/hashing/stream
primitives, never the samplers, so every core class (and
:mod:`repro.persist`, the envelope layer) can use it without cycles.
"""

from __future__ import annotations

import random
from typing import Any

from repro.core.base import CandidateRecord, SamplerConfig, _ThresholdPolicy
from repro.errors import CheckpointError
from repro.geometry.grid import Grid
from repro.hashing.kwise import KWiseHash
from repro.hashing.mix import SplitMix64
from repro.hashing.sampling import SamplingHash
from repro.streams.point import StreamPoint
from repro.streams.windows import (
    InfiniteWindow,
    SequenceWindow,
    TimeWindow,
    WindowSpec,
)


def point_to_state(point: StreamPoint) -> dict[str, Any]:
    """Encode one stream point."""
    return {"v": list(point.vector), "i": point.index, "t": point.time}


def point_from_state(state: dict[str, Any]) -> StreamPoint:
    """Decode one stream point."""
    return StreamPoint(tuple(state["v"]), state["i"], state["t"])


def rng_to_state(rng: random.Random) -> list[Any]:
    """Encode a ``random.Random`` state as a JSON-compatible list.

    ``getstate()`` returns ``(version, tuple_of_ints, gauss_next)``;
    tuples become lists on the way out and are rebuilt on the way in.
    """
    version, internal, gauss_next = rng.getstate()
    return [version, list(internal), gauss_next]


def rng_from_state(state: list[Any]) -> random.Random:
    """Rebuild a ``random.Random`` from :func:`rng_to_state` output."""
    rng = random.Random()
    rng.setstate((state[0], tuple(state[1]), state[2]))
    return rng


def config_to_state(config: SamplerConfig) -> dict[str, Any]:
    """Encode a sampler configuration (grid offset + exact hash state)."""
    base = config.hash.base
    if isinstance(base, SplitMix64):
        hash_state: dict[str, Any] = {"kind": "splitmix64", "seed": base.seed}
    elif isinstance(base, KWiseHash):
        hash_state = {"kind": "kwise", "coefficients": list(base.coefficients)}
    else:
        raise CheckpointError(
            f"cannot serialise hash of type {type(base).__name__}"
        )
    return {
        "alpha": config.alpha,
        "dim": config.dim,
        "grid_side": config.grid.side,
        "grid_offset": list(config.grid.offset),
        "hash": hash_state,
    }


def config_from_state(state: dict[str, Any]) -> SamplerConfig:
    """Decode a sampler configuration; the hash function is bit-exact."""
    hash_state = state["hash"]
    if hash_state["kind"] == "splitmix64":
        base: Any = SplitMix64(hash_state["seed"], premixed=True)
    elif hash_state["kind"] == "kwise":
        base = KWiseHash.from_coefficients(tuple(hash_state["coefficients"]))
    else:
        raise CheckpointError(f"unknown hash kind {hash_state['kind']!r}")
    grid = Grid(
        side=state["grid_side"],
        dim=state["dim"],
        offset=tuple(state["grid_offset"]),
    )
    return SamplerConfig(
        alpha=state["alpha"],
        dim=state["dim"],
        grid=grid,
        hash=SamplingHash(base),
    )


def record_to_state(record: CandidateRecord) -> dict[str, Any]:
    """Encode one candidate record (``last``/``member``/``level`` only
    when they deviate from the defaults).

    ``record.slot`` - the record's index into its store's slot pool -
    is **derived state** and deliberately never encoded: restoring
    re-grants slots through ``CandidateStore.add``, so checkpoints stay
    byte-identical to the pre-pool layout and legacy checkpoints
    restore unchanged (``tests/test_persist.py``,
    ``tests/test_property_equivalence.py``).
    """
    state = {
        "rep": point_to_state(record.representative),
        "cell": list(record.cell),
        "cell_hash": record.cell_hash,
        "adj_hashes": list(record.adj_hashes),
        "accepted": record.accepted,
        "count": record.count,
    }
    if record.last is not record.representative:
        state["last"] = point_to_state(record.last)
    if record.member is not None:
        state["member"] = point_to_state(record.member)
    if record.level:
        state["level"] = record.level
    return state


def record_from_state(state: dict[str, Any]) -> CandidateRecord:
    """Decode one candidate record, preserving last-is-representative."""
    representative = point_from_state(state["rep"])
    last = (
        point_from_state(state["last"]) if "last" in state else representative
    )
    member = point_from_state(state["member"]) if "member" in state else None
    return CandidateRecord(
        representative=representative,
        cell=tuple(state["cell"]),
        cell_hash=state["cell_hash"],
        adj_hashes=tuple(state["adj_hashes"]),
        accepted=state["accepted"],
        last=last,
        count=state["count"],
        member=member,
        level=state.get("level", 0),
    )


def policy_to_state(policy: _ThresholdPolicy) -> dict[str, Any]:
    """Encode a threshold policy, including the arrivals observed."""
    return {
        "kappa0": policy.kappa0,
        "expected_stream_length": policy.expected_stream_length,
        "minimum": policy.minimum,
        "fixed": policy.fixed,
        "seen": policy.seen,
    }


def policy_from_state(state: dict[str, Any]) -> _ThresholdPolicy:
    """Decode a threshold policy."""
    policy = _ThresholdPolicy(
        kappa0=state["kappa0"],
        expected_stream_length=state["expected_stream_length"],
        minimum=state.get("minimum", 4),
        fixed=state["fixed"],
    )
    policy._seen = state["seen"]
    return policy


def window_to_state(window: WindowSpec | None) -> dict[str, Any] | None:
    """Encode a window specification (``None`` passes through)."""
    if window is None:
        return None
    if isinstance(window, InfiniteWindow):
        return {"kind": "infinite"}
    if isinstance(window, SequenceWindow):
        return {"kind": "sequence", "size": int(window.size)}
    if isinstance(window, TimeWindow):
        return {"kind": "time", "size": window.size}
    raise CheckpointError(
        f"cannot serialise window of type {type(window).__name__}"
    )


def window_from_state(state: dict[str, Any] | None) -> WindowSpec | None:
    """Decode a window specification."""
    if state is None:
        return None
    kind = state["kind"]
    if kind == "infinite":
        return InfiniteWindow()
    if kind == "sequence":
        return SequenceWindow(state["size"])
    if kind == "time":
        return TimeWindow(state["size"])
    raise CheckpointError(f"unknown window kind {kind!r}")
