"""Random-member-of-group sampling (Section 2.3).

The base samplers return a *fixed* representative of the sampled group.
Section 2.3 explains how to return a uniformly random member instead:

* infinite window: classical reservoir sampling (Vitter 1985) with a
  per-group counter - :class:`ReservoirMember`;
* sliding window: a priority-based scheme in the spirit of Babcock, Datar
  and Motwani (SODA 2002) / Braverman et al. (PODS 2009):
  :class:`WindowReservoir` assigns each point an i.i.d. uniform priority
  and keeps the points not dominated by any later point; the maximum-
  priority unexpired point is then uniform over the window's members of
  the group, and the expected kept-set size is O(log w).
"""

from __future__ import annotations

import random
from typing import Iterable

from repro.errors import EmptySampleError
from repro.streams.point import StreamPoint
from repro.streams.windows import WindowSpec


class ReservoirMember:
    """Uniform sample over all points offered so far (infinite window).

    >>> rng = random.Random(0)
    >>> res = ReservoirMember()
    >>> for i in range(100):
    ...     res.offer(StreamPoint((float(i),), i), rng)
    >>> res.count
    100
    >>> isinstance(res.member(), StreamPoint)
    True
    """

    __slots__ = ("_member", "_count")

    def __init__(self) -> None:
        self._member: StreamPoint | None = None
        self._count = 0

    @property
    def count(self) -> int:
        """Number of points offered."""
        return self._count

    def offer(self, point: StreamPoint, rng: random.Random) -> None:
        """Present one point; it replaces the sample with prob ``1/count``."""
        self._count += 1
        if self._member is None or rng.random() < 1.0 / self._count:
            self._member = point

    def offer_many(
        self, points: Iterable[StreamPoint], rng: random.Random
    ) -> None:
        """Present a batch; draws the same RNG sequence as repeated offers.

        The short-circuit on the first offer (no random draw while the
        reservoir is empty) is preserved so the batch path is
        state-equivalent to per-point offering.

        For standalone reservoir users.  The samplers' batch paths keep
        per-point ``offer`` calls: consecutive stream points generally
        belong to *different* groups' reservoirs, and the equivalence
        contract pins RNG draws to arrival order, so there is no
        same-reservoir run to batch there.
        """
        count = self._count
        member = self._member
        rng_random = rng.random
        for point in points:
            count += 1
            if member is None or rng_random() < 1.0 / count:
                member = point
        self._count = count
        self._member = member

    def member(self) -> StreamPoint:
        """The current uniform sample."""
        if self._member is None:
            raise EmptySampleError("reservoir is empty")
        return self._member

    def space_words(self) -> int:
        """Footprint in words (stored point + counter)."""
        if self._member is None:
            return 1
        return len(self._member.vector) + 3


class WindowReservoir:
    """Uniform sample over the *unexpired* points offered (sliding window).

    Keeps the sequence of offered points that are not dominated by a later
    point of higher priority; priorities are i.i.d. uniform, so the stored
    priorities are strictly decreasing in arrival order and the head of the
    surviving (unexpired) portion is a uniform sample of the window.

    >>> rng = random.Random(0)
    >>> from repro.streams.windows import SequenceWindow
    >>> res = WindowReservoir(SequenceWindow(10))
    >>> pts = [StreamPoint((float(i),), i) for i in range(50)]
    >>> for p in pts:
    ...     res.offer(p, rng)
    >>> sample = res.member(latest=pts[-1])
    >>> sample.index > 39
    True
    """

    __slots__ = ("_window", "_entries")

    def __init__(self, window: WindowSpec) -> None:
        self._window = window
        # (priority, point), arrival order == decreasing priority order.
        self._entries: list[tuple[float, StreamPoint]] = []

    def __len__(self) -> int:
        return len(self._entries)

    def offer(self, point: StreamPoint, rng: random.Random) -> None:
        """Present one point with a fresh random priority."""
        priority = rng.random()
        entries = self._entries
        while entries and entries[-1][0] <= priority:
            entries.pop()
        entries.append((priority, point))

    def offer_many(
        self, points: Iterable[StreamPoint], rng: random.Random
    ) -> None:
        """Present a batch of points; equivalent to repeated :meth:`offer`.

        One priority is drawn per point in arrival order, so the RNG
        stream - and hence the kept set - matches per-point offering.
        For standalone reservoir users (see
        :meth:`ReservoirMember.offer_many` on why the samplers' batch
        paths stay per-point here).
        """
        entries = self._entries
        append = entries.append
        pop = entries.pop
        rng_random = rng.random
        for point in points:
            priority = rng_random()
            while entries and entries[-1][0] <= priority:
                pop()
            append((priority, point))

    def _evict(self, latest: StreamPoint) -> None:
        window = self._window
        entries = self._entries
        drop = 0
        while drop < len(entries) and window.expired(entries[drop][1], latest):
            drop += 1
        if drop:
            del entries[:drop]

    def member(self, latest: StreamPoint) -> StreamPoint:
        """Uniform sample among unexpired offered points."""
        self._evict(latest)
        if not self._entries:
            raise EmptySampleError("window reservoir holds no live points")
        return self._entries[0][1]

    def space_words(self) -> int:
        """Footprint in words (kept points + priorities)."""
        if not self._entries:
            return 1
        dim = len(self._entries[0][1].vector)
        return len(self._entries) * (dim + 3)
