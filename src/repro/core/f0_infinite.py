"""Robust F0 estimation in the infinite window (Section 5).

Section 5 plugs the robust sampler into the distinct-elements framework of
Bar-Yossef et al. (RANDOM 2002): replace Algorithm 1's ``kappa_0 * log m``
accept threshold with ``kappa_B / eps^2`` and return ``|S_acc| * R``.  A
single copy is a (1 + eps)-approximation with constant probability; the
median over Theta(log(1/delta)) independent copies boosts the confidence.
"""

from __future__ import annotations

import math
import statistics
from typing import Iterable, Sequence

from repro.core.base import StreamSampler
from repro.core.chunk_geometry import feed_copies_shared
from repro.core.infinite_window import RobustL0SamplerIW
from repro.errors import ParameterError
from repro.streams.point import StreamPoint

#: Constant kappa_B of the accept-set capacity kappa_B / eps^2.  With
#: capacity T the estimator's relative standard deviation is about
#: sqrt(2 / T) at the moment the rate halves, so kappa_B = 8 targets a
#: one-sigma error of eps / 2.
DEFAULT_KAPPA_B = 8.0


class RobustF0EstimatorIW(StreamSampler):
    """(1 + eps)-approximation of the robust number of distinct elements.

    Parameters
    ----------
    alpha, dim:
        As in :class:`~repro.core.infinite_window.RobustL0SamplerIW`.
    epsilon:
        Target relative accuracy (0 < eps <= 1).
    copies:
        Number of independent copies whose estimates are medianed;
        Theta(log(1/delta)) copies give failure probability delta.
    kappa_b:
        The capacity constant (see :data:`DEFAULT_KAPPA_B`).
    seed:
        Base seed; copy ``i`` uses ``seed + i``.

    Examples
    --------
    >>> est = RobustF0EstimatorIW(0.5, 1, epsilon=0.5, copies=3, seed=2)
    >>> for g in range(20):
    ...     est.insert((10.0 * g,))
    ...     est.insert((10.0 * g + 0.1,))
    >>> 10 <= est.estimate() <= 40
    True
    """

    #: Registry key (see :mod:`repro.api.registry`).
    summary_key = "f0-infinite"

    def __init__(
        self,
        alpha: float,
        dim: int,
        *,
        epsilon: float = 0.2,
        copies: int = 9,
        kappa_b: float = DEFAULT_KAPPA_B,
        seed: int | None = None,
        grid_side: float | None = None,
    ) -> None:
        if not 0 < epsilon <= 1:
            raise ParameterError(f"epsilon must be in (0, 1], got {epsilon}")
        if copies < 1:
            raise ParameterError(f"copies must be >= 1, got {copies}")
        capacity = max(4, math.ceil(kappa_b / (epsilon * epsilon)))
        base_seed = seed if seed is not None else 0
        self._copies = [
            RobustL0SamplerIW(
                alpha,
                dim,
                seed=base_seed + i if seed is not None else None,
                grid_side=grid_side,
                accept_capacity=capacity,
            )
            for i in range(copies)
        ]
        self._epsilon = epsilon

    @property
    def epsilon(self) -> float:
        """Target relative accuracy."""
        return self._epsilon

    @property
    def num_copies(self) -> int:
        """Number of independent estimator copies."""
        return len(self._copies)

    def insert(self, point: StreamPoint | Sequence[float]) -> None:
        """Feed one point to every copy."""
        if not isinstance(point, StreamPoint):
            point = StreamPoint(
                tuple(float(x) for x in point), self._copies[0].points_seen
            )
        for copy in self._copies:
            copy.insert(point)

    def process_many(
        self, points: Iterable[StreamPoint | Sequence[float]]
    ) -> int:
        """Batched :meth:`insert`: materialise once, feed every copy.

        See :func:`~repro.core.chunk_geometry.feed_copies_shared` - the
        copies stay in lockstep even when a mid-chunk point is invalid,
        and the chunk's coercion and flattened float array are computed
        once and shared.  Each copy still derives its own grid/hash
        products from that array (copies have independent grids and
        hashes by construction), but the per-copy coercion and flatten
        passes are gone.
        """
        return feed_copies_shared(self._copies, points)

    def copy_estimates(self) -> list[float]:
        """Per-copy point estimates ``|S_acc| * R``."""
        return [copy.estimate_f0() for copy in self._copies]

    def estimate(self) -> float:
        """Median of the per-copy estimates."""
        return statistics.median(self.copy_estimates())

    def space_words(self) -> int:
        """Total footprint across copies."""
        return sum(copy.space_words() for copy in self._copies)

    # ------------------------------------------------------------------ #
    # Summary protocol (see repro.api.protocol)
    # ------------------------------------------------------------------ #

    def query(self, rng=None) -> float:
        """Protocol query: the median-of-copies estimate (rng unused)."""
        return self.estimate()

    def merge(self, *others: "RobustF0EstimatorIW") -> "RobustF0EstimatorIW":
        """Merge copy-wise: copy ``i`` of every input shares one config
        (estimators built from one spec), so the underlying sampler merge
        applies per copy and the median estimate covers the union."""
        from repro.api.protocol import check_merge_peers

        check_merge_peers(self, others)
        for other in others:
            if other.num_copies != self.num_copies:
                raise ParameterError(
                    "cannot merge estimators with different copy counts"
                )
        merged = RobustF0EstimatorIW.__new__(RobustF0EstimatorIW)
        merged._epsilon = self._epsilon
        merged._copies = [
            copy.merge(*(other._copies[i] for other in others))
            for i, copy in enumerate(self._copies)
        ]
        return merged

    def to_state(self) -> dict:
        """Serialise to a JSON-compatible dict (protocol checkpoint)."""
        return {
            "epsilon": self._epsilon,
            "copies": [copy.to_state() for copy in self._copies],
        }

    @classmethod
    def from_state(cls, state: dict) -> "RobustF0EstimatorIW":
        """Restore an estimator from :meth:`to_state` output."""
        estimator = cls.__new__(cls)
        estimator._epsilon = state["epsilon"]
        estimator._copies = [
            RobustL0SamplerIW.from_state(copy_state)
            for copy_state in state["copies"]
        ]
        return estimator
