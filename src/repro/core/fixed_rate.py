"""Algorithm 2: sliding-window sampling at a fixed cell sample rate.

This is the building block of the space-efficient hierarchy (Algorithm 3);
it can also be used standalone when the number of groups per window is
known to be modest (its worst-case space is w/R).

State per candidate group (cf. the paper's key-value store ``A``): the
group's representative point ``u`` (possibly already expired itself) and
the group's most recent point ``p``; the pair dies when ``p`` expires,
which is exactly when the group no longer intersects the window.
Observation 1: the representative of each group is then fully determined
by the stream (the latest point of the group preceded by a w-gap), and it
lands in the accept set with probability 1/R.
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Iterable, Iterator, Sequence

from repro.core.base import (
    DEFAULT_BATCH_SIZE,
    CandidateRecord,
    CandidateStore,
    PointContext,
    SamplerConfig,
    StreamSampler,
    _CELL_MEMO_LIMIT,
    chunked,
)
from repro.core.chunk_geometry import (
    ChunkGeometry,
    compute_chunk_geometry,
    materialize_chunk,
)
from repro.core.reservoir import WindowReservoir
from repro.errors import DimensionMismatchError, EmptySampleError, ParameterError
from repro.streams.point import StreamPoint
from repro.streams.windows import WindowSpec


class FixedRateSlidingSampler(StreamSampler):
    """One Algorithm 2 instance: fixed rate ``1/R`` over a sliding window.

    Parameters
    ----------
    config:
        Shared geometry/hash bundle.  All instances of a hierarchy must
        share one config so that sampling decisions nest across rates.
    rate_denominator:
        ``R`` (power of two); cells are sampled with probability ``1/R``.
    window:
        Sequence- or time-based window specification.
    track_members:
        Maintain per-group :class:`~repro.core.reservoir.WindowReservoir`
        samples so :meth:`sample_member` works (Section 2.3).
    member_seed:
        Seed for the member-tracking randomness (reservoir priorities);
        ``None`` draws fresh randomness.  Seeding it makes runs - and the
        batch/per-point differential tests - reproducible.
    """

    def __init__(
        self,
        config: SamplerConfig,
        rate_denominator: int,
        window: WindowSpec,
        *,
        track_members: bool = False,
        member_seed: int | None = None,
    ) -> None:
        if rate_denominator < 1 or rate_denominator & (rate_denominator - 1):
            raise ParameterError(
                f"rate denominator must be a power of two, got {rate_denominator}"
            )
        self._config = config
        self._rate = rate_denominator
        self._window = window
        self._track_members = track_members
        self._store = CandidateStore(config)
        # Lazy eviction heap over (expiry key, tiebreak, record, last-ref).
        self._heap: list[tuple[float, int, CandidateRecord, StreamPoint]] = []
        self._tiebreak = itertools.count()
        self._reservoirs: dict[int, WindowReservoir] = {}
        self._member_rng = random.Random(member_seed)

    # ------------------------------------------------------------------ #
    # properties
    # ------------------------------------------------------------------ #

    @property
    def rate_denominator(self) -> int:
        """``R`` of this instance."""
        return self._rate

    @property
    def window(self) -> WindowSpec:
        """The window specification."""
        return self._window

    @property
    def config(self) -> SamplerConfig:
        """Shared geometry/hash bundle."""
        return self._config

    @property
    def accepted_count(self) -> int:
        """``|S_acc|`` (may include entries whose last point has expired
        until the next eviction; call :meth:`evict` first for exactness)."""
        return self._store.accepted_count

    @property
    def candidate_count(self) -> int:
        """Number of tracked candidate groups."""
        return len(self._store)

    def records(self) -> Iterator[CandidateRecord]:
        """Iterate all candidate records."""
        return self._store.records()

    def accepted_records(self) -> list[CandidateRecord]:
        """Records of the accept set."""
        return self._store.accepted_records()

    def rejected_records(self) -> list[CandidateRecord]:
        """Records of the reject set."""
        return self._store.rejected_records()

    # ------------------------------------------------------------------ #
    # streaming
    # ------------------------------------------------------------------ #

    def _push_heap(self, record: CandidateRecord) -> None:
        # Stamp the record's slot generation with the entry's tiebreak
        # (see the slot-pool notes on CandidateStore): eviction then
        # detects stale entries with one list index + int compare.
        tiebreak = next(self._tiebreak)
        self._store._slot_tb[record.slot] = tiebreak
        heapq.heappush(
            self._heap,
            (
                self._window.expiry_key(record.last),
                tiebreak,
                record,
                record.last,
            ),
        )

    def evict(self, latest: StreamPoint) -> None:
        """Drop groups whose last point expired (Lines 1-3 of Algorithm 2).

        Stale heap entries (the record was updated or already removed -
        detected in O(1) by the entry tiebreak no longer matching its
        record's slot generation) are discarded lazily; amortised
        O(log n) per tracked update.  The window's
        :meth:`~repro.streams.windows.WindowSpec.eviction_cutoff`
        pre-filters live entries by their heap key, so the common
        nothing-expires case costs one comparison past the stale check.
        """
        heap = self._heap
        if not heap:
            return
        store = self._store
        window = self._window
        cutoff = window.eviction_cutoff(latest)
        slot_tb = store._slot_tb
        while heap:
            key, tiebreak, record, _ = heap[0]
            if slot_tb[record.slot] != tiebreak:
                heapq.heappop(heap)
                continue
            if key > cutoff or window.in_window(record.last, latest):
                break
            heapq.heappop(heap)
            store.remove(record)
            self._reservoirs.pop(record.representative.index, None)

    def insert(
        self,
        point: StreamPoint,
        ctx: PointContext | None = None,
    ) -> tuple[bool, PointContext]:
        """Process an arriving point.

        Returns ``(tracked, ctx)``.  ``tracked`` is the Algorithm 3 test
        "exists (u, p) in A_l": True exactly when ``point`` became the
        last point of some candidate group of this instance (either by
        updating an existing group or by founding one).  ``ctx`` is the
        point's geometry, possibly enriched with ``adj(p)`` hashes - a
        hierarchy passes it down so the computation happens once per
        arrival rather than once per level.
        """
        self.evict(point)
        config = self._config
        if ctx is None:
            ctx = config.point_context(point.vector)

        record = self._store.find_nearby(point.vector, ctx.cell_hash)
        if record is not None:
            self._store.relink_last(record, point)
            record.count += 1
            self._push_heap(record)
            if self._track_members:
                self._reservoir_for(record).offer(point, self._member_rng)
            return True, ctx

        ctx = config.with_adj(point.vector, ctx)
        assert ctx.adj_hashes is not None
        mask = self._rate - 1
        if ctx.cell_hash & mask == 0:
            accepted = True
        elif any(value & mask == 0 for value in ctx.adj_hashes):
            accepted = False
        else:
            return False, ctx

        record = CandidateRecord(
            representative=point,
            cell=ctx.cell,
            cell_hash=ctx.cell_hash,
            adj_hashes=ctx.adj_hashes,
            accepted=accepted,
            last=point,
        )
        self._store.add(record)
        self._push_heap(record)
        if self._track_members:
            self._reservoir_for(record).offer(point, self._member_rng)
        return True, ctx

    def _reservoir_for(self, record: CandidateRecord) -> WindowReservoir:
        key = record.representative.index
        reservoir = self._reservoirs.get(key)
        if reservoir is None:
            reservoir = WindowReservoir(self._window)
            self._reservoirs[key] = reservoir
        return reservoir

    def process_many(
        self,
        points: Iterable[StreamPoint],
        *,
        geometry: "ChunkGeometry | None" = None,
    ) -> int:
        """Batched :meth:`insert`; state-equivalent (including the heap).

        Cells and memo-aware cell hashes come from one vectorised
        :class:`~repro.core.chunk_geometry.ChunkGeometry` precompute per
        chunk (``geometry`` accepts one computed upstream); the loop
        inlines eviction and the bucket probe, replicating :meth:`evict`
        operation-for-operation so the lazy heap - stale entries
        included - ends up identical to the per-point path's.  A
        mid-chunk dimension error still evicts with the offending point
        before raising, exactly as :meth:`insert` evicts before
        ``point_context()`` can raise.  Points must be
        :class:`StreamPoint` instances, as for :meth:`insert`.
        """
        if geometry is None and not isinstance(points, (list, tuple)):
            # A non-materialised iterable is streamed in bounded chunks:
            # building one ChunkGeometry over an arbitrary stream would
            # regress the O(chunk)-memory behaviour of the batch engine
            # (chunk boundaries are state-invisible by the layout-
            # invariance contract, so this is purely a memory bound).
            streamed = 0
            for chunk in chunked(points, DEFAULT_BATCH_SIZE):
                streamed += self.process_many(chunk)
            return streamed

        config = self._config
        dim = config.dim
        grid = config.grid
        side = grid.side
        offset = grid.offset
        memo = config.cell_hash_memo
        memo_get = memo.get
        cell_id = grid.cell_id
        hash_value = config.hash.value
        window = self._window
        expiry_key = window.expiry_key
        in_window = window.in_window
        eviction_cutoff = window.eviction_cutoff
        heap = self._heap
        heappush = heapq.heappush
        heappop = heapq.heappop
        store = self._store
        slot_tb = store._slot_tb
        slot_words = store._slot_words
        buckets_get = store._buckets.get
        reservoirs = self._reservoirs
        track = self._track_members
        member_rng = self._member_rng
        tiebreak = self._tiebreak
        rate_mask = self._rate - 1
        alpha_sq = config.alpha * config.alpha
        if dim == 1:
            off0 = offset[0]
            off1 = 0.0
        elif dim == 2:
            off0, off1 = offset
        else:
            off0 = off1 = 0.0

        pts, vectors, error, offender = materialize_chunk(
            points,
            dim,
            0,
            lambda actual: DimensionMismatchError(
                f"point has {actual} coordinates, grid expects {dim}"
            ),
            coerce=False,
        )
        if geometry is not None and not geometry.valid_for(config, vectors):
            geometry = None
        geom = (
            geometry
            if geometry is not None
            else compute_chunk_geometry(config, vectors)
        )
        if geom is not None:
            geom_n = min(geom.n, len(pts))
            hashes_list = geom.cell_hashes
            cell_at = geom.cell_at
        else:
            geom_n = 0
            hashes_list = ()
            cell_at = None
        processed = 0
        for i in range(len(pts)):
            p = pts[i]
            vector = vectors[i]
            # Inline evict(p) - identical operations, identical heap
            # state.
            if heap:
                cutoff = eviction_cutoff(p)
                while heap:
                    key, entry_tb, record, _ = heap[0]
                    if slot_tb[record.slot] != entry_tb:
                        heappop(heap)
                        continue
                    if key > cutoff or in_window(record.last, p):
                        break
                    heappop(heap)
                    store.remove(record)
                    reservoirs.pop(record.representative.index, None)

            processed += 1

            if i < geom_n:
                # Cell tuples are built lazily (cell_at) - only
                # candidate foundings need them.
                cell = None
                cell_hash = hashes_list[i]
            else:
                if dim == 2:
                    cell = (
                        int((vector[0] - off0) // side),
                        int((vector[1] - off1) // side),
                    )
                elif dim == 1:
                    cell = (int((vector[0] - off0) // side),)
                else:
                    cell = tuple(
                        int((x - o) // side) for x, o in zip(vector, offset)
                    )
                cell_hash = memo_get(cell)
                if cell_hash is None:
                    cell_hash = hash_value(cell_id(cell))
                    if len(memo) >= _CELL_MEMO_LIMIT:
                        memo.clear()
                    memo[cell] = cell_hash

            bucket = buckets_get(cell_hash)
            existing = None
            if bucket:
                for record in bucket:
                    acc = 0.0
                    for a, b in zip(record.representative.vector, vector):
                        diff = a - b
                        acc += diff * diff
                        if acc > alpha_sq:
                            break
                    else:
                        existing = record
                        break
            if existing is not None:
                # Inline relink_last: footprint moves only on the (once
                # per record) rep -> non-rep identity transition.
                if p is not existing.representative:
                    if existing.last is existing.representative:
                        store._base_words += dim + 2
                        slot_words[existing.slot] += dim + 2
                elif existing.last is not existing.representative:
                    store._base_words -= dim + 2
                    slot_words[existing.slot] -= dim + 2
                existing.last = p
                existing.count += 1
                entry_tb = next(tiebreak)
                slot_tb[existing.slot] = entry_tb
                heappush(heap, (expiry_key(p), entry_tb, existing, p))
                if track:
                    self._reservoir_for(existing).offer(p, member_rng)
                continue

            # First point of a candidate group: same code as insert().
            if i < geom_n:
                if cell is None:
                    cell = cell_at(i)
                adj_hashes = geom.adj_hashes(i)
            else:
                adj_hashes = config.adj_hashes(vector, cell=cell)
            if cell_hash & rate_mask == 0:
                accepted = True
            elif any(value & rate_mask == 0 for value in adj_hashes):
                accepted = False
            else:
                continue
            record = CandidateRecord(
                representative=p,
                cell=cell,
                cell_hash=cell_hash,
                adj_hashes=adj_hashes,
                accepted=accepted,
                last=p,
            )
            store.add(record)
            entry_tb = next(tiebreak)
            slot_tb[record.slot] = entry_tb
            heappush(heap, (expiry_key(p), entry_tb, record, p))
            if track:
                self._reservoir_for(record).offer(p, member_rng)
        if error is not None:
            if offender is not None:
                # insert() evicts with the bad point before its geometry
                # can raise; replicate that so both paths agree on which
                # expired records survive the failed call.
                self.evict(offender)
            raise error
        return processed

    # ------------------------------------------------------------------ #
    # bulk-management helpers
    # ------------------------------------------------------------------ #
    # (The sliding-window hierarchy no longer builds on per-level
    # instances - it shares one store across levels - so the old
    # Split/Merge integration hooks are gone; these remain as standalone
    # Algorithm 2 conveniences.)

    def clear(self) -> None:
        """Reset to the freshly created state, keeping the rate (Line 9)."""
        self._store = CandidateStore(self._config)
        self._heap.clear()
        self._reservoirs.clear()

    def adopt_record(self, record: CandidateRecord) -> None:
        """Install an externally built record, with heap tracking."""
        self._store.add(record)
        self._push_heap(record)

    def find_group(
        self, vector: Sequence[float], cell_hash: int
    ) -> CandidateRecord | None:
        """Proximity lookup against this instance's representatives."""
        return self._store.find_nearby(vector, cell_hash)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def sample(
        self, latest: StreamPoint, rng: random.Random | None = None
    ) -> StreamPoint:
        """A uniformly random accepted group's last point, post-eviction."""
        self.evict(latest)
        accepted = self._store.accepted_records()
        if not accepted:
            raise EmptySampleError("no accepted group intersects the window")
        rng = rng if rng is not None else random.Random()
        return rng.choice(accepted).last

    def sample_member(
        self, latest: StreamPoint, rng: random.Random | None = None
    ) -> StreamPoint:
        """A uniformly random window member of a random accepted group."""
        if not self._track_members:
            raise ParameterError("sampler was built with track_members=False")
        self.evict(latest)
        accepted = self._store.accepted_records()
        if not accepted:
            raise EmptySampleError("no accepted group intersects the window")
        rng = rng if rng is not None else random.Random()
        record = rng.choice(accepted)
        return self._reservoirs[record.representative.index].member(latest)

    def space_words(self) -> int:
        """Current footprint in words (records + reservoirs + scalars).

        The record part is O(1) (incremental store counters); only the
        per-group reservoirs - empty unless ``track_members`` - walk.
        """
        words = self._store.space_words(track_members=False) + 3
        for reservoir in self._reservoirs.values():
            words += reservoir.space_words()
        return words

    def recount_space_words(self) -> int:
        """Debug oracle: recompute :meth:`space_words` from scratch."""
        words = self._store.recount_space_words(track_members=False) + 3
        for reservoir in self._reservoirs.values():
            words += reservoir.space_words()
        return words

    # ------------------------------------------------------------------ #
    # checkpoint state (building block of the sliding-window protocol)
    # ------------------------------------------------------------------ #

    def to_state(self) -> dict:
        """Serialise this level to a JSON-compatible dict.

        The state is the level's *replayable window contents*: every
        candidate record (representative + most recent in-window point +
        per-group reservoir of window members) plus the lazy eviction
        heap **verbatim** - stale entries, tiebreak counter position and
        all - so a restored level evicts, updates and samples exactly as
        the original would on the remainder of the stream.

        Heap entries are stored with two linkage flags instead of object
        references: ``linked`` (the referenced record is still the store's
        record for that representative) and ``cur`` (the entry's last-point
        is the record's current one).  ``from_state`` uses them to restore
        the identity relationships the lazy-eviction staleness checks rely
        on (``store.get(i) is record`` / ``record.last is last_ref``).

        The shared :class:`~repro.core.base.SamplerConfig` and window are
        *not* embedded; the owner (hierarchy or caller) restores them once
        and passes them to :meth:`from_state`.
        """
        from repro.core import serialize

        store = self._store
        records = sorted(
            store.records(), key=lambda r: r.representative.index
        )
        heap_state = []
        for key, tiebreak, record, last_ref in self._heap:
            current = store.get(record.representative.index)
            heap_state.append(
                {
                    "k": key,
                    "t": tiebreak,
                    "r": record.representative.index,
                    "p": serialize.point_to_state(last_ref),
                    "linked": current is record,
                    "cur": record.last is last_ref,
                }
            )
        # Read the tiebreak position without perturbing the sequence: the
        # counter object is consumed by one peek and replaced by an equal
        # continuation (fingerprints never include the object itself).
        position = next(self._tiebreak)
        self._tiebreak = itertools.count(position)
        return {
            "rate_denominator": self._rate,
            "track_members": self._track_members,
            "member_rng": serialize.rng_to_state(self._member_rng),
            "next_tiebreak": position,
            "records": [serialize.record_to_state(r) for r in records],
            "heap": heap_state,
            "reservoirs": [
                {
                    "key": key,
                    "entries": [
                        [priority, serialize.point_to_state(point)]
                        for priority, point in self._reservoirs[key]._entries
                    ],
                }
                for key in sorted(self._reservoirs)
            ],
        }

    @classmethod
    def from_state(
        cls,
        state: dict,
        *,
        config: SamplerConfig,
        window: WindowSpec,
    ) -> "FixedRateSlidingSampler":
        """Restore a level from :meth:`to_state` output.

        ``config`` and ``window`` come from the owning hierarchy (every
        level of one hierarchy must share them - sampling decisions have
        to nest across rates, expiry must be judged consistently).
        """
        from repro.core import serialize
        from repro.core.reservoir import WindowReservoir

        sampler = cls(
            config,
            state["rate_denominator"],
            window,
            track_members=state["track_members"],
        )
        sampler._member_rng = serialize.rng_from_state(state["member_rng"])
        sampler._tiebreak = itertools.count(state["next_tiebreak"])
        records: dict[int, CandidateRecord] = {}
        for record_state in state["records"]:
            record = serialize.record_from_state(record_state)
            records[record.representative.index] = record
            sampler._store.add(record)
        slot_tb = sampler._store._slot_tb
        for entry in state["heap"]:
            last = serialize.point_from_state(entry["p"])
            record = records.get(entry["r"]) if entry["linked"] else None
            if record is None:
                # The referenced record left the store: fabricate a
                # detached stand-in so the staleness check pops the entry
                # exactly as it would have popped the original (the
                # sentinel slot 0 never matches a real tiebreak).
                record = CandidateRecord(
                    representative=StreamPoint(last.vector, entry["r"]),
                    cell=(),
                    cell_hash=0,
                    adj_hashes=(),
                    accepted=False,
                    last=last,
                )
            elif entry["cur"]:
                # Live entry: restore the identity record.last is last_ref
                # and stamp the slot generation (max-wins: the record's
                # latest push owns the counter, as in live stamping).
                last = record.last
                if entry["t"] > slot_tb[record.slot]:
                    slot_tb[record.slot] = entry["t"]
            # The saved list order *is* a valid heap arrangement (it was
            # the live heap), so it is restored verbatim - heapifying
            # could legally rearrange it and break fingerprint equality.
            sampler._heap.append((entry["k"], entry["t"], record, last))
        for reservoir_state in state["reservoirs"]:
            reservoir = WindowReservoir(window)
            reservoir._entries = [
                (priority, serialize.point_from_state(point_state))
                for priority, point_state in reservoir_state["entries"]
            ]
            sampler._reservoirs[reservoir_state["key"]] = reservoir
        return sampler
