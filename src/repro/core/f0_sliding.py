"""Robust F0 estimation over sliding windows (Section 5).

Run several independent copies of the sliding-window sampler and combine
per-copy statistics.  Three combination modes:

* ``"ht"`` (default): median of the per-copy Horvitz-Thompson estimates
  ``sum_l |S_acc_l| * R_l`` - unbiased under the hierarchy's invariants
  and by far the most accurate;
* ``"fm"``: the paper's Flajolet-Martin-style description - average the
  per-copy deepest-active-level indices ``l`` and return
  ``phi * T * 2^lbar`` where ``T`` is the per-level accept capacity
  (under the level hierarchy a full level ``l`` covers about ``T * 2^l``
  groups, so the classic ``2^l`` statistic is scaled by ``T``);
* ``"hll"``: harmonic-mean combination of the per-copy ``T * 2^l``
  values, HyperLogLog style.

The FM/HLL modes are order-of-magnitude estimators, as their noiseless
ancestors are; the EXPERIMENTS harness reports measured accuracy of all
three.
"""

from __future__ import annotations

import statistics
from typing import Iterable, Literal, Sequence

from repro.core.base import DEFAULT_KAPPA0, StreamSampler
from repro.core.chunk_geometry import feed_copies_shared
from repro.core.sliding_window import RobustL0SamplerSW
from repro.errors import ParameterError
from repro.streams.point import StreamPoint
from repro.streams.windows import WindowSpec

#: Flajolet-Martin bias correction: E[2^R] ~= 0.77351 * F0.
FM_PHI = 1.0 / 0.77351


class RobustF0EstimatorSW(StreamSampler):
    """Approximate the number of robust distinct elements in the window.

    Parameters
    ----------
    alpha, dim, window, window_capacity:
        As in :class:`~repro.core.sliding_window.RobustL0SamplerSW`.
    copies:
        Number of independent sampler copies (Theta(1/eps^2)).
    mode:
        ``"ht"``, ``"fm"`` or ``"hll"`` (see module docstring).
    calibration:
        Multiplicative bias correction for the fm/hll modes; defaults to
        the FM constant.
    seed:
        Base seed; copy ``i`` uses ``seed + i``.
    """

    #: Registry key (see :mod:`repro.api.registry`).
    summary_key = "f0-sliding"

    def __init__(
        self,
        alpha: float,
        dim: int,
        window: WindowSpec,
        *,
        window_capacity: int | None = None,
        copies: int = 16,
        mode: Literal["ht", "fm", "hll"] = "ht",
        calibration: float = FM_PHI,
        kappa0: float = DEFAULT_KAPPA0,
        seed: int | None = None,
    ) -> None:
        if copies < 1:
            raise ParameterError(f"copies must be >= 1, got {copies}")
        if mode not in ("ht", "fm", "hll"):
            raise ParameterError(
                f"mode must be 'ht', 'fm' or 'hll', got {mode!r}"
            )
        self._mode = mode
        self._calibration = calibration
        self._copies = [
            RobustL0SamplerSW(
                alpha,
                dim,
                window,
                window_capacity=window_capacity,
                kappa0=kappa0,
                seed=seed + i if seed is not None else None,
            )
            for i in range(copies)
        ]

    @property
    def num_copies(self) -> int:
        """Number of independent sampler copies."""
        return len(self._copies)

    @property
    def mode(self) -> str:
        """Combination mode (``"ht"``, ``"fm"`` or ``"hll"``)."""
        return self._mode

    def insert(self, point: StreamPoint | Sequence[float]) -> None:
        """Feed one point to every copy."""
        if not isinstance(point, StreamPoint):
            point = StreamPoint(
                tuple(float(x) for x in point), self._copies[0].points_seen
            )
        for copy in self._copies:
            copy.insert(point)

    def process_many(
        self, points: Iterable[StreamPoint | Sequence[float]]
    ) -> int:
        """Batched :meth:`insert`: materialise once, feed every copy.

        See :func:`~repro.core.chunk_geometry.feed_copies_shared` - the
        copies stay in lockstep even when a mid-chunk point is invalid,
        the chunk's coercion and float-array flatten are shared, and
        each copy derives its own grid/hash products from the shared
        array (grids/hashes are independent per copy).
        """
        return feed_copies_shared(self._copies, points)

    def copy_levels(self) -> list[int]:
        """Deepest active level per copy (0 when the window is empty)."""
        levels = []
        for copy in self._copies:
            deepest = copy.deepest_active_level()
            levels.append(0 if deepest is None else deepest)
        return levels

    def copy_ht_estimates(self) -> list[float]:
        """Per-copy Horvitz-Thompson estimates ``sum_l |S_acc_l| * R_l``."""
        return [copy.estimate_f0() for copy in self._copies]

    def estimate(self) -> float:
        """Combined estimate of the window's robust F0."""
        if self._mode == "ht":
            return statistics.median(self.copy_ht_estimates())
        capacity = self._copies[0]._policy.threshold()
        levels = self.copy_levels()
        if self._mode == "fm":
            mean_level = statistics.fmean(levels)
            return self._calibration * capacity * (2.0**mean_level)
        # HyperLogLog-style harmonic mean of per-copy T * 2^l values.
        inverse_sum = sum(2.0 ** (-level) for level in levels)
        return self._calibration * capacity * len(levels) / inverse_sum

    def space_words(self) -> int:
        """Total footprint across copies (each copy answers in O(levels)
        from its incremental per-level counters)."""
        return sum(copy.space_words() for copy in self._copies)

    def recount_space_words(self) -> int:
        """Debug oracle: recompute :meth:`space_words` from scratch."""
        return sum(copy.recount_space_words() for copy in self._copies)

    # ------------------------------------------------------------------ #
    # Summary protocol (see repro.api.protocol)
    # ------------------------------------------------------------------ #

    def query(self, rng=None) -> float:
        """Protocol query: the combined estimate (rng unused)."""
        return self.estimate()

    def merge(self, *others: "RobustF0EstimatorSW") -> "RobustF0EstimatorSW":
        """Unsupported: the underlying sliding hierarchies cannot merge
        (see :meth:`repro.core.sliding_window.RobustL0SamplerSW.merge`)."""
        from repro.api.protocol import merge_unsupported

        raise merge_unsupported(
            self, "sliding-window hierarchies cannot be combined exactly"
        )

    def to_state(self) -> dict:
        """Serialise to a JSON-compatible dict (protocol checkpoint)."""
        return {
            "mode": self._mode,
            "calibration": self._calibration,
            "copies": [copy.to_state() for copy in self._copies],
        }

    @classmethod
    def from_state(cls, state: dict) -> "RobustF0EstimatorSW":
        """Restore an estimator from :meth:`to_state` output."""
        estimator = cls.__new__(cls)
        estimator._mode = state["mode"]
        estimator._calibration = state["calibration"]
        estimator._copies = [
            RobustL0SamplerSW.from_state(copy_state)
            for copy_state in state["copies"]
        ]
        return estimator
