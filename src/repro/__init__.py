"""repro - robust distinct sampling on streams with near-duplicates.

A from-scratch reproduction of Chen & Zhang, "Distinct Sampling on
Streaming Data with Near-Duplicates" (PODS 2018): streaming l0-sampling
and F0 estimation that treat all near-duplicate points (within distance
``alpha``) as one element, for infinite and sliding windows.

The unified API
---------------
Every summary - samplers, estimators, heavy hitters, baselines - is
described by a typed spec and constructed through one registry
(:mod:`repro.api`), and implements one protocol
(:class:`repro.api.Summary`): ``process_many`` (batched ingestion),
``query``, ``merge`` (where exact merging exists) and
``to_state``/``from_state`` (the universal checkpoint protocol of
:mod:`repro.persist`).

>>> import random
>>> from repro.api import L0InfiniteSpec, build
>>> spec = L0InfiniteSpec(alpha=0.5, dim=2, seed=42)
>>> sampler = build("l0-infinite", spec)       # or spec.build()
>>> sampler.process_many([(0.0, 0.0), (0.1, 0.1), (9.0, 9.0)])
3
>>> sampler.query(rng=random.Random(7)).dim
2

The direct constructors remain available (``RobustL0SamplerIW(...)``
etc.); the registry builds exactly those classes.  ``repro.api.available()``
lists every registered summary key, and ``repro.persist.dump_summary`` /
``load_summary`` checkpoint and restore any of them through a versioned
envelope.

Scale
-----
Ingestion is batched everywhere (``process_many`` hot paths that are
state-equivalent to per-point insertion), and the sliding-window
hierarchy runs on a shared-store design: ONE candidate store and ONE
lazy eviction heap across all levels, records tagged with their level,
space served from incrementally-maintained counters.
:class:`repro.engine.BatchPipeline` shards any stream over
spec-constructed shard samplers and runs them on a pluggable executor
(``serial``, ``thread``, ``process``, or backend-leased ``remote``
workers - see
:mod:`repro.engine.executors`); finished shard states stream into the
coordinator's running union merge as workers deliver them.  Executor
choice, batching and checkpoint/resume are all invisible in summary
state (``repro.engine.state_fingerprint`` is the oracle).

See ``docs/ARCHITECTURE.md`` for the layer map and the invariants,
``docs/ADDING_A_SUMMARY.md`` for the extension recipe, ``examples/``
for end-to-end scenarios, ``README.md`` for the registry table, and
``benchmarks/`` for the reproduction of the paper's evaluation figures.
"""

from repro import api
from repro.api import Summary, build
from repro.core.base import DEFAULT_BATCH_SIZE, StreamSampler
from repro.core.f0_infinite import RobustF0EstimatorIW
from repro.core.f0_sliding import RobustF0EstimatorSW
from repro.core.fixed_rate import FixedRateSlidingSampler
from repro.core.infinite_window import RobustL0SamplerIW
from repro.core.ksample import KDistinctSampler
from repro.core.sliding_window import RobustL0SamplerSW
from repro.engine.batching import chunked
from repro.engine.equivalence import state_fingerprint
from repro.engine.pipeline import BatchPipeline
from repro.errors import (
    CheckpointError,
    EmptySampleError,
    ExecutorError,
    LevelOverflowError,
    MergeUnsupportedError,
    ParameterError,
    ReproError,
)
from repro.streams.point import StreamPoint, as_stream
from repro.streams.windows import InfiniteWindow, SequenceWindow, TimeWindow

__version__ = "1.1.0"

__all__ = [
    "api",
    "build",
    "Summary",
    "RobustL0SamplerIW",
    "RobustL0SamplerSW",
    "FixedRateSlidingSampler",
    "KDistinctSampler",
    "StreamSampler",
    "BatchPipeline",
    "DEFAULT_BATCH_SIZE",
    "chunked",
    "state_fingerprint",
    "RobustF0EstimatorIW",
    "RobustF0EstimatorSW",
    "StreamPoint",
    "as_stream",
    "InfiniteWindow",
    "SequenceWindow",
    "TimeWindow",
    "ReproError",
    "ParameterError",
    "EmptySampleError",
    "LevelOverflowError",
    "MergeUnsupportedError",
    "CheckpointError",
    "ExecutorError",
    "__version__",
]
