"""repro - robust distinct sampling on streams with near-duplicates.

A from-scratch reproduction of Chen & Zhang, "Distinct Sampling on
Streaming Data with Near-Duplicates" (PODS 2018): streaming l0-sampling
and F0 estimation that treat all near-duplicate points (within distance
``alpha``) as one element, for infinite and sliding windows.

Quickstart
----------
>>> import random
>>> from repro import RobustL0SamplerIW
>>> sampler = RobustL0SamplerIW(alpha=0.5, dim=2, seed=42)
>>> for v in [(0.0, 0.0), (0.1, 0.1), (9.0, 9.0)]:  # two groups
...     sampler.insert(v)
>>> sampler.sample(rng=random.Random(7)).dim
2

See ``examples/`` for end-to-end scenarios and ``benchmarks/`` for the
reproduction of the paper's evaluation figures.
"""

from repro.core.base import DEFAULT_BATCH_SIZE, StreamSampler
from repro.core.f0_infinite import RobustF0EstimatorIW
from repro.core.f0_sliding import RobustF0EstimatorSW
from repro.core.fixed_rate import FixedRateSlidingSampler
from repro.core.infinite_window import RobustL0SamplerIW
from repro.core.ksample import KDistinctSampler
from repro.core.sliding_window import RobustL0SamplerSW
from repro.engine.batching import chunked
from repro.engine.equivalence import state_fingerprint
from repro.engine.pipeline import BatchPipeline
from repro.errors import (
    EmptySampleError,
    LevelOverflowError,
    ParameterError,
    ReproError,
)
from repro.streams.point import StreamPoint, as_stream
from repro.streams.windows import InfiniteWindow, SequenceWindow, TimeWindow

__version__ = "1.0.0"

__all__ = [
    "RobustL0SamplerIW",
    "RobustL0SamplerSW",
    "FixedRateSlidingSampler",
    "KDistinctSampler",
    "StreamSampler",
    "BatchPipeline",
    "DEFAULT_BATCH_SIZE",
    "chunked",
    "state_fingerprint",
    "RobustF0EstimatorIW",
    "RobustF0EstimatorSW",
    "StreamPoint",
    "as_stream",
    "InfiniteWindow",
    "SequenceWindow",
    "TimeWindow",
    "ReproError",
    "ParameterError",
    "EmptySampleError",
    "LevelOverflowError",
    "__version__",
]
