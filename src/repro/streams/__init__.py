"""Stream model: points, arrival order, and sliding-window semantics.

The paper's computational model (Section 1) feeds points one at a time; a
point carries its coordinates, an arrival index and (for the time-based
sliding window) an arrival timestamp.  Both sliding-window flavours are
expressed through a single :class:`~repro.streams.windows.WindowSpec`
abstraction so the samplers are written once and work for either.
"""

from repro.streams.point import StreamPoint, as_stream
from repro.streams.sources import (
    interleave_streams,
    replay,
    shuffled,
    with_poisson_times,
)
from repro.streams.windows import (
    InfiniteWindow,
    SequenceWindow,
    TimeWindow,
    WindowSpec,
)

__all__ = [
    "StreamPoint",
    "as_stream",
    "WindowSpec",
    "InfiniteWindow",
    "SequenceWindow",
    "TimeWindow",
    "shuffled",
    "replay",
    "interleave_streams",
    "with_poisson_times",
]
