"""Sliding-window semantics (Section 1, "Computational Models").

The paper defines two flavours:

* **sequence-based**: the window holds the last ``w`` points
  ``p_{l-w+1}, ..., p_l``;
* **time-based**: the window holds the points received during the last
  ``w`` time steps ``t - w + 1, ..., t``.

The algorithms are identical in both cases; "the only difference is that
the definitions of the expiration of a point are different" - which is
exactly what :class:`WindowSpec` abstracts.  Expiry is always judged
relative to the *latest* point received (the window's right edge).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.errors import ParameterError
from repro.streams.point import StreamPoint


class WindowSpec(ABC):
    """Decides whether a point is still inside the current window."""

    @abstractmethod
    def in_window(self, point: StreamPoint, latest: StreamPoint) -> bool:
        """True when ``point`` has not expired given the latest arrival."""

    def expired(self, point: StreamPoint, latest: StreamPoint) -> bool:
        """Convenience negation of :meth:`in_window`."""
        return not self.in_window(point, latest)

    @abstractmethod
    def expiry_key(self, point: StreamPoint) -> float:
        """Monotone key: points expire in increasing order of this key.

        Enables heap-based lazy eviction: among tracked points, the one
        with the smallest key always expires first.
        """

    def eviction_cutoff(self, latest: StreamPoint) -> float:
        """Expiry-key threshold: keys above it are certainly unexpired.

        The batched eviction loops use this as a pre-filter: a heap entry
        with ``expiry_key > eviction_cutoff(latest)`` is live without an
        :meth:`in_window` call.  The conservative default (``+inf``) sends
        every entry through the exact check; the built-in window flavours
        override it with the exact threshold (a point is expired iff its
        key is at most ``expiry_key(latest) - size``).
        """
        return float("inf")

    @property
    @abstractmethod
    def size(self) -> float:
        """Nominal window size ``w`` (``inf`` for the infinite window)."""


class InfiniteWindow(WindowSpec):
    """The standard streaming model: nothing ever expires.

    >>> spec = InfiniteWindow()
    >>> spec.in_window(StreamPoint((0.0,), 0), StreamPoint((1.0,), 10 ** 9))
    True
    """

    def in_window(self, point: StreamPoint, latest: StreamPoint) -> bool:
        return True

    def expiry_key(self, point: StreamPoint) -> float:
        return 0.0

    def eviction_cutoff(self, latest: StreamPoint) -> float:
        return float("-inf")

    @property
    def size(self) -> float:
        return float("inf")

    def __repr__(self) -> str:  # pragma: no cover
        return "InfiniteWindow()"


class SequenceWindow(WindowSpec):
    """The window of the ``w`` most recent points.

    A point with arrival index ``i`` is inside the window of the latest
    point ``l`` iff ``i > l - w``.

    >>> spec = SequenceWindow(3)
    >>> latest = StreamPoint((0.0,), 10)
    >>> spec.in_window(StreamPoint((0.0,), 8), latest)
    True
    >>> spec.in_window(StreamPoint((0.0,), 7), latest)
    False
    """

    def __init__(self, w: int) -> None:
        if w < 1:
            raise ParameterError(f"window size must be >= 1, got {w}")
        self._w = int(w)

    def in_window(self, point: StreamPoint, latest: StreamPoint) -> bool:
        return point.index > latest.index - self._w

    def expiry_key(self, point: StreamPoint) -> float:
        return float(point.index)

    def eviction_cutoff(self, latest: StreamPoint) -> float:
        return float(latest.index - self._w)

    @property
    def size(self) -> float:
        return float(self._w)

    def __repr__(self) -> str:  # pragma: no cover
        return f"SequenceWindow({self._w})"


class TimeWindow(WindowSpec):
    """The window of points that arrived in the last ``w`` time units.

    A point with timestamp ``s`` is inside the window of the latest point
    at time ``t`` iff ``s > t - w``.

    >>> spec = TimeWindow(5.0)
    >>> latest = StreamPoint((0.0,), 99, 100.0)
    >>> spec.in_window(StreamPoint((0.0,), 1, 95.5), latest)
    True
    >>> spec.in_window(StreamPoint((0.0,), 1, 95.0), latest)
    False
    """

    def __init__(self, w: float) -> None:
        if w <= 0:
            raise ParameterError(f"window duration must be positive, got {w}")
        self._w = float(w)

    def in_window(self, point: StreamPoint, latest: StreamPoint) -> bool:
        return point.time > latest.time - self._w

    def expiry_key(self, point: StreamPoint) -> float:
        return point.time

    def eviction_cutoff(self, latest: StreamPoint) -> float:
        return latest.time - self._w

    @property
    def size(self) -> float:
        return self._w

    def __repr__(self) -> str:  # pragma: no cover
        return f"TimeWindow({self._w})"
