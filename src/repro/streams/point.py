"""The unit of streaming input: an immutable point with arrival metadata."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence


@dataclass(frozen=True, slots=True)
class StreamPoint:
    """A point of the stream.

    Attributes
    ----------
    vector:
        Coordinates in R^d, stored as a tuple so points are hashable and
        comparisons are exact.
    index:
        0-based arrival position in the stream; drives the sequence-based
        sliding window and identifies "the first point of a group".
    time:
        Arrival timestamp; drives the time-based sliding window.  Defaults
        to the arrival index (so sequence- and time-based windows coincide
        unless explicit timestamps are supplied).
    """

    vector: tuple[float, ...]
    index: int
    time: float = field(default=-1.0)

    def __post_init__(self) -> None:
        if not isinstance(self.vector, tuple):
            object.__setattr__(self, "vector", tuple(float(x) for x in self.vector))
        if self.time < 0:
            object.__setattr__(self, "time", float(self.index))

    @property
    def dim(self) -> int:
        """Dimensionality of the point."""
        return len(self.vector)

    def __iter__(self) -> Iterator[float]:
        return iter(self.vector)

    def __len__(self) -> int:
        return len(self.vector)


def as_stream(
    vectors: Iterable[Sequence[float]],
    *,
    times: Iterable[float] | None = None,
    start_index: int = 0,
) -> Iterator[StreamPoint]:
    """Wrap raw coordinate sequences into :class:`StreamPoint` objects.

    Parameters
    ----------
    vectors:
        Iterable of coordinate sequences.
    times:
        Optional iterable of timestamps, consumed in lockstep with
        ``vectors``.  When omitted, each point's time equals its index.
    start_index:
        Index assigned to the first point (useful when concatenating).

    Examples
    --------
    >>> pts = list(as_stream([(0.0, 0.0), (1.0, 1.0)]))
    >>> pts[1].index, pts[1].time
    (1, 1.0)
    """
    if times is None:
        for i, vector in enumerate(vectors, start=start_index):
            yield StreamPoint(tuple(float(x) for x in vector), i)
    else:
        time_iter = iter(times)
        for i, vector in enumerate(vectors, start=start_index):
            yield StreamPoint(
                tuple(float(x) for x in vector), i, float(next(time_iter))
            )
