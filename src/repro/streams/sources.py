"""Stream construction utilities.

The paper randomly shuffles every dataset before feeding it as a stream
(Section 6.1); :func:`shuffled` does exactly that while re-assigning fresh
arrival indices.  The other helpers build richer streams for the examples
and the sliding-window experiments.
"""

from __future__ import annotations

import heapq
import random
from typing import Iterable, Iterator, Sequence

from repro.streams.point import StreamPoint, as_stream


def shuffled(
    vectors: Sequence[Sequence[float]],
    *,
    rng: random.Random | None = None,
) -> list[StreamPoint]:
    """Return the vectors in random order wrapped as a stream.

    Arrival indices are assigned *after* shuffling, so the result is a
    valid stream (indices 0..n-1 in order).

    >>> pts = shuffled([(0.0,), (1.0,), (2.0,)], rng=random.Random(0))
    >>> [p.index for p in pts]
    [0, 1, 2]
    """
    rng = rng if rng is not None else random.Random()
    order = list(vectors)
    rng.shuffle(order)
    return list(as_stream(order))


def replay(points: Iterable[StreamPoint]) -> Iterator[StreamPoint]:
    """Re-emit existing stream points with re-normalised arrival indices.

    Useful when concatenating or filtering streams: downstream samplers
    assume indices are consecutive from 0.
    """
    for i, point in enumerate(points):
        yield StreamPoint(point.vector, i, point.time)


def with_poisson_times(
    vectors: Iterable[Sequence[float]],
    *,
    rate: float,
    rng: random.Random | None = None,
) -> Iterator[StreamPoint]:
    """Assign Poisson-process arrival timestamps (exponential gaps).

    Drives the time-based sliding-window experiments, where wall-clock
    arrival patterns differ from arrival counts.

    Parameters
    ----------
    rate:
        Expected number of arrivals per unit time (> 0).
    """
    if rate <= 0:
        raise ValueError(f"arrival rate must be positive, got {rate}")
    rng = rng if rng is not None else random.Random()
    now = 0.0
    for i, vector in enumerate(vectors):
        now += rng.expovariate(rate)
        yield StreamPoint(tuple(float(x) for x in vector), i, now)


def interleave_streams(
    streams: Sequence[Sequence[StreamPoint]],
    *,
    rng: random.Random | None = None,
) -> list[StreamPoint]:
    """Merge several streams into one, ordering by timestamp.

    Ties are broken randomly; arrival indices are re-assigned.  Models the
    distributed-streams motivation (several feeds of near-duplicate items
    merged at an aggregator).
    """
    rng = rng if rng is not None else random.Random()
    keyed = [
        (point.time, rng.random(), point)
        for stream in streams
        for point in stream
    ]
    heapq.heapify(keyed)
    merged = []
    while keyed:
        _, _, point = heapq.heappop(keyed)
        merged.append(point)
    return list(replay(merged))
