"""The minimum-cardinality partition of Definition 1.4.

``F0(S, alpha)`` for a general dataset is the smallest number of groups of
diameter at most ``alpha`` covering ``S``.  This equals the minimum clique
cover of the graph connecting points within ``alpha`` - equivalently the
chromatic number of its complement - and is NP-hard in general, so:

* for small inputs (default ``n <= 24``) an exact branch-and-bound search
  is run (assign each point to a compatible existing group or open a new
  one, pruning on the best solution found);
* for larger inputs a greedy first-fit cover is returned together with the
  guarantee of Lemma 3.3 that it is within a constant factor of optimal.
"""

from __future__ import annotations

from typing import Sequence

from repro.geometry.distance import within_distance

Vector = Sequence[float]

#: Inputs up to this size use the exact exponential search by default.
EXACT_LIMIT = 24


def _compatibility(points: Sequence[Vector], alpha: float) -> list[list[bool]]:
    """Adjacency matrix of the "within alpha" graph."""
    n = len(points)
    compatible = [[False] * n for _ in range(n)]
    for i in range(n):
        compatible[i][i] = True
        for j in range(i + 1, n):
            ok = within_distance(points[i], points[j], alpha)
            compatible[i][j] = ok
            compatible[j][i] = ok
    return compatible


def _greedy_cover(
    points: Sequence[Vector], compatible: list[list[bool]]
) -> list[list[int]]:
    """First-fit clique cover: put each point into the first group whose
    members are all within alpha, else open a new group."""
    groups: list[list[int]] = []
    for i in range(len(points)):
        row = compatible[i]
        for group in groups:
            if all(row[j] for j in group):
                group.append(i)
                break
        else:
            groups.append([i])
    return groups


def _exact_cover(
    n: int, compatible: list[list[bool]], upper_bound: int
) -> list[list[int]]:
    """Branch-and-bound exact minimum clique cover.

    Classic graph-colouring style search on the complement graph: points
    are assigned in index order either to an existing compatible group or
    to a fresh group, pruning branches that cannot beat the best solution.
    """
    best: list[list[int]] = []
    best_size = upper_bound + 1

    groups: list[list[int]] = []

    def recurse(i: int) -> None:
        nonlocal best, best_size
        if len(groups) >= best_size:
            return
        if i == n:
            best = [list(g) for g in groups]
            best_size = len(groups)
            return
        row = compatible[i]
        for group in groups:
            if all(row[j] for j in group):
                group.append(i)
                recurse(i + 1)
                group.pop()
        if len(groups) + 1 < best_size:
            groups.append([i])
            recurse(i + 1)
            groups.pop()

    recurse(0)
    return best


def min_cardinality_partition(
    points: Sequence[Vector],
    alpha: float,
    *,
    exact_limit: int = EXACT_LIMIT,
) -> list[list[int]]:
    """Return a minimum-cardinality partition into diameter-alpha groups.

    Exact when ``len(points) <= exact_limit``; otherwise the greedy
    first-fit cover (a constant-factor approximation by Lemma 3.3).

    >>> min_cardinality_partition([(0.0,), (0.6,), (1.2,)], alpha=1.0)
    [[0, 1], [2]]
    """
    n = len(points)
    if n == 0:
        return []
    compatible = _compatibility(points, alpha)
    greedy = _greedy_cover(points, compatible)
    if n > exact_limit:
        return greedy
    exact = _exact_cover(n, compatible, upper_bound=len(greedy))
    return exact if exact else greedy


def min_cardinality_size(
    points: Sequence[Vector], alpha: float, *, exact_limit: int = EXACT_LIMIT
) -> int:
    """Return ``F0(S, alpha)`` per Definition 1.4 (exact for small inputs).

    >>> min_cardinality_size([(0.0,), (0.6,), (1.2,)], alpha=1.0)
    2
    """
    return len(min_cardinality_partition(points, alpha, exact_limit=exact_limit))
