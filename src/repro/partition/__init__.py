"""Ground-truth group partitions of point sets.

The samplers never materialise partitions; these utilities exist to define
*ground truth* for experiments and tests:

* :func:`~repro.partition.natural.natural_partition` - the unique natural
  partition of a well-separated dataset (Definition 1.3),
* :func:`~repro.partition.greedy.greedy_partition` - the greedy ball-cover
  process of Definition 3.2 (used by the Theorem 3.1 analysis),
* :func:`~repro.partition.min_cardinality.min_cardinality_partition` - the
  optimisation problem of Definition 1.4 (exact for small inputs).
"""

from repro.partition.greedy import greedy_partition
from repro.partition.min_cardinality import (
    min_cardinality_partition,
    min_cardinality_size,
)
from repro.partition.natural import (
    connected_components_within,
    is_well_separated,
    natural_partition,
    separation_gap,
)

__all__ = [
    "natural_partition",
    "connected_components_within",
    "is_well_separated",
    "separation_gap",
    "greedy_partition",
    "min_cardinality_partition",
    "min_cardinality_size",
]
