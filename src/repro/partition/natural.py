"""The natural partition of a well-separated dataset (Definitions 1.1-1.3).

A dataset is ``(alpha, beta)``-sparse when every pairwise distance is
either at most ``alpha`` or greater than ``beta``; it is *well-separated*
when the separation ratio ``beta / alpha`` exceeds 2.  For such data the
transitive closure of "within alpha" yields a unique partition into groups
of diameter at most ``alpha`` with inter-group distance above ``2 * alpha``
- the paper's natural partition, whose size is the robust ``F0``.

These routines are quadratic in the number of points; they provide ground
truth for experiments and tests, not streaming functionality.
"""

from __future__ import annotations

from typing import Sequence

from repro.geometry.distance import distance, within_distance

Vector = Sequence[float]


class _UnionFind:
    """Minimal union-find over indices 0..n-1 with path compression."""

    def __init__(self, n: int) -> None:
        self.parent = list(range(n))

    def find(self, i: int) -> int:
        root = i
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[i] != root:
            self.parent[i], i = root, self.parent[i]
        return root

    def union(self, i: int, j: int) -> None:
        ri, rj = self.find(i), self.find(j)
        if ri != rj:
            self.parent[rj] = ri


def connected_components_within(
    points: Sequence[Vector], alpha: float
) -> list[list[int]]:
    """Group point *indices* by the transitive closure of ``d <= alpha``.

    Components are returned in order of their smallest member index, which
    for a stream means "order of first arrival".

    >>> connected_components_within([(0.0,), (0.1,), (5.0,)], alpha=0.5)
    [[0, 1], [2]]
    """
    n = len(points)
    uf = _UnionFind(n)
    for i in range(n):
        pi = points[i]
        for j in range(i + 1, n):
            if within_distance(pi, points[j], alpha):
                uf.union(i, j)
    components: dict[int, list[int]] = {}
    for i in range(n):
        components.setdefault(uf.find(i), []).append(i)
    return sorted(components.values(), key=lambda member: member[0])


def natural_partition(points: Sequence[Vector], alpha: float) -> list[list[int]]:
    """Return the natural partition of a well-separated dataset.

    For well-separated data the connected components of the "within alpha"
    graph are exactly the natural groups.  The function does not verify
    separation (use :func:`is_well_separated`); on non-separated data it
    still returns the components, which then may have diameter > alpha.
    """
    return connected_components_within(points, alpha)


def separation_gap(points: Sequence[Vector], alpha: float) -> tuple[float, float]:
    """Return ``(max intra distance, min inter distance)`` w.r.t. ``alpha``.

    "Intra" means within a connected component of the within-alpha graph,
    "inter" across components.  ``min inter`` is ``inf`` when there is a
    single component.  Quadratic; for validation only.
    """
    components = connected_components_within(points, alpha)
    label = {}
    for g, members in enumerate(components):
        for i in members:
            label[i] = g
    max_intra = 0.0
    min_inter = float("inf")
    n = len(points)
    for i in range(n):
        for j in range(i + 1, n):
            d = distance(points[i], points[j])
            if label[i] == label[j]:
                max_intra = max(max_intra, d)
            else:
                min_inter = min(min_inter, d)
    return max_intra, min_inter


def is_well_separated(
    points: Sequence[Vector], alpha: float, *, ratio: float = 2.0
) -> bool:
    """Check Definition 1.2: groups of diameter <= alpha, gaps > ratio*alpha.

    >>> is_well_separated([(0.0,), (0.1,), (5.0,)], alpha=0.5)
    True
    >>> is_well_separated([(0.0,), (0.4,), (0.8,)], alpha=0.5)
    False
    """
    if not points:
        return True
    max_intra, min_inter = separation_gap(points, alpha)
    return max_intra <= alpha and min_inter > ratio * alpha
