"""The greedy ball-cover partition of Definition 3.2.

Pick any remaining point ``p``, form the group ``Ball(p, alpha) ∩ S``,
remove it, repeat.  Lemma 3.3 shows the number of greedy groups is within a
constant factor of the minimum-cardinality partition regardless of the pick
order; Theorem 3.1's proof identifies the sampler's behaviour on general
datasets with a greedy partition taken in arrival order, which is the
default order here.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.geometry.distance import within_distance

Vector = Sequence[float]


def greedy_partition(
    points: Sequence[Vector],
    alpha: float,
    *,
    order: Sequence[int] | None = None,
    rng: random.Random | None = None,
) -> list[list[int]]:
    """Partition point indices by the greedy ball-cover process.

    Parameters
    ----------
    points:
        The dataset.
    alpha:
        Ball radius; every produced group lies inside a ball of radius
        ``alpha`` around its seed point (so has diameter at most
        ``2 * alpha``).
    order:
        Order in which seed points are considered.  Defaults to arrival
        order (0..n-1), the order Theorem 3.1's proof uses.  Pass a
        permutation to explore other greedy partitions.
    rng:
        When given and ``order`` is omitted, a random pick order is drawn
        from it instead of arrival order.

    Returns
    -------
    list of groups, each a list of point indices; the first index of each
    group is its seed.

    >>> greedy_partition([(0.0,), (0.9,), (1.8,)], alpha=1.0)
    [[0, 1], [2]]
    """
    n = len(points)
    if order is not None:
        if sorted(order) != list(range(n)):
            raise ValueError("order must be a permutation of range(len(points))")
        pick_order = list(order)
    elif rng is not None:
        pick_order = list(range(n))
        rng.shuffle(pick_order)
    else:
        pick_order = list(range(n))

    assigned = [False] * n
    groups: list[list[int]] = []
    for seed in pick_order:
        if assigned[seed]:
            continue
        seed_point = points[seed]
        group = [seed]
        assigned[seed] = True
        for j in range(n):
            if not assigned[j] and within_distance(seed_point, points[j], alpha):
                group.append(j)
                assigned[j] = True
        groups.append(group)
    return groups
