"""Vectorised geometry kernels: numpy twins of the scalar hot-path math.

The batched ingestion paths spend most of their per-point budget on
geometry - cell coordinates, cell identifiers, cell hashes, adjacency
neighbourhoods - recomputed point by point in Python.  This module
computes the same quantities for a whole chunk of points at once with
numpy, **bit-identically** to the scalar implementations they replace:

* :func:`cell_coords_chunk` - the floor-division cell assignment of
  :meth:`repro.geometry.grid.Grid.cell_of` (numpy's ``floor_divide``
  implements CPython's float ``//`` semantics exactly);
* :func:`fractional_positions_chunk` - the clamped per-axis distances of
  :meth:`~repro.geometry.grid.Grid.fractional_position`, computed with
  the identical IEEE operation sequence;
* :func:`tuple_hashes` / :func:`cell_ids_chunk` - CPython's int and
  tuple hashing (the xxHash-style combiner of ``Objects/tupleobject.c``)
  re-implemented in uint64 lanes, then the splitmix64 finalisation of
  :meth:`~repro.geometry.grid.Grid.cell_id`;
* :func:`splitmix64_chunk` - the splitmix64 finalizer over an array;
* :func:`adjacent_cells_chunk` - the pruned ``adj(p)`` enumeration of
  :func:`repro.geometry.adjacency.collect_adjacent` for every point of a
  chunk, producing the identical cells in the identical order
  (vectorised for the common ``dim <= 4`` grids; callers fall back to
  the scalar DFS above that);
* :func:`high_dim_ignore_probe` - a *conservative* sampled-cell
  membership probe usable at any dimension: ``True`` marks points that
  certainly have no sampled cell in ``adj(p)`` beyond their own cell, so
  the high-dimensional batch ignore filter no longer needs the
  (exponential in ``dim``) conservative cell neighbourhood.

Equality with the scalar path is not best-effort: record state (cells,
hash tuples) feeds ``state_fingerprint``, so any divergence - even a
1-ulp boundary flip in an adjacency cost - is a correctness bug.  The
differential suite in ``tests/test_geometry_kernels.py`` checks every
kernel against its scalar oracle over adversarial cell-boundary points.

numpy is a declared dependency (``setup.py``), but every import is
guarded so the scalar paths keep working on a stripped-down interpreter:
callers must check :data:`HAVE_NUMPY` (or use
:func:`repro.core.chunk_geometry.compute_chunk_geometry`, which does).
"""

from __future__ import annotations

from typing import Callable

try:  # pragma: no cover - the environment ships numpy
    import numpy as np
except ImportError:  # pragma: no cover - exercised only without numpy
    np = None  # type: ignore[assignment]

#: True when numpy is importable; every public kernel requires it.
HAVE_NUMPY = np is not None

#: Cell coordinates at or beyond this magnitude cannot be carried in the
#: int64 vector path (and the float64 they came from has long stopped
#: being integer-exact anyway); chunk builders fall back to scalar
#: big-int tuples for such points.
COORD_LIMIT = float(1 << 62)

#: Mersenne prime modulus of CPython's number hashing (``_PyHASH_MODULUS``).
_M61 = (1 << 61) - 1

#: Vectorised adjacency is generated from a dense per-axis offset table;
#: above this dimension (or this many table entries) the scalar DFS is
#: the better tool and :func:`adjacent_cells_chunk` returns ``None``.
MAX_ADJACENCY_DIM = 4
_MAX_ADJACENCY_TABLE = 4_000_000

if HAVE_NUMPY:
    _U64 = np.uint64
    _MASK64 = _U64(0xFFFFFFFFFFFFFFFF)
    # splitmix64 finalizer constants (Steele et al., OOPSLA 2014).
    _GAMMA = _U64(0x9E3779B97F4A7C15)
    _MIX_B = _U64(0xBF58476D1CE4E5B9)
    _MIX_C = _U64(0x94D049BB133111EB)
    _S30, _S27, _S31, _S33 = _U64(30), _U64(27), _U64(31), _U64(33)
    # CPython tuple-hash constants (xxHash primes, Objects/tupleobject.c).
    _XXPRIME_1 = _U64(11400714785074694791)
    _XXPRIME_2 = _U64(14029467366897019727)
    _XXPRIME_5 = _U64(2870177450012600261)
    _XXLEN_XOR = _XXPRIME_5 ^ _U64(3527539)


def splitmix64_chunk(values: "np.ndarray") -> "np.ndarray":
    """Vectorised :func:`repro.hashing.mix.splitmix64` over uint64 lanes.

    ``values`` must be a ``uint64`` array; returns a new ``uint64`` array
    with ``out[i] == splitmix64(int(values[i]))`` for every lane.
    """
    z = values + _GAMMA
    z = (z ^ (z >> _S30)) * _MIX_B
    z = (z ^ (z >> _S27)) * _MIX_C
    return z ^ (z >> _S31)


def int_hash_lanes(coords: "np.ndarray") -> "np.ndarray":
    """CPython ``hash(int)`` of every int64 entry, as unsigned 64-bit lanes.

    ``hash(n)`` is ``n mod (2^61 - 1)`` with the sign carried through and
    the value ``-1`` remapped to ``-2``; the unsigned lane is its two's
    complement image, exactly what the tuple-hash combiner consumes.
    Entries must satisfy ``|n| < 2^62`` (the :data:`COORD_LIMIT` the
    chunk builders enforce).
    """
    reduced = np.abs(coords) % _M61
    signed = np.where(coords < 0, -reduced, reduced)
    signed[signed == -1] = -2
    return signed.astype(np.uint64)


def tuple_hashes(coords: "np.ndarray") -> "np.ndarray":
    """CPython ``hash(tuple_of_ints) & (2^64 - 1)`` for every row.

    Replicates ``tuplehash`` from ``Objects/tupleobject.c`` (the
    xxHash-style combiner used since CPython 3.8) over uint64 lanes, one
    row of ``coords`` per output value.  Int hashing is not randomised
    by ``PYTHONHASHSEED``, so the values are stable across processes -
    the property :meth:`repro.geometry.grid.Grid.cell_id` relies on.
    """
    lanes = int_hash_lanes(coords)
    length = coords.shape[1]
    acc = np.full(coords.shape[0], _XXPRIME_5, dtype=np.uint64)
    for axis in range(length):
        acc = acc + lanes[:, axis] * _XXPRIME_2
        acc = (acc << _S31) | (acc >> _S33)
        acc = acc * _XXPRIME_1
    acc = acc + (_U64(length) ^ _XXLEN_XOR)
    acc[acc == _MASK64] = _U64(1546275796)
    return acc


def cell_ids_chunk(coords: "np.ndarray") -> "np.ndarray":
    """:meth:`Grid.cell_id <repro.geometry.grid.Grid.cell_id>` per row:
    ``splitmix64(hash(cell) & MASK64)`` as a uint64 array."""
    return splitmix64_chunk(tuple_hashes(coords))


def cell_coords_chunk(
    shifted: "np.ndarray", side: float
) -> "np.ndarray":
    """Float cell coordinates ``(x - offset) // side`` for a whole chunk.

    ``shifted`` is the pre-shifted ``(n, dim)`` coordinate array
    (``points - grid.offset``).  numpy's ``floor_divide`` implements the
    same fmod-then-floor algorithm as CPython's float ``//``, so every
    entry equals the scalar ``(x - o) // side`` bit for bit; non-finite
    inputs yield non-finite outputs (the caller truncates there and lets
    the scalar path reproduce the exact error).
    """
    with np.errstate(invalid="ignore", divide="ignore", over="ignore"):
        return np.floor_divide(shifted, side)


def fractional_positions_chunk(
    shifted: "np.ndarray", cells_f: "np.ndarray", side: float
) -> "np.ndarray":
    """Clamped per-axis distances to the cell's lower face, per point.

    Matches :meth:`Grid.fractional_position
    <repro.geometry.grid.Grid.fractional_position>` operation for
    operation: ``(x - o) - ((x - o) // side) * side`` with the result
    clamped into ``[0, side]`` against floating-point drift.
    """
    return np.clip(shifted - cells_f * side, 0.0, side)


def adjacent_cells_chunk(
    coords: "np.ndarray",
    fracs: "np.ndarray",
    side: float,
    radius: float,
) -> "tuple[np.ndarray, np.ndarray] | None":
    """Enumerate ``adj(p)`` for every point of a chunk, vectorised.

    Returns ``(cells, counts)``: ``cells`` is an int64 ``(k, dim)`` array
    of adjacency cells, ``counts[i]`` how many of its rows belong to
    point ``i`` (rows are grouped by point, in point order), such that
    point ``i``'s rows equal
    ``collect_adjacent(grid, p_i, radius, base_cell=cell(p_i))`` - the
    same cells in the same enumeration order (the per-axis
    ``0, -1, ..., +1, ...`` move order with later axes outermost).

    Returns ``None`` when the dimension exceeds
    :data:`MAX_ADJACENCY_DIM` or the dense offset table would be
    unreasonably large (tiny ``side`` relative to ``radius``); callers
    then use the scalar DFS, which handles any configuration.
    """
    n, dim = coords.shape
    if dim > MAX_ADJACENCY_DIM:
        return None
    if radius < 0:
        return (
            np.empty((0, dim), dtype=np.int64),
            np.zeros(n, dtype=np.int64),
        )
    radius_sq = radius * radius
    # One extra step of headroom over floor(radius/side): float floor
    # division can round down (1.0 // 0.1 == 9.0) while the scalar
    # _axis_moves loop still admits the next offset whenever its product
    # rounds within the budget; surplus offsets are infeasible by
    # construction and the total-cost mask below discards them.
    j_max = int(radius // side) + 2
    m = 2 * j_max + 1
    if n * (m**dim) > _MAX_ADJACENCY_TABLE:
        return None

    # Per-axis offsets in _axis_moves order: 0, -1..-J, +1..+J.  A move
    # is feasible when its squared distance fits the remaining budget;
    # infeasible moves survive into the dense table and are masked out
    # by the total-cost test below (their cost alone already exceeds
    # radius_sq, and float addition of non-negatives never decreases).
    offsets = np.empty(m, dtype=np.int64)
    offsets[0] = 0
    offsets[1 : j_max + 1] = -np.arange(1, j_max + 1)
    offsets[j_max + 1 :] = np.arange(1, j_max + 1)
    # (j - 1) * side for j = 1..J, computed exactly as the scalar code.
    steps = (np.arange(1, j_max + 1, dtype=np.float64) - 1.0) * side
    cost = np.empty((n, dim, m), dtype=np.float64)
    cost[:, :, 0] = 0.0
    minus = fracs[:, :, None] + steps[None, None, :]
    cost[:, :, 1 : j_max + 1] = minus * minus
    plus = (side - fracs)[:, :, None] + steps[None, None, :]
    cost[:, :, j_max + 1 :] = plus * plus

    # Accumulate axis costs left-associatively (acc + cost), the same
    # float expression the scalar construction evaluates; the final
    # total <= radius_sq test subsumes the scalar path's intermediate
    # prefix pruning because float addition of non-negative costs is
    # monotone.  The accumulated block keeps later axes outermost, so
    # np.nonzero walks cells in the scalar enumeration order.
    total = cost[:, 0, :]
    for axis in range(1, dim):
        axis_cost = cost[:, axis, :].reshape((n, m) + (1,) * axis)
        total = total[:, None] + axis_cost
    mask = total <= radius_sq

    index = np.nonzero(mask)
    point = index[0]
    cells = np.empty((point.shape[0], dim), dtype=np.int64)
    for axis in range(dim):
        cells[:, axis] = coords[point, axis] + offsets[index[dim - axis]]
    counts = np.bincount(point, minlength=n)
    return cells, counts


def low_dim_ignore_probe(
    coords: "np.ndarray",
    fracs: "np.ndarray",
    side: float,
    radius: float,
    mask: int,
    hash_coords: "Callable[[np.ndarray], np.ndarray]",
) -> "np.ndarray | None":
    """Exact "no sampled cell in ``adj(p)``" verdict per point (small dims).

    The vectorised twin of the scalar dim<=2 corner filter: instead of
    testing each point against the corner boxes of the sampled cells of
    its *conservative* neighbourhood, enumerate ``adj(p)`` itself with
    :func:`adjacent_cells_chunk` (bit-identical to the exact path's
    adjacency), hash every cell (``hash_coords``, memo-aware) and test
    against ``mask``.  ``True`` entries have **no** sampled cell in
    ``adj(p)`` - the exact founding path would ignore them outright -
    so unlike the corner filter the probe is exact, not conservative:
    ``False`` entries certainly have a sampled cell in ``adj(p)`` and
    can skip the corner test and go straight to the founding path.

    The enumeration includes the point's own cell; callers consult the
    probe only for points whose own cell is unsampled, where that row
    never matches.  Verdicts nest across mid-chunk rate doublings
    exactly like :func:`high_dim_ignore_probe`'s (the sampled set only
    shrinks), so one probe per chunk suffices for ``True`` entries;
    ``False`` entries re-test against the live mask on the exact path.

    Returns ``None`` when :func:`adjacent_cells_chunk` cannot serve the
    configuration (dimension or table size); callers then keep the
    scalar corner filter.
    """
    result = adjacent_cells_chunk(coords, fracs, side, radius)
    if result is None:
        return None
    n = coords.shape[0]
    cells, counts = result
    if cells.shape[0] == 0:
        return np.ones(n, dtype=bool)
    sampled = (hash_coords(cells) & _U64(mask)) == 0
    owners = np.repeat(np.arange(n), counts)
    return np.bincount(owners[sampled], minlength=n) == 0


def high_dim_ignore_probe(
    coords: "np.ndarray",
    fracs: "np.ndarray",
    side: float,
    radius: float,
    mask: int,
    hash_coords: "Callable[[np.ndarray], np.ndarray]",
) -> "np.ndarray | None":
    """Conservative "no sampled cell in ``adj(p)`` beyond ``cell(p)``" probe.

    For grids whose cells are strictly larger than ``radius`` (the
    ``dim > 2`` default, side ``radius * dim``), every adjacency offset
    is ``-1/0/+1`` per axis.  The probe marks a point ``True`` only when
    it is *certain* no sampled cell exists in ``adj(p)`` other than
    possibly its own cell:

    * an axis move is feasible only when its squared distance fits
      within ``radius^2 * (1 + 1e-9)`` (over-inclusive, so boundary
      points always reach the exact path);
    * every feasible single-axis neighbour is hashed (``hash_coords``,
      memo-aware) and tested against ``mask``;
    * multi-axis (diagonal) neighbours whose summed per-axis costs fit
      the budget are *enumerated and hashed too* (a pruned DFS over the
      feasible ``{-1, 0, +1}`` offsets, run only for the points whose
      two cheapest axis moves fit the budget together - corner-parked
      points, typically few); a point whose feasible enumeration would
      exceed :data:`_DIAGONAL_CELL_CAP` cells falls back to the old
      conservative verdict (sent to the exact path).

    Returns a bool array (``True`` = certainly ignorable when the
    point's own cell is unsampled), or ``None`` when ``side`` is not
    strictly larger than the radius budget (multi-step offsets would be
    possible and the probe's premise breaks - callers fall back to the
    exact path for the whole chunk).

    Because sampling decisions are nested across rates (Fact 1(b)), a
    verdict computed at rate mask ``R - 1`` stays valid after the rate
    doubles mid-chunk: the sampled-cell set only shrinks.
    """
    n, dim = coords.shape
    budget = radius * radius * (1.0 + 1e-9)
    if side * side <= budget:
        return None
    minus_cost = fracs * fracs
    rem = side - fracs
    plus_cost = rem * rem
    feasible_minus = minus_cost <= budget
    feasible_plus = plus_cost <= budget

    # Sampled single-axis neighbours (the only adjacency cells the probe
    # inspects exactly).
    hit = np.zeros(n, dtype=bool)
    neighbour_blocks = []
    owner_blocks = []
    for sign, feasible in ((-1, feasible_minus), (1, feasible_plus)):
        point, axis = np.nonzero(feasible)
        if point.size == 0:
            continue
        neighbours = coords[point].copy()
        neighbours[np.arange(point.size), axis] += sign
        neighbour_blocks.append(neighbours)
        owner_blocks.append(point)
    if neighbour_blocks:
        neighbours = np.concatenate(neighbour_blocks)
        owners = np.concatenate(owner_blocks)
        sampled = (hash_coords(neighbours) & _U64(mask)) == 0
        if sampled.any():
            hit = np.bincount(owners[sampled], minlength=n) > 0

    # Feasible diagonal neighbourhood: the two cheapest feasible axis
    # moves fitting the budget together means some multi-axis cell may
    # lie within the radius.  Those cells used to be a conservative
    # give-up; enumerate and hash them instead (the candidate points
    # are corner-parked and few, so the per-point DFS is cheap), so a
    # point whose whole feasible diagonal set is unsampled is still
    # certainly ignorable.
    if dim >= 2:
        axis_min = np.where(feasible_minus, minus_cost, np.inf)
        axis_min = np.minimum(
            axis_min, np.where(feasible_plus, plus_cost, np.inf)
        )
        cheapest_two = np.partition(axis_min, 1, axis=1)[:, :2]
        maybe = (cheapest_two.sum(axis=1) <= budget) & ~hit
        diagonal = np.zeros(n, dtype=bool)
        if maybe.any():
            candidates = np.nonzero(maybe)[0]
            minus_list = minus_cost[candidates].tolist()
            plus_list = plus_cost[candidates].tolist()
            coords_list = coords[candidates].tolist()
            cell_rows: list[list[int]] = []
            owner_rows: list[int] = []
            for position, index in enumerate(candidates.tolist()):
                cells = _feasible_diagonal_cells(
                    coords_list[position],
                    minus_list[position],
                    plus_list[position],
                    budget,
                )
                if cells is None:
                    # Cap exceeded: keep the old conservative verdict
                    # for this point (exact path decides).
                    diagonal[index] = True
                else:
                    cell_rows.extend(cells)
                    owner_rows.extend([index] * len(cells))
            if cell_rows:
                sampled = (
                    hash_coords(np.array(cell_rows, dtype=np.int64))
                    & _U64(mask)
                ) == 0
                if sampled.any():
                    owners = np.array(owner_rows, dtype=np.intp)
                    diagonal |= (
                        np.bincount(owners[sampled], minlength=n) > 0
                    )
        return ~(hit | diagonal)
    return ~hit


#: Per-point bound on enumerated feasible diagonal cells in
#: :func:`high_dim_ignore_probe`; beyond it the point keeps the old
#: conservative "send to the exact path" verdict.
_DIAGONAL_CELL_CAP = 512


def _feasible_diagonal_cells(
    cell: list, minus_cost: list, plus_cost: list, budget: float
) -> list[list[int]] | None:
    """Multi-axis ``{-1, 0, +1}`` neighbours within the cost budget.

    A pruned DFS over per-axis offsets: offset ``-1`` on axis ``a``
    costs ``minus_cost[a]`` (the squared distance to the lower face),
    ``+1`` costs ``plus_cost[a]``, ``0`` is free; a cell is feasible
    when its total cost fits ``budget``.  Only combinations with at
    least two non-zero offsets are returned (single-axis neighbours are
    hashed separately, the all-zero row is the point's own cell).  The
    summed costs bound the true squared distance from below exactly as
    the scalar adjacency does, and ``budget`` carries the caller's
    over-inclusive headroom, so the result is a superset of the true
    diagonal ``adj(p)`` cells.  Returns ``None`` when more than
    :data:`_DIAGONAL_CELL_CAP` cells would be produced.
    """
    dim = len(cell)
    out: list[list[int]] = []
    row = list(cell)

    def walk(axis: int, cost: float, moved: int) -> bool:
        if axis == dim:
            if moved >= 2:
                out.append(list(row))
                if len(out) > _DIAGONAL_CELL_CAP:
                    return False
            return True
        if not walk(axis + 1, cost, moved):
            return False
        base = row[axis]
        down = cost + minus_cost[axis]
        if down <= budget:
            row[axis] = base - 1
            if not walk(axis + 1, down, moved + 1):
                row[axis] = base
                return False
            row[axis] = base
        up = cost + plus_cost[axis]
        if up <= budget:
            row[axis] = base + 1
            if not walk(axis + 1, up, moved + 1):
                row[axis] = base
                return False
            row[axis] = base
        return True

    if not walk(0, 0.0, 0):
        return None
    return out
