"""Euclidean-space substrate: distances, random grids and cell adjacency.

The samplers post a random grid over R^d (Section 2.1) and make all
sampling decisions on grid-cell identifiers.  This subpackage provides:

* :mod:`repro.geometry.distance` - squared/plain Euclidean distances with
  early-abort variants used in the hot path,
* :mod:`repro.geometry.grid` - the random grid, ``cell(p)`` and stable
  64-bit cell identifiers,
* :mod:`repro.geometry.adjacency` - ``adj(p)`` via the DFS pruned search of
  the paper's Algorithms 6-7, plus a brute-force reference implementation.
"""

from repro.geometry.adjacency import (
    adjacent_cells,
    any_adjacent_cell,
    brute_force_adjacent_cells,
    collect_adjacent,
)
from repro.geometry.distance import (
    distance,
    squared_distance,
    within_distance,
)
from repro.geometry.grid import Grid

__all__ = [
    "Grid",
    "distance",
    "squared_distance",
    "within_distance",
    "adjacent_cells",
    "any_adjacent_cell",
    "brute_force_adjacent_cells",
    "collect_adjacent",
]
