"""Euclidean distance helpers.

Points are plain tuples of floats throughout the library (hashable, exact
to compare, cheap at the dimensions the paper evaluates).  The streaming
hot path only ever needs *threshold* tests ``d(u, v) <= alpha``, so
:func:`within_distance` compares squared distances and aborts early once
the running sum exceeds the threshold - in well-separated data most pairs
fail on the first few coordinates.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.errors import DimensionMismatchError

Vector = Sequence[float]


def _check_dims(u: Vector, v: Vector) -> None:
    if len(u) != len(v):
        raise DimensionMismatchError(
            f"points have different dimensions: {len(u)} vs {len(v)}"
        )


def squared_distance(u: Vector, v: Vector) -> float:
    """Return ``||u - v||^2``.

    >>> squared_distance((0.0, 0.0), (3.0, 4.0))
    25.0
    """
    _check_dims(u, v)
    return sum((a - b) * (a - b) for a, b in zip(u, v))


def distance(u: Vector, v: Vector) -> float:
    """Return the Euclidean distance ``||u - v||``.

    >>> distance((0.0, 0.0), (3.0, 4.0))
    5.0
    """
    _check_dims(u, v)
    return math.dist(u, v)


def within_distance(u: Vector, v: Vector, threshold: float) -> bool:
    """True when ``||u - v|| <= threshold``, with early abort.

    The loop accumulates squared coordinate differences and stops as soon
    as the partial sum already exceeds ``threshold**2``; this is the single
    most frequent operation of every sampler (Line 4 of Algorithm 1).

    >>> within_distance((0.0, 0.0), (3.0, 4.0), 5.0)
    True
    >>> within_distance((0.0, 0.0), (3.0, 4.0), 4.99)
    False
    """
    _check_dims(u, v)
    limit = threshold * threshold
    acc = 0.0
    for a, b in zip(u, v):
        diff = a - b
        acc += diff * diff
        if acc > limit:
            return False
    return True
