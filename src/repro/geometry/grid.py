"""The random grid posted over R^d (Section 2.1).

A :class:`Grid` is an axis-aligned partition of R^d into hypercubes of a
given side length, shifted by a random offset drawn uniformly from
``[0, side)^d``.  The random shift is what makes "a group's bounding ball is
cut by cell boundaries" a probabilistic event (used by Lemma 4.2).

Cells are identified by their integer coordinate tuples; a stable 64-bit
mixing of the tuple plays the role of the paper's numerical cell ID (the
paper assigns ``(i - 1) * Delta + j``; any injective-in-practice numbering
independent of the sampling hash works, and mixing avoids having to bound
the coordinate range up front).
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from repro.errors import DimensionMismatchError, ParameterError
from repro.hashing.mix import splitmix64

Cell = tuple[int, ...]

_MASK64 = (1 << 64) - 1


class Grid:
    """A randomly shifted grid of side length ``side`` over R^dim.

    Parameters
    ----------
    side:
        Cell side length (> 0).  The constant-dimension samplers use
        ``alpha / sqrt(d)`` so that the cell diameter is at most ``alpha``
        and Fact 1(a) holds; the high-dimensional sampler uses ``d * alpha``.
    dim:
        Dimensionality of the ambient space.
    rng:
        Source of randomness for the offset.  Ignored when ``offset`` is
        given.  Defaults to a fresh unseeded generator.
    offset:
        Explicit offset vector (each entry in ``[0, side)``); useful for
        deterministic tests.

    Examples
    --------
    >>> grid = Grid(side=1.0, dim=2, offset=(0.0, 0.0))
    >>> grid.cell_of((0.5, 1.5))
    (0, 1)
    >>> grid.cell_of((-0.1, 0.0))
    (-1, 0)
    """

    __slots__ = ("_side", "_dim", "_offset")

    def __init__(
        self,
        side: float,
        dim: int,
        *,
        rng: random.Random | None = None,
        offset: Sequence[float] | None = None,
    ) -> None:
        if side <= 0:
            raise ParameterError(f"grid side length must be positive, got {side}")
        if dim < 1:
            raise ParameterError(f"dimension must be >= 1, got {dim}")
        self._side = float(side)
        self._dim = dim
        if offset is not None:
            if len(offset) != dim:
                raise DimensionMismatchError(
                    f"offset has {len(offset)} coordinates, expected {dim}"
                )
            for value in offset:
                if not 0 <= value < side:
                    raise ParameterError(
                        f"offset entries must lie in [0, side); got {value}"
                    )
            self._offset = tuple(float(v) for v in offset)
        else:
            rng = rng if rng is not None else random.Random()
            self._offset = tuple(rng.uniform(0.0, self._side) for _ in range(dim))

    @property
    def side(self) -> float:
        """Cell side length."""
        return self._side

    @property
    def dim(self) -> int:
        """Dimensionality of the grid."""
        return self._dim

    @property
    def offset(self) -> tuple[float, ...]:
        """The random shift of the grid, one entry per dimension."""
        return self._offset

    def _check_point(self, point: Sequence[float]) -> None:
        if len(point) != self._dim:
            raise DimensionMismatchError(
                f"point has {len(point)} coordinates, grid expects {self._dim}"
            )

    def cell_of(self, point: Sequence[float]) -> Cell:
        """Return the integer coordinates of the cell containing ``point``."""
        self._check_point(point)
        side = self._side
        return tuple(
            int((x - o) // side) for x, o in zip(point, self._offset)
        )

    def cell_id(self, cell: Cell) -> int:
        """Return a stable integer identifier for a cell coordinate tuple.

        Plays the role of the paper's numerical cell ID.  CPython's tuple
        hash is used for the combination: for tuples of ints it is a
        deterministic, well-mixed function of the contents (int hashing is
        not randomised by PYTHONHASHSEED), and it runs at C speed - this
        sits on the hot path of every insert.  A final splitmix64 round
        decorrelates it from any structure of the coordinates.
        """
        return splitmix64(hash(cell) & _MASK64)

    def cell_id_of(self, point: Sequence[float]) -> int:
        """Shorthand for ``cell_id(cell_of(point))``."""
        return self.cell_id(self.cell_of(point))

    def lower_corner(self, cell: Cell) -> tuple[float, ...]:
        """Return the coordinates of the cell's lower corner."""
        if len(cell) != self._dim:
            raise DimensionMismatchError(
                f"cell has {len(cell)} coordinates, grid expects {self._dim}"
            )
        return tuple(o + c * self._side for o, c in zip(self._offset, cell))

    def fractional_position(self, point: Sequence[float]) -> tuple[float, ...]:
        """Return per-dimension distances from ``point`` to its cell's lower face.

        Each entry lies in ``[0, side)`` (clamped against floating-point
        drift); used by the adjacency search to compute move distances.
        """
        self._check_point(point)
        side = self._side
        fractions = []
        for x, o in zip(point, self._offset):
            frac = (x - o) - ((x - o) // side) * side
            if frac < 0.0:
                frac = 0.0
            elif frac >= side:
                frac = side
            fractions.append(frac)
        return tuple(fractions)

    def min_squared_distance(self, point: Sequence[float], cell: Cell) -> float:
        """Exact squared distance from ``point`` to the closed cell ``cell``."""
        self._check_point(point)
        side = self._side
        acc = 0.0
        for x, o, c in zip(point, self._offset, cell):
            low = o + c * side
            high = low + side
            if x < low:
                diff = low - x
            elif x > high:
                diff = x - high
            else:
                diff = 0.0
            acc += diff * diff
        return acc

    def cells_within(self, points: Iterable[Sequence[float]]) -> set[Cell]:
        """Return the set of cells occupied by ``points`` (convenience)."""
        return {self.cell_of(p) for p in points}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Grid(side={self._side}, dim={self._dim})"
