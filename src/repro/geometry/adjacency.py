"""Computing ``adj(p)`` - the cells within distance ``alpha`` of a point.

Section 6.2 of the paper observes that naively enumerating the 3^d
neighbouring cells and testing each takes Theta(d * 3^d) time, and replaces
it with a depth-first search over dimensions that accumulates the squared
move distance and prunes as soon as it exceeds ``alpha^2`` (Algorithms 6-7).

This module implements a slight generalisation of that search: the paper's
version only visits offsets -1/0/+1 per dimension (sufficient when the cell
side is at least ``alpha``, as in the high-dimensional setting of Section 4),
whereas the constant-dimension samplers use side ``alpha / sqrt(d)`` where
the neighbourhood can span several cells per axis.  The DFS below walks
offsets outwards per dimension in increasing move distance, so it remains
exact for any side length while keeping the pruning behaviour.

Two entry points are provided:

* :func:`adjacent_cells` yields every cell of ``adj(p)``;
* :func:`any_adjacent_cell` is the short-circuiting form used in the hot
  path ("is any cell of adj(p) sampled?") - it stops at the first match.

:func:`brute_force_adjacent_cells` is an oracle used by the tests.
"""

from __future__ import annotations

import math
from typing import Callable, Iterator, Sequence

from repro.geometry.grid import Cell, Grid


def _axis_moves(frac: float, side: float, budget_sq: float) -> list[tuple[int, float]]:
    """Return (offset, squared move distance) pairs feasible along one axis.

    ``frac`` is the point's distance to the lower face of its cell.  Offset
    0 costs nothing; offset -j costs ``frac + (j - 1) * side``; offset +j
    costs ``(side - frac) + (j - 1) * side``.  Only offsets whose squared
    cost alone does not exceed ``budget_sq`` are returned.
    """
    moves = [(0, 0.0)]
    j = 1
    while True:
        dist = frac + (j - 1) * side
        cost = dist * dist
        if cost > budget_sq:
            break
        moves.append((-j, cost))
        j += 1
    j = 1
    while True:
        dist = (side - frac) + (j - 1) * side
        cost = dist * dist
        if cost > budget_sq:
            break
        moves.append((j, cost))
        j += 1
    return moves


def collect_adjacent(
    grid: Grid,
    point: Sequence[float],
    radius: float,
    *,
    base_cell: Cell | None = None,
) -> list[Cell]:
    """Return ``adj(point)`` as a list (hot-path form, no generators).

    Iterative breadth-wise construction over dimensions: the partial
    prefixes carry their accumulated squared move distance, and a prefix is
    extended by an axis move only while the accumulated distance stays
    within ``radius`` - the same pruning as the paper's DFS, organised for
    minimal Python overhead.  Dimensions 1 and 2 (the Section 2 setting,
    where this sits on the candidate-founding hot path) run specialised
    loops producing the identical cells in the identical order.
    """
    if radius < 0:
        return []
    radius_sq = radius * radius
    if base_cell is None:
        base_cell = grid.cell_of(point)
    fractions = grid.fractional_position(point)
    side = grid.side

    if len(base_cell) == 1:
        base = base_cell[0]
        return [
            (base + offset,)
            for offset, _ in _axis_moves(fractions[0], side, radius_sq)
        ]
    if len(base_cell) == 2:
        base_x, base_y = base_cell
        moves_x = _axis_moves(fractions[0], side, radius_sq)
        moves_y = _axis_moves(fractions[1], side, radius_sq)
        cells: list[Cell] = []
        append = cells.append
        # Same order (axis-1 moves outermost) and the same float
        # arithmetic (cost_x + cost_y, never a rearranged comparison) as
        # the generic construction below.
        for offset_y, cost_y in moves_y:
            y = base_y + offset_y
            for offset_x, cost_x in moves_x:
                if cost_x + cost_y <= radius_sq:
                    append((base_x + offset_x, y))
        return cells

    # partials: (cost so far, coordinate prefix)
    partials: list[tuple[float, tuple[int, ...]]] = [(0.0, ())]
    for axis, base in enumerate(base_cell):
        moves = _axis_moves(fractions[axis], side, radius_sq)
        extended: list[tuple[float, tuple[int, ...]]] = []
        append = extended.append
        for offset, cost in moves:
            coordinate = base + offset
            for acc, prefix in partials:
                total = acc + cost
                if total <= radius_sq:
                    append((total, prefix + (coordinate,)))
        partials = extended
    return [prefix for _, prefix in partials]


def adjacent_cells(grid: Grid, point: Sequence[float], radius: float) -> Iterator[Cell]:
    """Yield every cell ``C`` with ``d(point, C) <= radius``.

    Includes ``cell(point)`` itself (distance zero), matching the paper's
    definition of ``adj(p)``.

    >>> grid = Grid(side=1.0, dim=1, offset=(0.0,))
    >>> sorted(adjacent_cells(grid, (0.5,), 0.6))
    [(-1,), (0,), (1,)]
    """
    return iter(collect_adjacent(grid, point, radius))


def any_adjacent_cell(
    grid: Grid,
    point: Sequence[float],
    radius: float,
    predicate: Callable[[int], bool],
) -> bool:
    """True when some cell of ``adj(point)`` has ``predicate(cell_id)`` true.

    This is the short-circuiting form of Line 8 of Algorithm 1 ("exists a
    sampled cell in adj(p)"); it evaluates the predicate on cell IDs in
    enumeration order and stops at the first hit.
    """
    for cell in collect_adjacent(grid, point, radius):
        if predicate(grid.cell_id(cell)):
            return True
    return False


def brute_force_adjacent_cells(
    grid: Grid, point: Sequence[float], radius: float
) -> set[Cell]:
    """Reference implementation: test every cell in the bounding box.

    Exponential in the dimension - only suitable for tests, where it serves
    as the ground truth for :func:`adjacent_cells`.
    """
    if radius < 0:
        return set()
    base = grid.cell_of(point)
    # A cell at axis offset k is at distance >= (k - 1) * side, so only
    # offsets up to floor(radius / side) + 1 can qualify.
    span = int(math.floor(radius / grid.side)) + 1
    radius_sq = radius * radius
    result: set[Cell] = set()

    def recurse(axis: int, partial: list[int]) -> None:
        if axis == grid.dim:
            cell = tuple(partial)
            if grid.min_squared_distance(point, cell) <= radius_sq:
                result.add(cell)
            return
        for offset in range(-span, span + 1):
            partial.append(base[axis] + offset)
            recurse(axis + 1, partial)
            partial.pop()

    recurse(0, [])
    return result
