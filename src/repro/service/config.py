"""Frozen, validated configuration of the multi-tenant summary service.

A :class:`ServiceSpec` is to the serving layer what a
:class:`~repro.api.specs.SummarySpec` is to a single summary: immutable
declarative data, validated at construction, from which the live object
(here: the ASGI app and its tenant store) is built.  It names *which*
summary every tenant gets (a registry key plus the matching spec) and
*how* the service manages the tenant population (resident capacity,
idle TTL, envelope store, lock sharding, SSE cadence).

>>> from repro.api import F0InfiniteSpec
>>> spec = ServiceSpec(
...     summary="f0-infinite",
...     spec=F0InfiniteSpec(alpha=0.5, dim=2, seed=7, copies=3),
...     capacity=64,
... )
>>> spec.capacity
64
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

from repro.api.specs import SummarySpec
from repro.backends import make_backend
from repro.errors import ParameterError
from repro.service.stores import (
    BackendEnvelopeStore,
    EnvelopeStore,
    FileEnvelopeStore,
    MemoryEnvelopeStore,
)

#: Envelope-store choices ``ServiceSpec.store`` accepts (one per
#: :data:`repro.backends.BACKEND_NAMES` flavour).
STORE_NAMES = ("memory", "file", "redis")


@dataclass(frozen=True, kw_only=True)
class ServiceSpec:
    """What the service serves and how it manages tenants.

    Attributes
    ----------
    summary:
        Registry key of the summary kept per tenant (any key from
        :func:`repro.api.available`, including ``batch-pipeline``:
        eviction and shutdown close worker-owning summaries through
        their ``close()`` hook, so pipeline tenants cannot leak
        executors - see :meth:`repro.service.TenantStore.close`).
    spec:
        The summary spec every tenant is built from.  When ``spec.seed``
        is set, each tenant gets its own deterministically derived seed
        (see :meth:`repro.service.TenantStore.tenant_spec`), so restarts
        and serial replays reproduce per-tenant randomness exactly.
    capacity:
        Maximum tenants resident in memory; the least recently used is
        evicted to the envelope store beyond this.
    ttl_seconds:
        Idle time after which a resident tenant is evicted even under
        capacity (``None`` disables the TTL).
    lock_shards:
        Size of the asyncio lock table tenants hash onto.  More shards
        mean fewer false lock conflicts between distinct tenants; one
        shard serialises the whole service.
    store:
        Envelope store flavour - one state backend per choice
        (:mod:`repro.backends`): ``"memory"`` (default), ``"file"``
        (``store_path`` names the directory; evicted tenants then
        survive restarts) or ``"redis"`` (``store_url`` names the
        server; evicted tenants survive restarts *and* are visible to
        other machines; needs the ``[redis]`` extra).
    store_path:
        Directory of the file store (required iff ``store="file"``).
    store_url:
        ``redis://host:port/db`` URL (required iff ``store="redis"``).
    stream_interval:
        Default seconds between SSE events on ``GET /v1/{tenant}/stream``
        (overridable per request with ``?interval=``).
    """

    summary: str
    spec: SummarySpec
    capacity: int = 1024
    ttl_seconds: float | None = None
    lock_shards: int = 64
    store: Literal["memory", "file", "redis"] = "memory"
    store_path: str | None = None
    store_url: str | None = None
    stream_interval: float = 1.0

    def __post_init__(self) -> None:
        from repro.api import registry

        entry = registry.entry(self.summary)  # raises on unknown keys
        if not isinstance(self.spec, entry.spec_cls):
            raise ParameterError(
                f"summary {self.summary!r} expects a "
                f"{entry.spec_cls.__name__}, got {type(self.spec).__name__}"
            )
        if self.capacity < 1:
            raise ParameterError(
                f"capacity must be >= 1, got {self.capacity}"
            )
        if self.ttl_seconds is not None and self.ttl_seconds <= 0:
            raise ParameterError(
                f"ttl_seconds must be positive, got {self.ttl_seconds}"
            )
        if self.lock_shards < 1:
            raise ParameterError(
                f"lock_shards must be >= 1, got {self.lock_shards}"
            )
        if self.store not in STORE_NAMES:
            raise ParameterError(
                f"store must be one of {', '.join(STORE_NAMES)}, "
                f"got {self.store!r}"
            )
        if (self.store == "file") != (self.store_path is not None):
            raise ParameterError(
                "store_path is required for store='file' and meaningless "
                "otherwise"
            )
        if (self.store == "redis") != (self.store_url is not None):
            raise ParameterError(
                "store_url is required for store='redis' and meaningless "
                "otherwise"
            )
        if self.stream_interval <= 0:
            raise ParameterError(
                f"stream_interval must be positive, got {self.stream_interval}"
            )

    def build_store(self) -> EnvelopeStore:
        """The envelope store this spec describes.

        Built as the matching state backend behind the
        :class:`~repro.service.stores.BackendEnvelopeStore` adapter.
        ``store="redis"`` raises
        :class:`~repro.errors.BackendUnavailableError` here - at build
        time, not at spec validation - when the ``redis`` package is
        not installed.
        """
        if self.store == "memory":
            return MemoryEnvelopeStore()
        if self.store == "file":
            assert self.store_path is not None
            return FileEnvelopeStore(self.store_path)
        return BackendEnvelopeStore(
            make_backend(self.store, path=self.store_path, url=self.store_url)
        )
