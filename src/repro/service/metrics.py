"""Live service metrics: counters, ingest throughput, latency histograms.

The ``/metrics`` endpoint is how an operator sees the service without
attaching a debugger: per-route request/error counters with latency
histograms, the tenant population (resident / spilled / evictions /
restores, pulled live from the tenant store), and ingest throughput
(total points plus a sliding-window points-per-second rate).

Everything is plain Python - no client library - and the clock is
injectable so tests can drive the rate window deterministically.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Any, Callable

__all__ = ["LATENCY_BUCKETS_MS", "ServiceMetrics"]

#: Upper bounds (milliseconds) of the latency histogram buckets; one
#: implicit overflow bucket follows the last bound.
LATENCY_BUCKETS_MS = (1.0, 5.0, 25.0, 100.0, 500.0)

#: Seconds of ingest history the points-per-second rate averages over.
RATE_WINDOW_SECONDS = 60.0


class _RouteStats:
    """Counters and a latency histogram for one route template."""

    __slots__ = ("count", "errors", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.errors = 0
        self.buckets = [0] * (len(LATENCY_BUCKETS_MS) + 1)

    def observe(self, status: int, elapsed_seconds: float) -> None:
        self.count += 1
        if status >= 400:
            self.errors += 1
        elapsed_ms = elapsed_seconds * 1000.0
        for i, bound in enumerate(LATENCY_BUCKETS_MS):
            if elapsed_ms <= bound:
                self.buckets[i] += 1
                return
        self.buckets[-1] += 1

    def snapshot(self) -> dict[str, Any]:
        histogram = {
            f"le_{bound:g}ms": count
            for bound, count in zip(LATENCY_BUCKETS_MS, self.buckets)
        }
        histogram["overflow"] = self.buckets[-1]
        return {
            "count": self.count,
            "errors": self.errors,
            "latency_ms": histogram,
        }


class ServiceMetrics:
    """Aggregates what ``GET /metrics`` reports.

    Parameters
    ----------
    clock:
        Monotonic-seconds callable (default :func:`time.monotonic`);
        injectable so tests can step time explicitly.
    """

    def __init__(self, *, clock: Callable[[], float] | None = None) -> None:
        self._clock = clock if clock is not None else time.monotonic
        self._routes: dict[str, _RouteStats] = {}
        self._started = self._clock()
        self._points_total = 0
        self._ingests = 0
        # (timestamp, points) of recent ingests, pruned to the window.
        self._recent: deque[tuple[float, int]] = deque()

    def observe_request(
        self, route: str, status: int, elapsed_seconds: float
    ) -> None:
        """Record one handled request against its route template."""
        stats = self._routes.get(route)
        if stats is None:
            stats = self._routes[route] = _RouteStats()
        stats.observe(status, elapsed_seconds)

    def observe_ingest(self, points: int) -> None:
        """Record ``points`` ingested now (feeds the throughput rate)."""
        now = self._clock()
        self._points_total += points
        self._ingests += 1
        self._recent.append((now, points))
        self._prune(now)

    def _prune(self, now: float) -> None:
        horizon = now - RATE_WINDOW_SECONDS
        while self._recent and self._recent[0][0] < horizon:
            self._recent.popleft()

    def points_per_second(self) -> float:
        """Ingest rate over the last :data:`RATE_WINDOW_SECONDS`."""
        now = self._clock()
        self._prune(now)
        if not self._recent:
            return 0.0
        window = min(
            max(now - self._started, 1e-9), RATE_WINDOW_SECONDS
        )
        return sum(n for _, n in self._recent) / window

    def snapshot(
        self,
        tenants: dict[str, Any] | None = None,
        store: dict[str, Any] | None = None,
    ) -> dict[str, Any]:
        """The ``/metrics`` payload (plain JSON-compatible dict).

        ``store`` carries the envelope store's backend operation
        counters (puts / gets / deletes / CAS attempts and conflicts -
        see :meth:`repro.backends.StateBackend.stats`).
        """
        return {
            "uptime_seconds": max(self._clock() - self._started, 0.0),
            "tenants": dict(tenants or {}),
            "store": dict(store or {}),
            "ingest": {
                "requests": self._ingests,
                "points_total": self._points_total,
                "points_per_second": self.points_per_second(),
            },
            "routes": {
                route: stats.snapshot()
                for route, stats in sorted(self._routes.items())
            },
        }
