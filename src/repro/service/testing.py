"""In-process ASGI client: drive the service with no server installed.

The service is a plain ASGI callable, so a test (or an example, or a
notebook) does not need uvicorn or an HTTP stack to talk to it - this
client speaks the ASGI message protocol directly, in the same event
loop as the app.  That is what makes the concurrency tests sharp:
dozens of "network clients" are just coroutines interleaving on one
loop, with deterministic schedules and zero sockets.

>>> import asyncio
>>> from repro.api import F0InfiniteSpec
>>> from repro.service import ServiceSpec, create_app
>>> app = create_app(ServiceSpec(
...     summary="f0-infinite",
...     spec=F0InfiniteSpec(alpha=0.5, dim=1, seed=3, copies=3),
... ))
>>> client = ASGITestClient(app)
>>> async def demo():
...     resp = await client.post_json(
...         "/v1/alice/ingest", {"points": [[0.0], [9.0]]})
...     return resp.status, resp.json()["ingested"]
>>> asyncio.run(demo())
(200, 2)
"""

from __future__ import annotations

import asyncio
import json
from typing import Any

__all__ = ["ASGITestClient", "Response"]


class Response:
    """Status, headers and body of one in-process request."""

    def __init__(
        self, status: int, headers: dict[str, str], body: bytes
    ) -> None:
        self.status = status
        self.headers = headers
        self.body = body

    def json(self) -> Any:
        return json.loads(self.body.decode("utf-8"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Response(status={self.status}, body={self.body[:80]!r})"


def _split_target(target: str) -> tuple[str, bytes]:
    path, _, query = target.partition("?")
    return path, query.encode("latin-1")


def _scope(method: str, target: str, headers: list[tuple[bytes, bytes]]):
    path, query_string = _split_target(target)
    return {
        "type": "http",
        "asgi": {"version": "3.0", "spec_version": "2.3"},
        "http_version": "1.1",
        "method": method.upper(),
        "scheme": "http",
        "path": path,
        "raw_path": path.encode("latin-1"),
        "query_string": query_string,
        "headers": headers,
        "client": ("testclient", 0),
        "server": ("testserver", 80),
    }


def _collect_response(sent: list[dict]) -> Response:
    status = 500
    headers: dict[str, str] = {}
    body = b""
    for message in sent:
        if message["type"] == "http.response.start":
            status = message["status"]
            headers = {
                key.decode("latin-1").lower(): value.decode("latin-1")
                for key, value in message.get("headers", [])
            }
        elif message["type"] == "http.response.body":
            body += message.get("body", b"")
    return Response(status, headers, body)


class ASGITestClient:
    """Drive an ASGI app in-process (regular requests + SSE streams)."""

    def __init__(self, app) -> None:
        self.app = app

    async def request(
        self,
        method: str,
        target: str,
        *,
        body: bytes = b"",
        content_type: str = "application/json",
    ) -> Response:
        """One complete request/response cycle."""
        headers = [
            (b"content-type", content_type.encode("latin-1")),
            (b"content-length", str(len(body)).encode("ascii")),
        ]
        messages = iter(
            [
                {"type": "http.request", "body": body, "more_body": False},
                {"type": "http.disconnect"},
            ]
        )

        async def receive():
            try:
                return next(messages)
            except StopIteration:  # pragma: no cover - defensive
                await asyncio.Event().wait()

        sent: list[dict] = []

        async def send(message):
            sent.append(message)

        await self.app(_scope(method, target, headers), receive, send)
        return _collect_response(sent)

    async def get(self, target: str) -> Response:
        return await self.request("GET", target)

    async def post_json(self, target: str, payload: Any) -> Response:
        return await self.request(
            "POST", target, body=json.dumps(payload).encode("utf-8")
        )

    async def post(self, target: str) -> Response:
        return await self.request("POST", target)

    async def delete(self, target: str) -> Response:
        return await self.request("DELETE", target)

    async def stream(
        self,
        target: str,
        *,
        events: int,
        timeout: float = 30.0,
    ) -> list[dict]:
        """Consume ``events`` SSE events from ``target``, then disconnect.

        Returns the decoded ``data:`` payloads.  The disconnect is
        delivered through the ASGI ``receive`` channel exactly as a
        dropped socket would be, so this exercises the app's disconnect
        handling, not a shortcut.
        """
        headers = [(b"accept", b"text/event-stream")]
        disconnected = asyncio.Event()
        first = True

        async def receive():
            nonlocal first
            if first:
                first = False
                return {
                    "type": "http.request",
                    "body": b"",
                    "more_body": False,
                }
            await disconnected.wait()
            return {"type": "http.disconnect"}

        from_app: asyncio.Queue = asyncio.Queue()

        async def send(message):
            await from_app.put(message)

        task = asyncio.create_task(
            self.app(_scope("GET", target, headers), receive, send)
        )
        collected: list[dict] = []
        buffer = ""
        try:
            async with asyncio.timeout(timeout):
                start = await from_app.get()
                if start["type"] != "http.response.start":
                    raise AssertionError(f"unexpected message {start!r}")
                if start["status"] != 200:
                    # Error response: drain the JSON body and raise with it.
                    body = b""
                    while True:
                        message = await from_app.get()
                        body += message.get("body", b"")
                        if not message.get("more_body", False):
                            break
                    raise AssertionError(
                        f"stream rejected: {start['status']} "
                        f"{body.decode('utf-8', 'replace')}"
                    )
                while len(collected) < events:
                    message = await from_app.get()
                    buffer += message.get("body", b"").decode("utf-8")
                    while "\n\n" in buffer:
                        raw, buffer = buffer.split("\n\n", 1)
                        for line in raw.splitlines():
                            if line.startswith("data: "):
                                collected.append(
                                    json.loads(line[len("data: "):])
                                )
                    if not message.get("more_body", False):
                        # Server closed first (e.g. ?limit= reached).
                        return collected
        finally:
            disconnected.set()
            try:
                await asyncio.wait_for(task, timeout=5.0)
            except (asyncio.TimeoutError, asyncio.CancelledError):
                task.cancel()
        return collected
