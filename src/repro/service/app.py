"""The ASGI application: HTTP + SSE surface over a :class:`TenantStore`.

Framework-free by design: the app is a plain ``async def(scope,
receive, send)`` callable, so it runs under any ASGI server (uvicorn,
hypercorn, daphne) **and** under the in-process test client
(:mod:`repro.service.testing`) with no web dependency installed - the
test suite and ``examples/multi_tenant.py`` drive it that way.

Routes
------
=========  ===============================  =====================================
method     path                             behaviour
=========  ===============================  =====================================
``POST``   ``/v1/{tenant}/ingest``          batched points -> ``process_many``
``GET``    ``/v1/{tenant}/query``           the summary's natural answer
``POST``   ``/v1/{tenant}/checkpoint``      the tenant's envelope, verbatim
``DELETE`` ``/v1/{tenant}``                 forget the tenant (memory + store)
``GET``    ``/v1/{tenant}/stream``          SSE: periodic query results
``GET``    ``/metrics``                     counters, throughput, histograms
=========  ===============================  =====================================

Request/response bodies are JSON.  Errors are uniform
``{"error": ...}`` objects: 400 for malformed input or parameter
errors, 404 for unknown routes/tenants, 405 for wrong methods, 409 for
queries the summary cannot answer yet (e.g. sampling an empty stream).

``GET /v1/{tenant}/query`` accepts ``?seed=`` (deterministic query
randomness) and ``?phi=`` (heavy-hitter threshold); ``stream`` adds
``?interval=`` (seconds between events) and ``?limit=`` (stop after N
events - handy for curl and tests; without it the stream runs until
the client disconnects).
"""

from __future__ import annotations

import asyncio
import json
import random
import re
import time
from typing import Any
from urllib.parse import parse_qsl

from repro.errors import (
    BackendError,
    EmptySampleError,
    LevelOverflowError,
    ParameterError,
    ReproError,
)
from repro.service.config import ServiceSpec
from repro.service.metrics import ServiceMetrics
from repro.service.stores import EnvelopeStore
from repro.service.tenants import TenantStore

__all__ = ["SummaryService", "create_app"]

_TENANT_ROUTE = re.compile(r"^/v1/([^/]+)(?:/(ingest|query|checkpoint|stream))?$")

#: JSON body size cap (16 MiB): a service should fail loudly, not OOM.
MAX_BODY_BYTES = 16 * 1024 * 1024


class _HttpError(Exception):
    """Internal: mapped to a JSON error response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class SummaryService:
    """The ASGI callable; holds the tenant store and metrics.

    Build one with :func:`create_app` (or directly); the ``tenants``
    and ``metrics`` attributes are the in-process observability surface
    the tests and examples use.
    """

    def __init__(
        self,
        spec: ServiceSpec,
        *,
        store: EnvelopeStore | None = None,
        clock=None,
    ) -> None:
        self.spec = spec
        self.tenants = TenantStore(spec, store=store, clock=clock)
        self.metrics = ServiceMetrics(clock=clock)
        self._clock = clock if clock is not None else time.monotonic

    # ------------------------------------------------------------------ #
    # ASGI entry point
    # ------------------------------------------------------------------ #

    async def __call__(self, scope, receive, send) -> None:
        if scope["type"] == "lifespan":
            await self._lifespan(receive, send)
            return
        if scope["type"] != "http":  # pragma: no cover - ws not served
            raise RuntimeError(f"unsupported scope type {scope['type']!r}")
        started = self._clock()
        route, handler, kwargs = self._resolve(scope)
        status = 500
        try:
            status = await handler(scope, receive, send, **kwargs)
        except _HttpError as error:
            status = error.status
            await _send_json(send, status, {"error": error.message})
        except ParameterError as error:
            status = 400
            await _send_json(send, status, {"error": str(error)})
        except (EmptySampleError, LevelOverflowError) as error:
            status = 409
            await _send_json(send, status, {"error": str(error)})
        except BackendError as error:
            # The envelope store's backing service failed (e.g. Redis
            # connectivity): the tenant is fine, the storage is not.
            status = 503
            await _send_json(send, status, {"error": str(error)})
        except ReproError as error:
            status = 400
            await _send_json(send, status, {"error": str(error)})
        except TypeError as error:
            # e.g. ?phi= against a summary whose query has no phi.
            status = 400
            await _send_json(
                send, status, {"error": f"unsupported query parameter: {error}"}
            )
        finally:
            self.metrics.observe_request(
                route, status, self._clock() - started
            )

    async def _lifespan(self, receive, send) -> None:
        while True:
            message = await receive()
            if message["type"] == "lifespan.startup":
                await send({"type": "lifespan.startup.complete"})
            elif message["type"] == "lifespan.shutdown":
                # Spill every resident tenant and close its summary
                # before acknowledging: worker-owning summaries (the
                # batch-pipeline's executor threads/processes) must not
                # outlive the server.
                await self.tenants.close()
                await send({"type": "lifespan.shutdown.complete"})
                return

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #

    def _resolve(self, scope):
        """(route label, handler, kwargs) for a scope; 404/405 raise."""
        method = scope["method"].upper()
        path = scope["path"]
        if path == "/metrics":
            if method != "GET":
                return "GET /metrics", self._method_not_allowed, {}
            return "GET /metrics", self._metrics, {}
        match = _TENANT_ROUTE.match(path)
        if match is None:
            return method + " ?", self._not_found, {}
        tenant, action = match.group(1), match.group(2)
        table = {
            (None, "DELETE"): ("DELETE /v1/{tenant}", self._delete),
            ("ingest", "POST"): ("POST /v1/{tenant}/ingest", self._ingest),
            ("query", "GET"): ("GET /v1/{tenant}/query", self._query),
            (
                "checkpoint",
                "POST",
            ): ("POST /v1/{tenant}/checkpoint", self._checkpoint),
            ("stream", "GET"): ("GET /v1/{tenant}/stream", self._stream),
        }
        found = table.get((action, method))
        if found is None:
            known_actions = {key[0] for key in table}
            if action in known_actions:
                label = f"{method} /v1/{{tenant}}"
                if action is not None:
                    label += f"/{action}"
                return label, self._method_not_allowed, {}
            return method + " ?", self._not_found, {}
        label, handler = found
        return label, handler, {"tenant": tenant}

    async def _not_found(self, scope, receive, send) -> int:
        await _send_json(send, 404, {"error": "not found"})
        return 404

    async def _method_not_allowed(self, scope, receive, send, **_) -> int:
        await _send_json(send, 405, {"error": "method not allowed"})
        return 405

    # ------------------------------------------------------------------ #
    # handlers
    # ------------------------------------------------------------------ #

    async def _ingest(self, scope, receive, send, *, tenant: str) -> int:
        body = await _read_body(receive)
        try:
            payload = json.loads(body)
        except json.JSONDecodeError as error:
            raise _HttpError(400, f"request body is not JSON: {error}")
        if (
            not isinstance(payload, dict)
            or not isinstance(payload.get("points"), list)
        ):
            raise _HttpError(
                400, 'ingest body must be {"points": [[...], ...]}'
            )
        # Coercion and validation happen inside TenantStore.ingest
        # (all-or-nothing over the whole batch, with the offending
        # position in the error); a rejected batch is a 400 with the
        # tenant's state untouched.
        count = await self.tenants.ingest(tenant, payload["points"])
        self.metrics.observe_ingest(count)
        await _send_json(
            send,
            200,
            {"tenant": tenant, "ingested": count},
        )
        return 200

    async def _query(self, scope, receive, send, *, tenant: str) -> int:
        params = dict(parse_qsl(scope.get("query_string", b"").decode()))
        rng, kwargs = _query_args(params)
        result = await self.tenants.query(tenant, rng, **kwargs)
        await _send_json(
            send,
            200,
            {"tenant": tenant, "result": encode_result(result)},
        )
        return 200

    async def _checkpoint(self, scope, receive, send, *, tenant: str) -> int:
        envelope = await self.tenants.checkpoint(tenant)
        await _send_json(send, 200, envelope)
        return 200

    async def _delete(self, scope, receive, send, *, tenant: str) -> int:
        dropped = await self.tenants.drop(tenant)
        if not dropped:
            raise _HttpError(404, f"unknown tenant {tenant!r}")
        await _send_json(send, 200, {"tenant": tenant, "dropped": True})
        return 200

    async def _metrics(self, scope, receive, send) -> int:
        # Scrape-path discipline: counters() serves the spill population
        # from the store's O(1) count and store_stats() is a dict copy -
        # no enumeration of the envelope store per scrape.
        await _send_json(
            send,
            200,
            self.metrics.snapshot(
                self.tenants.counters(), self.tenants.store_stats()
            ),
        )
        return 200

    async def _stream(self, scope, receive, send, *, tenant: str) -> int:
        """SSE: one ``data:`` event with the query result per interval.

        Runs until the client disconnects (or ``?limit=`` events have
        been sent).  Each event re-queries the live summary, so a
        client watching the stream sees ingestion from other clients
        land between events.
        """
        params = dict(parse_qsl(scope.get("query_string", b"").decode()))
        try:
            interval = float(params.get("interval", self.spec.stream_interval))
            limit = int(params["limit"]) if "limit" in params else None
        except ValueError as error:
            raise _HttpError(400, f"bad stream parameter: {error}")
        if interval <= 0 or (limit is not None and limit < 1):
            raise _HttpError(400, "interval must be > 0 and limit >= 1")
        rng, kwargs = _query_args(params)

        await send(
            {
                "type": "http.response.start",
                "status": 200,
                "headers": [
                    (b"content-type", b"text/event-stream"),
                    (b"cache-control", b"no-cache"),
                ],
            }
        )
        disconnected = asyncio.Event()

        async def watch_disconnect() -> None:
            while True:
                message = await receive()
                if message["type"] == "http.disconnect":
                    disconnected.set()
                    return

        watcher = asyncio.create_task(watch_disconnect())
        sent = 0
        try:
            while not disconnected.is_set():
                try:
                    result = await self.tenants.query(tenant, rng, **kwargs)
                    event: dict[str, Any] = {
                        "tenant": tenant,
                        "result": encode_result(result),
                    }
                except (ReproError, TypeError) as error:
                    # The stream already committed its response; report
                    # per-event errors as events rather than tearing the
                    # connection down (an empty tenant becomes queryable
                    # as soon as ingestion lands).
                    event = {"tenant": tenant, "error": str(error)}
                event["seq"] = sent
                payload = f"data: {json.dumps(event)}\n\n".encode("utf-8")
                try:
                    await send(
                        {
                            "type": "http.response.body",
                            "body": payload,
                            "more_body": True,
                        }
                    )
                except Exception:
                    break  # client went away mid-send
                sent += 1
                if limit is not None and sent >= limit:
                    break
                try:
                    await asyncio.wait_for(
                        disconnected.wait(), timeout=interval
                    )
                except asyncio.TimeoutError:
                    pass
            try:
                await send(
                    {
                        "type": "http.response.body",
                        "body": b"",
                        "more_body": False,
                    }
                )
            except Exception:
                pass
        finally:
            watcher.cancel()
        return 200


def create_app(
    spec: ServiceSpec,
    *,
    store: EnvelopeStore | None = None,
    clock=None,
) -> SummaryService:
    """Build the service's ASGI app from a validated :class:`ServiceSpec`."""
    return SummaryService(spec, store=store, clock=clock)


# --------------------------------------------------------------------- #
# helpers
# --------------------------------------------------------------------- #


def _query_args(params: dict[str, str]):
    """(rng, query kwargs) from request query parameters."""
    rng = None
    if "seed" in params:
        try:
            rng = random.Random(int(params["seed"]))
        except ValueError as error:
            raise _HttpError(400, f"bad seed: {error}")
    kwargs: dict[str, Any] = {}
    if "phi" in params:
        try:
            kwargs["phi"] = float(params["phi"])
        except ValueError as error:
            raise _HttpError(400, f"bad phi: {error}")
    return rng, kwargs


def encode_result(result: Any) -> Any:
    """JSON-encode a summary's query answer.

    Handles every registered summary's natural answer: stream points
    (sample queries), heavy-hitter records, lists of either, and plain
    numbers (F0 estimates).
    """
    vector = getattr(result, "vector", None)
    if vector is not None and hasattr(result, "index"):
        return {
            "vector": list(vector),
            "index": result.index,
            "time": result.time,
        }
    representative = getattr(result, "representative", None)
    if representative is not None:
        return {
            "count": result.count,
            "error": result.error,
            "guaranteed_count": result.guaranteed_count,
            "representative": encode_result(representative),
        }
    if isinstance(result, list):
        return [encode_result(item) for item in result]
    if isinstance(result, (bool, int, float, str)) or result is None:
        return result
    return repr(result)  # defensive: never 500 on an exotic answer


async def _read_body(receive) -> bytes:
    """Drain the request body (bounded by :data:`MAX_BODY_BYTES`)."""
    chunks: list[bytes] = []
    total = 0
    while True:
        message = await receive()
        if message["type"] == "http.disconnect":
            raise _HttpError(400, "client disconnected mid-request")
        chunk = message.get("body", b"")
        total += len(chunk)
        if total > MAX_BODY_BYTES:
            raise _HttpError(413, "request body too large")
        chunks.append(chunk)
        if not message.get("more_body", False):
            return b"".join(chunks)


async def _send_json(send, status: int, payload: dict[str, Any]) -> None:
    body = json.dumps(payload).encode("utf-8")
    await send(
        {
            "type": "http.response.start",
            "status": status,
            "headers": [
                (b"content-type", b"application/json"),
                (b"content-length", str(len(body)).encode("ascii")),
            ],
        }
    )
    await send(
        {"type": "http.response.body", "body": body, "more_body": False}
    )
