"""Pluggable envelope stores: where evicted tenants' checkpoints live.

The serving layer (:mod:`repro.service.tenants`) keeps hot tenants as
live summaries in memory and spills cold ones as checkpoint-envelope
bytes (:func:`repro.persist.dumps_summary`).  An :class:`EnvelopeStore`
is the spill target: a tiny blob interface - ``put`` / ``get`` /
``delete`` / ``keys`` - deliberately shaped so a database or object
store can slot in behind the same four methods (the ROADMAP's
``StateBackend`` direction).

Two implementations ship with the library:

* :class:`MemoryEnvelopeStore` - a dict; envelopes survive eviction but
  not the process.  The default, and what the tests drive.
* :class:`FileEnvelopeStore` - one file per tenant under a directory;
  envelopes survive restarts.  Tenant names are encoded to safe
  filenames (hex of the UTF-8 bytes), so any tenant string round-trips.

Store methods are synchronous: the async tenant store calls them while
holding the tenant's lock, and both built-ins are fast enough that
yielding the event loop around them buys nothing.  A store backed by a
network service should do its own internal batching/caching rather than
block the loop for long.
"""

from __future__ import annotations

import os
from typing import Iterator

__all__ = [
    "EnvelopeStore",
    "FileEnvelopeStore",
    "MemoryEnvelopeStore",
]


class EnvelopeStore:
    """Blob interface for checkpoint-envelope bytes, keyed by tenant."""

    def put(self, tenant: str, data: bytes) -> None:
        """Store ``data`` under ``tenant``, replacing any previous blob."""
        raise NotImplementedError

    def get(self, tenant: str) -> bytes | None:
        """The blob stored under ``tenant``, or ``None``."""
        raise NotImplementedError

    def delete(self, tenant: str) -> bool:
        """Drop ``tenant``'s blob; returns whether one existed."""
        raise NotImplementedError

    def keys(self) -> Iterator[str]:
        """Iterate the tenants that currently have a blob stored."""
        raise NotImplementedError

    def __contains__(self, tenant: str) -> bool:
        return self.get(tenant) is not None

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())


class MemoryEnvelopeStore(EnvelopeStore):
    """Envelopes in a plain dict (per-process; the default)."""

    def __init__(self) -> None:
        self._blobs: dict[str, bytes] = {}

    def put(self, tenant: str, data: bytes) -> None:
        self._blobs[tenant] = bytes(data)

    def get(self, tenant: str) -> bytes | None:
        return self._blobs.get(tenant)

    def delete(self, tenant: str) -> bool:
        return self._blobs.pop(tenant, None) is not None

    def keys(self) -> Iterator[str]:
        return iter(list(self._blobs))


class FileEnvelopeStore(EnvelopeStore):
    """One ``<hex(tenant)>.json`` file per tenant under a directory.

    Writes go through a same-directory temp file + ``os.replace`` so a
    crash mid-eviction leaves either the old envelope or the new one,
    never a torn file.
    """

    _SUFFIX = ".json"

    def __init__(self, directory: str) -> None:
        self._directory = str(directory)
        os.makedirs(self._directory, exist_ok=True)

    @property
    def directory(self) -> str:
        return self._directory

    def _path(self, tenant: str) -> str:
        name = tenant.encode("utf-8").hex() + self._SUFFIX
        return os.path.join(self._directory, name)

    def put(self, tenant: str, data: bytes) -> None:
        path = self._path(tenant)
        tmp = path + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(data)
        os.replace(tmp, path)

    def get(self, tenant: str) -> bytes | None:
        try:
            with open(self._path(tenant), "rb") as handle:
                return handle.read()
        except FileNotFoundError:
            return None

    def delete(self, tenant: str) -> bool:
        try:
            os.remove(self._path(tenant))
        except FileNotFoundError:
            return False
        return True

    def keys(self) -> Iterator[str]:
        for name in sorted(os.listdir(self._directory)):
            if not name.endswith(self._SUFFIX):
                continue
            stem = name[: -len(self._SUFFIX)]
            try:
                yield bytes.fromhex(stem).decode("utf-8")
            except (ValueError, UnicodeDecodeError):
                continue  # not one of ours
