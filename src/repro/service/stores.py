"""Envelope stores: thin adapters over :mod:`repro.backends`.

The serving layer (:mod:`repro.service.tenants`) keeps hot tenants as
live summaries in memory and spills cold ones as checkpoint-envelope
bytes (:func:`repro.persist.dumps_summary`).  An :class:`EnvelopeStore`
is the spill target.  Since the backend layer landed, the store classes
are adapters: every operation delegates to a
:class:`~repro.backends.StateBackend`, which supplies the durability
discipline (fsync + unique-temp atomic rename for files - the spill
path can never leave a torn envelope), O(1) :meth:`EnvelopeStore.count`
for the ``/metrics`` scrape, and the operation counters ``/metrics``
reports.  The historical names remain the public surface:

* :class:`MemoryEnvelopeStore` - :class:`~repro.backends.MemoryBackend`
  behind the adapter; envelopes survive eviction but not the process.
* :class:`FileEnvelopeStore` - :class:`~repro.backends.FileBackend`
  under a directory; envelopes survive restarts (legacy pre-backend
  ``<hex>.json`` spill directories remain readable).

Any backend - including :class:`~repro.backends.RedisBackend` for
multi-machine spill - slots in through :class:`BackendEnvelopeStore`
(``ServiceSpec.store="redis"`` builds exactly that).

Store methods are synchronous: the async tenant store calls them while
holding the tenant's lock, and the built-ins are fast enough that
yielding the event loop around them buys nothing.  A store backed by a
network service should do its own internal batching/caching rather than
block the loop for long.
"""

from __future__ import annotations

from typing import Iterator

from repro.backends import FileBackend, MemoryBackend, StateBackend

__all__ = [
    "BackendEnvelopeStore",
    "EnvelopeStore",
    "FileEnvelopeStore",
    "MemoryEnvelopeStore",
]


class EnvelopeStore:
    """Blob interface for checkpoint-envelope bytes, keyed by tenant."""

    def put(self, tenant: str, data: bytes) -> None:
        """Store ``data`` under ``tenant``, replacing any previous blob."""
        raise NotImplementedError

    def get(self, tenant: str) -> bytes | None:
        """The blob stored under ``tenant``, or ``None``."""
        raise NotImplementedError

    def delete(self, tenant: str) -> bool:
        """Drop ``tenant``'s blob; returns whether one existed."""
        raise NotImplementedError

    def keys(self) -> Iterator[str]:
        """Iterate the tenants that currently have a blob stored."""
        raise NotImplementedError

    def count(self) -> int:
        """Number of stored blobs.

        Backend-based stores answer in O(1); the default counts
        ``keys()`` so bespoke subclasses stay correct without opting in.
        """
        return sum(1 for _ in self.keys())

    def stats(self) -> dict[str, int]:
        """Operation counters for ``/metrics`` (empty when untracked)."""
        return {}

    def close(self) -> None:
        """Release whatever the store holds (connections, fds)."""

    def __contains__(self, tenant: str) -> bool:
        return self.get(tenant) is not None

    def __len__(self) -> int:
        return self.count()


class BackendEnvelopeStore(EnvelopeStore):
    """Adapter: any :class:`~repro.backends.StateBackend` as a spill store.

    The tenant store does not CAS (each tenant's spill is serialised by
    the tenant's lock), so the adapter only exposes the blob half of the
    backend; versions stay available through :attr:`backend` for callers
    that coordinate across processes.
    """

    def __init__(self, backend: StateBackend) -> None:
        self._backend = backend

    @property
    def backend(self) -> StateBackend:
        """The underlying state backend."""
        return self._backend

    def put(self, tenant: str, data: bytes) -> None:
        self._backend.put(tenant, data)

    def get(self, tenant: str) -> bytes | None:
        return self._backend.get(tenant)

    def delete(self, tenant: str) -> bool:
        return self._backend.delete(tenant)

    def keys(self) -> Iterator[str]:
        return self._backend.keys()

    def count(self) -> int:
        return self._backend.count()

    def stats(self) -> dict[str, int]:
        return self._backend.stats()

    def close(self) -> None:
        self._backend.close()


class MemoryEnvelopeStore(BackendEnvelopeStore):
    """Envelopes in a per-process memory backend (the default)."""

    def __init__(self) -> None:
        super().__init__(MemoryBackend())


class FileEnvelopeStore(BackendEnvelopeStore):
    """One versioned blob file per tenant under a directory.

    Writes go through the file backend's fsynced same-directory temp
    file + atomic ``os.replace`` (directory entry fsynced too), so a
    crash mid-eviction - even a power cut - leaves either the old
    envelope or the new one, never a torn file; temp names are unique
    per process and call, so concurrent spillers of one tenant cannot
    clobber each other, and stale temps are swept on open.
    """

    def __init__(self, directory: str) -> None:
        super().__init__(FileBackend(directory))

    @property
    def directory(self) -> str:
        return self.backend.directory
