"""repro.service - the multi-tenant summary serving layer.

Everything below this package is batch or in-process; this is the
subsystem that serves it as traffic.  A long-running ASGI app keeps
**one summary per tenant key** (one distinct-count / heavy-hitter /
sliding-window sketch per user, API key or endpoint), built lazily
through :func:`repro.api.build`, with:

* **sharded asyncio locking** - same-tenant requests are strictly
  serialised, distinct tenants run concurrently
  (:class:`TenantStore`);
* **eviction to checkpoint** - cold tenants (LRU beyond ``capacity``,
  or idle past ``ttl_seconds``) are serialised through the versioned
  checkpoint envelope into a pluggable :class:`EnvelopeStore`
  (memory or per-tenant files) and restored *fingerprint-exactly* on
  the next touch;
* **live metrics** - ``GET /metrics`` reports per-route counters and
  latency histograms, the tenant population, and ingest throughput
  (:mod:`repro.service.metrics`);
* **SSE streaming** - ``GET /v1/{tenant}/stream`` pushes periodic query
  results while the client stays connected.

The app (:func:`create_app`) is framework-free: hand it to uvicorn
(``python -m repro.cli serve ...``, or ``pip install repro[service]``)
or drive it in-process with :class:`repro.service.testing.ASGITestClient`
- no web dependency required.  The serving-layer invariant (interleaved
per-tenant traffic fingerprint-equals a serial replay, across
evict/restore cycles) is documented in ``docs/ARCHITECTURE.md`` and
enforced by ``tests/test_service.py``.

>>> import asyncio
>>> from repro.api import HeavyHittersSpec
>>> from repro.service import ServiceSpec, create_app
>>> from repro.service.testing import ASGITestClient
>>> app = create_app(ServiceSpec(
...     summary="heavy-hitters",
...     spec=HeavyHittersSpec(alpha=0.5, dim=1, seed=1, epsilon=0.1),
...     capacity=2,
... ))
>>> client = ASGITestClient(app)
>>> async def demo():
...     await client.post_json("/v1/key-1/ingest",
...                            {"points": [[0.0], [0.1], [9.0]]})
...     resp = await client.get("/v1/key-1/query?phi=0.5")
...     return [hit["count"] for hit in resp.json()["result"]]
>>> asyncio.run(demo())
[2]
"""

from repro.service.app import SummaryService, create_app
from repro.service.config import STORE_NAMES, ServiceSpec
from repro.service.metrics import ServiceMetrics
from repro.service.stores import (
    BackendEnvelopeStore,
    EnvelopeStore,
    FileEnvelopeStore,
    MemoryEnvelopeStore,
)
from repro.service.tenants import TenantStore, derive_tenant_seed

__all__ = [
    "STORE_NAMES",
    "ServiceSpec",
    "ServiceMetrics",
    "SummaryService",
    "TenantStore",
    "BackendEnvelopeStore",
    "EnvelopeStore",
    "FileEnvelopeStore",
    "MemoryEnvelopeStore",
    "create_app",
    "derive_tenant_seed",
]
