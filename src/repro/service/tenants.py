"""Keyed tenant summaries: lazy build, sharded locks, evict-to-envelope.

The :class:`TenantStore` is the serving layer's state machine.  Each
tenant key owns one summary, built lazily through
:func:`repro.api.build` on first touch; traffic for a tenant is
serialised by an asyncio lock drawn from a sharded lock table (distinct
tenants almost never contend, same-tenant requests are strictly
ordered); cold tenants are evicted - by LRU count beyond ``capacity``
and by idle TTL - into an :class:`~repro.service.stores.EnvelopeStore`
as checkpoint-envelope bytes, and transparently restored on the next
touch.

The correctness invariant everything above this module leans on:

    **per-tenant serial order** - the summary a tenant holds after any
    interleaving of concurrent clients (including evict/restore cycles
    mid-traffic) is ``state_fingerprint``-identical to a fresh summary
    fed the same per-tenant point sequence serially.

That holds because (a) each tenant's operations run under its lock, so
its per-tenant sequence is well defined, (b) summaries are deterministic
given their spec and input sequence, and (c) the checkpoint envelope
protocol is exact (restore continues with decisions identical to the
original - the PR-2 contract).  ``tests/test_service.py`` enforces it
differentially.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
from collections import OrderedDict
from hashlib import blake2b
from typing import Any, Callable, Iterable

from repro.api import build
from repro.errors import ParameterError
from repro.persist import dumps_summary, loads_summary, summary_to_state
from repro.service.config import ServiceSpec
from repro.service.stores import EnvelopeStore
from repro.streams.point import StreamPoint

__all__ = ["TenantStore", "derive_tenant_seed"]


def derive_tenant_seed(base_seed: int, tenant: str) -> int:
    """Deterministic per-tenant seed from the service's base seed.

    Stable across processes and restarts (builtin ``hash`` is neither),
    so a tenant rebuilt after a restart - or a serial replay in a test -
    draws identical randomness.
    """
    digest = blake2b(
        f"{base_seed}:{tenant}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") % (2**62)


def _close_summary(summary: Any) -> None:
    """Release whatever resources ``summary`` holds, if any.

    Most summaries are plain in-memory objects; the ones that own
    workers (``batch-pipeline``'s executor threads/processes) expose
    ``close()``.  Eviction and drop call this so a tenant leaving
    memory never leaks its workers - the property that lets the
    service host pipeline tenants at all.
    """
    close = getattr(summary, "close", None)
    if callable(close):
        close()


class _Resident:
    """One in-memory tenant: its live summary and last-touch time."""

    __slots__ = ("summary", "last_touch")

    def __init__(self, summary: Any, last_touch: float) -> None:
        self.summary = summary
        self.last_touch = last_touch


class TenantStore:
    """One summary per tenant key, with locking and eviction.

    Parameters
    ----------
    spec:
        The validated service configuration.
    store:
        Envelope store evictions spill into; defaults to
        ``spec.build_store()``.
    clock:
        Monotonic-seconds callable for TTL bookkeeping (injectable for
        tests; default :func:`time.monotonic`).
    """

    def __init__(
        self,
        spec: ServiceSpec,
        *,
        store: EnvelopeStore | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.spec = spec
        self.store = store if store is not None else spec.build_store()
        self._clock = clock if clock is not None else time.monotonic
        self._resident: OrderedDict[str, _Resident] = OrderedDict()
        self._locks = [asyncio.Lock() for _ in range(spec.lock_shards)]
        self.evictions = 0
        self.restores = 0
        self.builds = 0
        self.drops = 0

    # ------------------------------------------------------------------ #
    # construction and locking
    # ------------------------------------------------------------------ #

    def tenant_spec(self, tenant: str):
        """The summary spec ``tenant``'s summary is built from.

        With a seeded service spec, each tenant gets its own
        deterministically derived seed (:func:`derive_tenant_seed`) so
        tenants sample independently yet reproducibly; an unseeded spec
        is used as-is (fresh randomness per build).
        """
        base = self.spec.spec
        if base.seed is None:
            return base
        return dataclasses.replace(
            base, seed=derive_tenant_seed(base.seed, tenant)
        )

    def fresh_summary(self, tenant: str) -> Any:
        """A brand-new summary as ``tenant`` would first receive it.

        This is the serial-replay oracle the differential tests use:
        feed it the tenant's recorded point sequence and its fingerprint
        must match the served tenant's.
        """
        return build(self.spec.summary, self.tenant_spec(tenant))

    def _lock_for(self, tenant: str) -> asyncio.Lock:
        digest = blake2b(tenant.encode("utf-8"), digest_size=8).digest()
        shard = int.from_bytes(digest, "big") % len(self._locks)
        return self._locks[shard]

    def _materialize(self, tenant: str) -> Any:
        """Resident summary for ``tenant`` (restore or build as needed).

        Must be called with the tenant's lock held.  Touches the tenant
        (LRU order + TTL timestamp).
        """
        entry = self._resident.get(tenant)
        if entry is None:
            data = self.store.get(tenant)
            if data is not None:
                summary = loads_summary(data)
                self.store.delete(tenant)
                self.restores += 1
            else:
                summary = self.fresh_summary(tenant)
                self.builds += 1
            entry = self._resident[tenant] = _Resident(
                summary, self._clock()
            )
        else:
            entry.last_touch = self._clock()
        self._resident.move_to_end(tenant)
        return entry.summary

    # ------------------------------------------------------------------ #
    # tenant operations (each serialised under the tenant's lock)
    # ------------------------------------------------------------------ #

    def _coerce_batch(self, points: Iterable[Any]) -> list[Any]:
        """Validate and coerce a whole ingest batch *before* any mutation.

        Ingest must be all-or-nothing: a batch with a malformed point at
        position k must leave the tenant's summary exactly as it was,
        not k points further along - otherwise an HTTP client that
        retries its 400ed batch replays the k good points into the
        summary twice, silently breaking the per-tenant serial-replay
        invariant.  ``process_many`` validates lazily (it raises *at*
        the bad point, after mutating on the good ones), so the checks
        it would fail on - float coercion and, for point summaries, the
        spec's dimension - run here over the full batch first.
        """
        expected_dim = getattr(self.spec.spec, "dim", None)
        coerced: list[Any] = []
        for position, point in enumerate(points):
            if isinstance(point, StreamPoint):
                dim = point.dim
            else:
                try:
                    point = tuple(float(x) for x in point)
                except (TypeError, ValueError) as error:
                    raise ParameterError(
                        f"batch rejected, nothing ingested - point "
                        f"{position}: {error}"
                    ) from error
                dim = len(point)
            if expected_dim is not None and dim != expected_dim:
                raise ParameterError(
                    f"batch rejected, nothing ingested - point "
                    f"{position} has dimension {dim}, summary expects "
                    f"{expected_dim}"
                )
            coerced.append(point)
        return coerced

    async def ingest(self, tenant: str, points: Iterable[Any]) -> int:
        """Feed a batch to ``tenant``'s summary; returns points ingested.

        All-or-nothing: the batch is validated and coerced in full
        (:meth:`_coerce_batch`) before the summary is touched, so a
        rejected batch leaves the tenant's state unchanged and a client
        retry cannot double-ingest its valid prefix.
        """
        batch = self._coerce_batch(points)
        async with self._lock_for(tenant):
            summary = self._materialize(tenant)
            count = summary.process_many(batch)
        await self.enforce()
        return count

    async def query(self, tenant: str, rng=None, **kwargs: Any) -> Any:
        """The tenant summary's natural answer (sample/estimate/hitters)."""
        async with self._lock_for(tenant):
            summary = self._materialize(tenant)
            result = summary.query(rng, **kwargs)
        await self.enforce()
        return result

    async def checkpoint(self, tenant: str) -> dict[str, Any]:
        """The tenant's current checkpoint envelope (tenant stays hot)."""
        async with self._lock_for(tenant):
            summary = self._materialize(tenant)
            envelope = summary_to_state(summary)
        await self.enforce()
        return envelope

    async def fingerprint(self, tenant: str) -> tuple:
        """``state_fingerprint`` of the tenant's summary (test surface)."""
        from repro.engine import state_fingerprint

        async with self._lock_for(tenant):
            summary = self._materialize(tenant)
            return state_fingerprint(summary)

    async def drop(self, tenant: str) -> bool:
        """Forget ``tenant`` entirely (memory and store)."""
        async with self._lock_for(tenant):
            entry = self._resident.pop(tenant, None)
            if entry is not None:
                _close_summary(entry.summary)
            was_stored = self.store.delete(tenant)
            dropped = entry is not None or was_stored
            if dropped:
                self.drops += 1
            return dropped

    # ------------------------------------------------------------------ #
    # eviction
    # ------------------------------------------------------------------ #

    async def evict(self, tenant: str) -> bool:
        """Force-evict ``tenant`` to the envelope store.

        Returns whether the tenant was resident.  Must not be called
        while holding a tenant lock (it acquires the victim's).
        """
        async with self._lock_for(tenant):
            return self._evict_locked(tenant)

    def _evict_locked(self, tenant: str) -> bool:
        entry = self._resident.pop(tenant, None)
        if entry is None:
            return False
        # Serialise first: to_state() synchronises any workers the
        # summary owns (e.g. a batch-pipeline's executor), so the
        # envelope always captures the settled state; only then release
        # the summary's resources.
        self.store.put(tenant, dumps_summary(entry.summary))
        _close_summary(entry.summary)
        self.evictions += 1
        return True

    def _next_victim(self) -> str | None:
        """The tenant eviction policy wants gone next, if any.

        LRU order and last-touch order coincide (every touch moves the
        tenant to the OrderedDict's end), so only the front entry can
        ever be over TTL or over capacity.
        """
        if not self._resident:
            return None
        tenant, entry = next(iter(self._resident.items()))
        if len(self._resident) > self.spec.capacity:
            return tenant
        ttl = self.spec.ttl_seconds
        if ttl is not None and self._clock() - entry.last_touch >= ttl:
            return tenant
        return None

    async def enforce(self) -> int:
        """Apply the eviction policy until it is satisfied.

        Called after every tenant operation (and usable directly, e.g.
        by a periodic sweeper when traffic alone is too sparse to drive
        TTL eviction).  Returns the number of tenants evicted.  Must not
        be called while holding a tenant lock.
        """
        evicted = 0
        while True:
            victim = self._next_victim()
            if victim is None:
                return evicted
            async with self._lock_for(victim):
                # Re-check under the lock: the victim may have been
                # touched, dropped, or already evicted while we waited.
                if self._next_victim() == victim:
                    self._evict_locked(victim)
                    evicted += 1

    # ------------------------------------------------------------------ #
    # shutdown
    # ------------------------------------------------------------------ #

    async def close(self) -> None:
        """Evict every resident tenant and release the envelope store.

        The service's lifespan shutdown hook: each resident summary is
        serialised to the store (so summaries whose specs persist - file
        or redis stores - survive the restart) and then closed, which is
        what lets worker-owning summaries such as ``batch-pipeline`` be
        served per tenant without leaking executors on exit.  Safe to
        call more than once.
        """
        while True:
            tenants = list(self._resident)
            if not tenants:
                break
            for tenant in tenants:
                async with self._lock_for(tenant):
                    self._evict_locked(tenant)
        self.store.close()

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    @property
    def resident_count(self) -> int:
        """Tenants currently live in memory."""
        return len(self._resident)

    @property
    def spilled_count(self) -> int:
        """Tenants currently parked in the envelope store.

        Served from the store's O(1) :meth:`~EnvelopeStore.count` -
        this is on the ``/metrics`` scrape path, which must never pay a
        directory walk (or a network enumeration) per request.
        """
        return self.store.count()

    def resident_tenants(self) -> list[str]:
        """Resident tenant keys, least recently used first."""
        return list(self._resident)

    def is_resident(self, tenant: str) -> bool:
        return tenant in self._resident

    def counters(self) -> dict[str, Any]:
        """Population counters (the ``/metrics`` ``tenants`` section)."""
        return {
            "resident": self.resident_count,
            "spilled": self.spilled_count,
            "capacity": self.spec.capacity,
            "builds": self.builds,
            "evictions": self.evictions,
            "restores": self.restores,
            "drops": self.drops,
        }

    def store_stats(self) -> dict[str, int]:
        """Backend operation counters (the ``/metrics`` ``store`` section)."""
        return self.store.stats()


def validate_tenant_name(tenant: str) -> str:
    """Reject tenant keys that cannot round-trip through a URL path.

    The store layer itself accepts any string; this guard is for the
    HTTP surface, where an empty segment or a slash would be a routing
    ambiguity rather than a tenant.
    """
    if not tenant or "/" in tenant:
        raise ParameterError(f"invalid tenant key {tenant!r}")
    return tenant
