"""HyperLogLog (Flajolet, Fusy, Gandouet, Meunier 2007).

The harmonic-mean refinement of LogLog, with the standard small-range
(linear counting) correction.  Section 5 notes the robust sliding-window
estimator "can also plug into HyperLogLog"; this noiseless implementation
is the baseline for that comparison.
"""

from __future__ import annotations

import math
from typing import Hashable

from repro.baselines.fm import item_key, lowest_set_bit
from repro.baselines.registers import RegisterSketchSummary
from repro.core.base import StreamSampler
from repro.errors import ParameterError
from repro.hashing.mix import SplitMix64


def _alpha(m: int) -> float:
    """The HLL bias constant alpha_m."""
    if m == 16:
        return 0.673
    if m == 32:
        return 0.697
    if m == 64:
        return 0.709
    return 0.7213 / (1.0 + 1.079 / m)


class HyperLogLog(RegisterSketchSummary, StreamSampler):
    """HyperLogLog distinct counter with ``2^bucket_bits`` registers.

    >>> hll = HyperLogLog(bucket_bits=8, seed=2)
    >>> _ = hll.extend(range(10000))
    >>> 8000 <= hll.estimate() <= 12000
    True
    """

    #: Registry key (see :mod:`repro.api.registry`).
    summary_key = "hyperloglog"

    def __init__(self, *, bucket_bits: int = 8, seed: int = 0) -> None:
        if not 4 <= bucket_bits <= 16:
            raise ParameterError(
                f"bucket_bits must be in [4, 16], got {bucket_bits}"
            )
        self._b = bucket_bits
        self._m = 1 << bucket_bits
        self._registers = [0] * self._m
        self._hash = SplitMix64(seed)

    @property
    def num_registers(self) -> int:
        """Number of registers m."""
        return self._m

    def insert(self, item: Hashable) -> None:
        """Observe one item."""
        value = self._hash(item_key(item))
        bucket = value & (self._m - 1)
        rho = lowest_set_bit(value >> self._b) + 1
        if rho > self._registers[bucket]:
            self._registers[bucket] = rho

    def estimate(self) -> float:
        """Harmonic-mean estimate with linear-counting correction."""
        m = self._m
        inverse_sum = sum(2.0 ** (-r) for r in self._registers)
        raw = _alpha(m) * m * m / inverse_sum
        if raw <= 2.5 * m:
            zeros = self._registers.count(0)
            if zeros:
                return m * math.log(m / zeros)
        return raw

    def space_words(self) -> int:
        """One register per bucket."""
        return self._m + 1

    # query/merge/to_state/from_state: see RegisterSketchSummary.
