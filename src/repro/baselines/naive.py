"""Naive uniform reservoir sampling over raw points.

This is what "distinct sampling" degenerates to if near-duplicates are
ignored: a uniform point of the stream, which is biased towards groups
with many near-duplicates ("the sampling will be biased towards those
elements that have a large number of near-duplicates" - Section 1).  Used
by the motivation ablation to quantify that bias against the robust
sampler.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.core.base import StreamSampler, coerce_point
from repro.errors import EmptySampleError
from repro.streams.point import StreamPoint


class NaiveReservoirSampler(StreamSampler):
    """Classic single-item reservoir sampling (Vitter 1985).

    >>> rng = random.Random(0)
    >>> sampler = NaiveReservoirSampler(rng=rng)
    >>> for i in range(10):
    ...     sampler.insert((float(i),))
    >>> 0.0 <= sampler.sample().vector[0] <= 9.0
    True
    """

    #: Registry key (see :mod:`repro.api.registry`).
    summary_key = "naive-reservoir"

    def __init__(self, *, rng: random.Random | None = None) -> None:
        self._rng = rng if rng is not None else random.Random()
        self._sample: StreamPoint | None = None
        self._count = 0

    @property
    def points_seen(self) -> int:
        """Number of points inserted."""
        return self._count

    def insert(self, point: StreamPoint | Sequence[float]) -> None:
        """Offer one point; replaces the sample with probability 1/count."""
        p = coerce_point(point, self._count)
        self._count += 1
        if self._sample is None or self._rng.random() < 1.0 / self._count:
            self._sample = p

    def sample(self) -> StreamPoint:
        """The current uniform sample over raw points."""
        if self._sample is None:
            raise EmptySampleError("no points inserted")
        return self._sample

    def space_words(self) -> int:
        """Footprint in words."""
        if self._sample is None:
            return 2
        return len(self._sample.vector) + 4

    # ------------------------------------------------------------------ #
    # Summary protocol (see repro.api.protocol)
    # ------------------------------------------------------------------ #

    def query(self, rng: random.Random | None = None) -> StreamPoint:
        """Protocol query: the current sample (rng unused - the sampler
        owns its reservoir randomness)."""
        return self.sample()

    def merge(
        self, *others: "NaiveReservoirSampler"
    ) -> "NaiveReservoirSampler":
        """Weighted reservoir merge: each input's sample survives with
        probability proportional to its stream length, so the result is
        uniform over the union stream.  Uses this sampler's generator."""
        from repro.api.protocol import check_merge_peers

        check_merge_peers(self, others)
        merged = NaiveReservoirSampler(rng=random.Random())
        merged._rng.setstate(self._rng.getstate())
        merged._count = self._count
        merged._sample = self._sample
        for other in others:
            merged._count += other._count
            if other._sample is None:
                continue
            if (
                merged._sample is None
                or merged._rng.random() < other._count / merged._count
            ):
                merged._sample = other._sample
        return merged

    def to_state(self) -> dict:
        """Serialise to a JSON-compatible dict (protocol checkpoint)."""
        from repro.core import serialize

        return {
            "rng": serialize.rng_to_state(self._rng),
            "points_seen": self._count,
            "sample": (
                serialize.point_to_state(self._sample)
                if self._sample is not None
                else None
            ),
        }

    @classmethod
    def from_state(cls, state: dict) -> "NaiveReservoirSampler":
        """Restore a sampler from :meth:`to_state` output."""
        from repro.core import serialize

        sampler = cls(rng=serialize.rng_from_state(state["rng"]))
        sampler._count = state["points_seen"]
        sampler._sample = (
            serialize.point_from_state(state["sample"])
            if state["sample"] is not None
            else None
        )
        return sampler
