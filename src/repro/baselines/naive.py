"""Naive uniform reservoir sampling over raw points.

This is what "distinct sampling" degenerates to if near-duplicates are
ignored: a uniform point of the stream, which is biased towards groups
with many near-duplicates ("the sampling will be biased towards those
elements that have a large number of near-duplicates" - Section 1).  Used
by the motivation ablation to quantify that bias against the robust
sampler.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from repro.core.base import coerce_point
from repro.errors import EmptySampleError
from repro.streams.point import StreamPoint


class NaiveReservoirSampler:
    """Classic single-item reservoir sampling (Vitter 1985).

    >>> rng = random.Random(0)
    >>> sampler = NaiveReservoirSampler(rng=rng)
    >>> for i in range(10):
    ...     sampler.insert((float(i),))
    >>> 0.0 <= sampler.sample().vector[0] <= 9.0
    True
    """

    def __init__(self, *, rng: random.Random | None = None) -> None:
        self._rng = rng if rng is not None else random.Random()
        self._sample: StreamPoint | None = None
        self._count = 0

    @property
    def points_seen(self) -> int:
        """Number of points inserted."""
        return self._count

    def insert(self, point: StreamPoint | Sequence[float]) -> None:
        """Offer one point; replaces the sample with probability 1/count."""
        p = coerce_point(point, self._count)
        self._count += 1
        if self._sample is None or self._rng.random() < 1.0 / self._count:
            self._sample = p

    def extend(self, points: Iterable[StreamPoint | Sequence[float]]) -> None:
        """Insert a sequence of points."""
        for point in points:
            self.insert(point)

    def sample(self) -> StreamPoint:
        """The current uniform sample over raw points."""
        if self._sample is None:
            raise EmptySampleError("no points inserted")
        return self._sample

    def space_words(self) -> int:
        """Footprint in words."""
        if self._sample is None:
            return 2
        return len(self._sample.vector) + 4
