"""The folklore min-rank l0-sampler for *noiseless* streams.

Assign every distinct item a random rank via a hash function and keep the
item with the minimum rank - the starting point of the paper's techniques
overview.  It requires exact item identities: on noisy data each near-
duplicate hashes differently, which reduces it to naive point sampling
(the paper's argument for why no existing l0-sampler survives
near-duplicates).  We expose a pluggable ``key`` so experiments can run it
either on exact identities (oracle mode) or raw coordinates (broken mode).
"""

from __future__ import annotations

from typing import Callable, Hashable, Sequence

from repro.baselines.fm import item_key
from repro.core.base import StreamSampler, coerce_point
from repro.errors import CheckpointError, EmptySampleError, ParameterError
from repro.hashing.mix import SplitMix64
from repro.streams.point import StreamPoint


def _default_key(point: StreamPoint) -> Hashable:
    """Raw coordinates as identity (the broken-on-noisy-data mode)."""
    return point.vector


class MinRankL0Sampler(StreamSampler):
    """Keep the item whose hashed rank is minimal.

    Parameters
    ----------
    key:
        Maps a point to its identity; duplicates (by this key) collapse.
        Default: the exact coordinate tuple.
    seed:
        Seed of the rank hash.

    Examples
    --------
    >>> sampler = MinRankL0Sampler(seed=1)
    >>> for v in [(0.0,), (1.0,), (0.0,)]:
    ...     sampler.insert(v)
    >>> sampler.distinct_seen
    2
    """

    #: Registry key (see :mod:`repro.api.registry`).
    summary_key = "minrank"

    def __init__(
        self,
        *,
        key: Callable[[StreamPoint], Hashable] = _default_key,
        seed: int = 0,
    ) -> None:
        self._key = key
        self._hash = SplitMix64(seed)
        self._best_rank: int | None = None
        self._best: StreamPoint | None = None
        self._seen_keys: set[Hashable] = set()
        self._count = 0

    @property
    def points_seen(self) -> int:
        """Number of points inserted."""
        return self._count

    @property
    def distinct_seen(self) -> int:
        """Number of distinct identities observed (diagnostic only; a real
        streaming deployment would not store this set)."""
        return len(self._seen_keys)

    def insert(self, point: StreamPoint | Sequence[float]) -> None:
        """Offer a point; its rank is the hash of its identity."""
        p = coerce_point(point, self._count)
        self._count += 1
        identity = self._key(p)
        self._seen_keys.add(identity)
        rank = self._hash(item_key(identity))
        if self._best_rank is None or rank < self._best_rank:
            self._best_rank = rank
            self._best = p

    def sample(self) -> StreamPoint:
        """The minimum-rank item: uniform over distinct identities."""
        if self._best is None:
            raise EmptySampleError("no points inserted")
        return self._best

    def space_words(self) -> int:
        """Footprint of the sampler proper (sample + rank), excluding the
        diagnostic identity set."""
        if self._best is None:
            return 2
        return len(self._best.vector) + 5

    # ------------------------------------------------------------------ #
    # Summary protocol (see repro.api.protocol)
    # ------------------------------------------------------------------ #

    def query(self, rng=None) -> StreamPoint:
        """Protocol query: the minimum-rank sample (rng unused)."""
        return self.sample()

    def merge(self, *others: "MinRankL0Sampler") -> "MinRankL0Sampler":
        """Keep the overall minimum rank (requires one shared hash seed,
        i.e. inputs built from one spec, and the default identity key)."""
        from repro.api.protocol import check_merge_peers

        check_merge_peers(self, others)
        summaries = (self, *others)
        for other in others:
            if other._hash.seed != self._hash.seed:
                raise ParameterError(
                    "cannot merge min-rank samplers with different seeds"
                )
            if other._key is not self._key:
                raise ParameterError(
                    "cannot merge min-rank samplers with different keys"
                )
        merged = MinRankL0Sampler(key=self._key)
        merged._hash = SplitMix64(self._hash.seed, premixed=True)
        for summary in summaries:
            merged._count += summary._count
            merged._seen_keys |= summary._seen_keys
            if summary._best_rank is not None and (
                merged._best_rank is None
                or summary._best_rank < merged._best_rank
            ):
                merged._best_rank = summary._best_rank
                merged._best = summary._best
        return merged

    def to_state(self) -> dict:
        """Serialise to a JSON-compatible dict (default key only)."""
        from repro.core import serialize

        if self._key is not _default_key:
            raise CheckpointError(
                "cannot checkpoint a MinRankL0Sampler with a custom key "
                "callable"
            )
        return {
            "hash_seed": self._hash.seed,
            "points_seen": self._count,
            "best_rank": self._best_rank,
            "best": (
                serialize.point_to_state(self._best)
                if self._best is not None
                else None
            ),
            "seen_keys": sorted(list(key) for key in self._seen_keys),
        }

    @classmethod
    def from_state(cls, state: dict) -> "MinRankL0Sampler":
        """Restore a sampler from :meth:`to_state` output."""
        from repro.core import serialize

        sampler = cls()
        sampler._hash = SplitMix64(state["hash_seed"], premixed=True)
        sampler._count = state["points_seen"]
        sampler._best_rank = state["best_rank"]
        sampler._best = (
            serialize.point_from_state(state["best"])
            if state["best"] is not None
            else None
        )
        sampler._seen_keys = {tuple(key) for key in state["seen_keys"]}
        return sampler
