"""The folklore min-rank l0-sampler for *noiseless* streams.

Assign every distinct item a random rank via a hash function and keep the
item with the minimum rank - the starting point of the paper's techniques
overview.  It requires exact item identities: on noisy data each near-
duplicate hashes differently, which reduces it to naive point sampling
(the paper's argument for why no existing l0-sampler survives
near-duplicates).  We expose a pluggable ``key`` so experiments can run it
either on exact identities (oracle mode) or raw coordinates (broken mode).
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Sequence

from repro.core.base import coerce_point
from repro.errors import EmptySampleError
from repro.hashing.mix import SplitMix64
from repro.streams.point import StreamPoint


def _default_key(point: StreamPoint) -> Hashable:
    """Raw coordinates as identity (the broken-on-noisy-data mode)."""
    return point.vector


class MinRankL0Sampler:
    """Keep the item whose hashed rank is minimal.

    Parameters
    ----------
    key:
        Maps a point to its identity; duplicates (by this key) collapse.
        Default: the exact coordinate tuple.
    seed:
        Seed of the rank hash.

    Examples
    --------
    >>> sampler = MinRankL0Sampler(seed=1)
    >>> for v in [(0.0,), (1.0,), (0.0,)]:
    ...     sampler.insert(v)
    >>> sampler.distinct_seen
    2
    """

    def __init__(
        self,
        *,
        key: Callable[[StreamPoint], Hashable] = _default_key,
        seed: int = 0,
    ) -> None:
        self._key = key
        self._hash = SplitMix64(seed)
        self._best_rank: int | None = None
        self._best: StreamPoint | None = None
        self._seen_keys: set[Hashable] = set()
        self._count = 0

    @property
    def points_seen(self) -> int:
        """Number of points inserted."""
        return self._count

    @property
    def distinct_seen(self) -> int:
        """Number of distinct identities observed (diagnostic only; a real
        streaming deployment would not store this set)."""
        return len(self._seen_keys)

    def insert(self, point: StreamPoint | Sequence[float]) -> None:
        """Offer a point; its rank is the hash of its identity."""
        p = coerce_point(point, self._count)
        self._count += 1
        identity = self._key(p)
        self._seen_keys.add(identity)
        rank = self._hash(hash(identity))
        if self._best_rank is None or rank < self._best_rank:
            self._best_rank = rank
            self._best = p

    def extend(self, points: Iterable[StreamPoint | Sequence[float]]) -> None:
        """Insert a sequence of points."""
        for point in points:
            self.insert(point)

    def sample(self) -> StreamPoint:
        """The minimum-rank item: uniform over distinct identities."""
        if self._best is None:
            raise EmptySampleError("no points inserted")
        return self._best

    def space_words(self) -> int:
        """Footprint of the sampler proper (sample + rank), excluding the
        diagnostic identity set."""
        if self._best is None:
            return 2
        return len(self._best.vector) + 5
