"""Durand-Flajolet LogLog counter (ESA 2003).

Stochastic averaging over ``m = 2^b`` buckets: each item is routed by its
first ``b`` hash bits to a bucket whose register keeps the maximum rho of
the remaining bits; the estimate is ``alpha_m * m * 2^mean(registers)``.
Included as an F0 baseline for the Section 5 comparison table.
"""

from __future__ import annotations

from typing import Hashable

from repro.baselines.fm import item_key, lowest_set_bit
from repro.baselines.registers import RegisterSketchSummary
from repro.core.base import StreamSampler
from repro.errors import ParameterError
from repro.hashing.mix import SplitMix64

#: The LogLog bias constant for large m (Durand & Flajolet 2003).
LOGLOG_ALPHA_INF = 0.39701


class LogLogSketch(RegisterSketchSummary, StreamSampler):
    """LogLog distinct counter with ``2^bucket_bits`` registers.

    >>> sketch = LogLogSketch(bucket_bits=6, seed=1)
    >>> _ = sketch.extend(range(5000))
    >>> 1500 <= sketch.estimate() <= 15000
    True
    """

    #: Registry key (see :mod:`repro.api.registry`).
    summary_key = "loglog"

    def __init__(self, *, bucket_bits: int = 6, seed: int = 0) -> None:
        if not 2 <= bucket_bits <= 16:
            raise ParameterError(
                f"bucket_bits must be in [2, 16], got {bucket_bits}"
            )
        self._b = bucket_bits
        self._m = 1 << bucket_bits
        self._registers = [0] * self._m
        self._hash = SplitMix64(seed)

    @property
    def num_registers(self) -> int:
        """Number of registers m."""
        return self._m

    def insert(self, item: Hashable) -> None:
        """Observe one item."""
        value = self._hash(item_key(item))
        bucket = value & (self._m - 1)
        rho = lowest_set_bit(value >> self._b) + 1
        if rho > self._registers[bucket]:
            self._registers[bucket] = rho

    def estimate(self) -> float:
        """``alpha_m * m * 2^mean(register)``."""
        mean_register = sum(self._registers) / self._m
        return LOGLOG_ALPHA_INF * self._m * (2.0**mean_register)

    def space_words(self) -> int:
        """One register per bucket."""
        return self._m + 1

    # query/merge/to_state/from_state: see RegisterSketchSummary.
