"""The Flajolet-Martin probabilistic counter (JCSS 1985).

The classic noiseless-F0 sketch the paper's Section 5 sliding-window
estimator borrows its bias-correction constant from.  Each distinct item
hashes to a geometric "rho" value (index of the lowest set bit); the
largest rho seen, corrected by ``1/0.77351``, estimates the distinct
count.  Averaging rho over independent copies tightens the estimate
(probabilistic counting with stochastic averaging is implemented by
:class:`FMSketch` with ``copies > 1``).
"""

from __future__ import annotations

from typing import Hashable

from repro.core.base import StreamSampler
from repro.errors import ParameterError
from repro.hashing.mix import SplitMix64

#: E[2^R] ~= PHI * F0 with PHI = 0.77351 (Flajolet & Martin 1985).
FM_CORRECTION = 0.77351


def item_key(item: Hashable) -> int:
    """Process-stable integer identity of a sketch item.

    The item sketches (FM, LogLog, HyperLogLog, BJKST) key every item by
    an integer before mixing.  Builtin ``hash()`` is deterministic for
    numbers and tuples of numbers - the library's point streams - but
    randomised per process for ``str``/``bytes``, which would break the
    checkpoint contract (a restored sketch must count the *same* items as
    seen) and cross-process merges.  Strings and bytes therefore go
    through a keyed-nothing BLAKE2b digest instead.
    """
    if isinstance(item, str):
        item = item.encode("utf-8")
    if isinstance(item, (bytes, bytearray)):
        import hashlib

        return int.from_bytes(
            hashlib.blake2b(item, digest_size=8).digest(), "big"
        )
    return hash(item)


def lowest_set_bit(value: int) -> int:
    """Index of the lowest set bit (rho); 64 for value 0.

    >>> lowest_set_bit(8)
    3
    >>> lowest_set_bit(1)
    0
    """
    if value == 0:
        return 64
    return (value & -value).bit_length() - 1


class FMSketch(StreamSampler):
    """Flajolet-Martin distinct counter with optional averaging copies.

    Each copy maintains the classic FM *bitmap* of observed rho values;
    its statistic ``R`` is the index of the lowest unset bit (not the
    maximum rho, whose expectation diverges), and the estimate is
    ``2^mean(R) / 0.77351``.

    >>> sketch = FMSketch(copies=16, seed=3)
    >>> for i in range(1000):
    ...     sketch.insert(i)
    ...     sketch.insert(i)  # duplicates do not matter
    >>> 300 <= sketch.estimate() <= 3000
    True
    """

    #: Registry key (see :mod:`repro.api.registry`).
    summary_key = "fm"

    def __init__(self, *, copies: int = 16, seed: int = 0) -> None:
        if copies < 1:
            raise ParameterError(f"copies must be >= 1, got {copies}")
        self._hashes = [SplitMix64(seed + i) for i in range(copies)]
        self._bitmaps = [0] * copies

    @property
    def copies(self) -> int:
        """Number of averaged sub-sketches."""
        return len(self._hashes)

    def insert(self, item: Hashable) -> None:
        """Observe one item (duplicates are absorbed by the bitmap)."""
        key = item_key(item)
        for i, h in enumerate(self._hashes):
            self._bitmaps[i] |= 1 << lowest_set_bit(h(key))

    def _statistic(self, bitmap: int) -> int:
        """Index of the lowest unset bit of the bitmap."""
        return lowest_set_bit(~bitmap)

    def estimate(self) -> float:
        """``2^mean(R) / 0.77351`` over the copies."""
        mean_r = sum(self._statistic(b) for b in self._bitmaps) / len(
            self._bitmaps
        )
        return (2.0**mean_r) / FM_CORRECTION

    def space_words(self) -> int:
        """One bitmap register per copy."""
        return len(self._bitmaps) + 1

    # ------------------------------------------------------------------ #
    # Summary protocol (see repro.api.protocol)
    # ------------------------------------------------------------------ #

    def query(self, rng=None) -> float:
        """Protocol query: the corrected estimate (rng unused)."""
        return self.estimate()

    def merge(self, *others: "FMSketch") -> "FMSketch":
        """OR the bitmaps (requires identical copy hashes, i.e. inputs
        built from one spec); FM bitmaps are exactly union-mergeable."""
        from repro.api.protocol import check_merge_peers

        check_merge_peers(self, others)
        seeds = [h.seed for h in self._hashes]
        for other in others:
            if [h.seed for h in other._hashes] != seeds:
                raise ParameterError(
                    "cannot merge FM sketches with different hash seeds"
                )
        merged = FMSketch(copies=len(seeds))
        merged._hashes = [SplitMix64(s, premixed=True) for s in seeds]
        merged._bitmaps = list(self._bitmaps)
        for other in others:
            for i, bitmap in enumerate(other._bitmaps):
                merged._bitmaps[i] |= bitmap
        return merged

    def to_state(self) -> dict:
        """Serialise to a JSON-compatible dict (protocol checkpoint)."""
        return {
            "hash_seeds": [h.seed for h in self._hashes],
            "bitmaps": list(self._bitmaps),
        }

    @classmethod
    def from_state(cls, state: dict) -> "FMSketch":
        """Restore a sketch from :meth:`to_state` output."""
        sketch = cls(copies=len(state["hash_seeds"]))
        sketch._hashes = [
            SplitMix64(seed, premixed=True) for seed in state["hash_seeds"]
        ]
        sketch._bitmaps = list(state["bitmaps"])
        return sketch
