"""Shared Summary-protocol plumbing for register-array sketches.

LogLog and HyperLogLog are both "route by the first ``b`` hash bits,
keep the maximum rho per register" sketches; they differ only in how the
registers are combined into an estimate.  Their protocol surface -
``query``, exact max-merge, and the ``bucket_bits + hash_seed +
registers`` checkpoint codec - is therefore identical and lives here
once, as a mixin both classes inherit.
"""

from __future__ import annotations

from repro.errors import ParameterError
from repro.hashing.mix import SplitMix64


class RegisterSketchSummary:
    """Protocol methods shared by the register-array sketches.

    Host classes provide ``_b`` (bucket bits), ``_hash`` (a
    :class:`~repro.hashing.mix.SplitMix64`), ``_registers`` (a list of
    ints) and a ``bucket_bits=`` constructor; ``estimate()`` is the only
    per-class behaviour.
    """

    def query(self, rng=None) -> float:
        """Protocol query: the sketch's estimate (rng unused)."""
        return self.estimate()

    def merge(self, *others):
        """Element-wise register maximum - the classic exact merge
        (requires one shared hash seed and register count, i.e. inputs
        built from one spec)."""
        from repro.api.protocol import check_merge_peers

        check_merge_peers(self, others)
        for other in others:
            if other._b != self._b or other._hash.seed != self._hash.seed:
                raise ParameterError(
                    f"cannot merge {type(self).__name__} sketches with "
                    "different bucket_bits or seeds"
                )
        merged = type(self)(bucket_bits=self._b)
        merged._hash = SplitMix64(self._hash.seed, premixed=True)
        merged._registers = list(self._registers)
        for other in others:
            merged._registers = [
                max(a, b) for a, b in zip(merged._registers, other._registers)
            ]
        return merged

    def to_state(self) -> dict:
        """Serialise to a JSON-compatible dict (protocol checkpoint)."""
        return {
            "bucket_bits": self._b,
            "hash_seed": self._hash.seed,
            "registers": list(self._registers),
        }

    @classmethod
    def from_state(cls, state: dict):
        """Restore a sketch from :meth:`to_state` output."""
        sketch = cls(bucket_bits=state["bucket_bits"])
        sketch._hash = SplitMix64(state["hash_seed"], premixed=True)
        sketch._registers = list(state["registers"])
        return sketch
