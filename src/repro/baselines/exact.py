"""Exact Omega(n)-space robust distinct sampler (ground truth).

Stores the first point of *every* group (greedy, in arrival order - the
partition Theorem 3.1's analysis reasons about) and samples uniformly from
them.  This is what the paper's introduction argues is unavoidable without
subsampling ("we will need to use Omega(n) space to identify the first
point of each group"); it provides the reference distribution and the
space baseline for the experiments.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from repro.core.base import coerce_point
from repro.errors import EmptySampleError, ParameterError
from repro.geometry.distance import within_distance
from repro.geometry.grid import Grid
from repro.streams.point import StreamPoint


class ExactDistinctSampler:
    """One representative per group, found by exact proximity search.

    A grid of side ``alpha`` buckets representatives so lookups stay fast,
    but - unlike the streaming samplers - *every* group is stored.

    >>> sampler = ExactDistinctSampler(alpha=0.5, dim=1)
    >>> for v in [(0.0,), (0.2,), (5.0,)]:
    ...     sampler.insert(v)
    >>> sampler.num_groups
    2
    """

    def __init__(self, alpha: float, dim: int, *, seed: int | None = None) -> None:
        if alpha <= 0:
            raise ParameterError(f"alpha must be positive, got {alpha}")
        self._alpha = alpha
        self._dim = dim
        self._grid = Grid(side=alpha, dim=dim, rng=random.Random(seed))
        self._buckets: dict[tuple[int, ...], list[StreamPoint]] = {}
        self._representatives: list[StreamPoint] = []
        self._count = 0

    @property
    def alpha(self) -> float:
        """Near-duplicate threshold."""
        return self._alpha

    @property
    def num_groups(self) -> int:
        """Number of groups discovered (the exact robust F0 for
        well-separated data; the arrival-order greedy count in general)."""
        return len(self._representatives)

    @property
    def points_seen(self) -> int:
        """Number of points inserted."""
        return self._count

    def representatives(self) -> list[StreamPoint]:
        """The stored group representatives (arrival order)."""
        return list(self._representatives)

    def _neighbour_cells(self, cell: tuple[int, ...]):
        # Side alpha: a representative within alpha lies in a cell whose
        # coordinates differ by at most 1 in each dimension.
        if self._dim <= 6:
            # Exact 3^d enumeration.
            def recurse(axis: int, partial: list[int]):
                if axis == self._dim:
                    yield tuple(partial)
                    return
                base = cell[axis]
                for offset in (-1, 0, 1):
                    partial.append(base + offset)
                    yield from recurse(axis + 1, partial)
                    partial.pop()

            yield from recurse(0, [])
        else:
            # High dimension: fall back to scanning occupied buckets whose
            # coordinates are all within 1 (cheaper than 3^d when sparse).
            for other in self._buckets:
                if all(abs(a - b) <= 1 for a, b in zip(other, cell)):
                    yield other

    def insert(self, point: StreamPoint | Sequence[float]) -> None:
        """Store the point as a new representative unless one is nearby."""
        p = coerce_point(point, self._count)
        self._count += 1
        cell = self._grid.cell_of(p.vector)
        for neighbour in self._neighbour_cells(cell):
            for rep in self._buckets.get(neighbour, ()):
                if within_distance(rep.vector, p.vector, self._alpha):
                    return
        self._buckets.setdefault(cell, []).append(p)
        self._representatives.append(p)

    def extend(self, points: Iterable[StreamPoint | Sequence[float]]) -> None:
        """Insert a sequence of points."""
        for point in points:
            self.insert(point)

    def sample(self, rng: random.Random | None = None) -> StreamPoint:
        """Uniformly random group representative."""
        if not self._representatives:
            raise EmptySampleError("no points inserted")
        rng = rng if rng is not None else random.Random()
        return rng.choice(self._representatives)

    def space_words(self) -> int:
        """Footprint: every representative is stored (Omega(n))."""
        return len(self._representatives) * (self._dim + 2) + 3
