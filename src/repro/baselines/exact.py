"""Exact Omega(n)-space robust distinct sampler (ground truth).

Stores the first point of *every* group (greedy, in arrival order - the
partition Theorem 3.1's analysis reasons about) and samples uniformly from
them.  This is what the paper's introduction argues is unavoidable without
subsampling ("we will need to use Omega(n) space to identify the first
point of each group"); it provides the reference distribution and the
space baseline for the experiments.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.core.base import StreamSampler, coerce_point
from repro.errors import EmptySampleError, ParameterError
from repro.geometry.distance import within_distance
from repro.geometry.grid import Grid
from repro.streams.point import StreamPoint


class ExactDistinctSampler(StreamSampler):
    """One representative per group, found by exact proximity search.

    A grid of side ``alpha`` buckets representatives so lookups stay fast,
    but - unlike the streaming samplers - *every* group is stored.

    >>> sampler = ExactDistinctSampler(alpha=0.5, dim=1)
    >>> for v in [(0.0,), (0.2,), (5.0,)]:
    ...     sampler.insert(v)
    >>> sampler.num_groups
    2
    """

    #: Registry key (see :mod:`repro.api.registry`).
    summary_key = "exact"

    def __init__(self, alpha: float, dim: int, *, seed: int | None = None) -> None:
        if alpha <= 0:
            raise ParameterError(f"alpha must be positive, got {alpha}")
        self._alpha = alpha
        self._dim = dim
        self._grid = Grid(side=alpha, dim=dim, rng=random.Random(seed))
        self._buckets: dict[tuple[int, ...], list[StreamPoint]] = {}
        self._representatives: list[StreamPoint] = []
        self._count = 0

    @property
    def alpha(self) -> float:
        """Near-duplicate threshold."""
        return self._alpha

    @property
    def num_groups(self) -> int:
        """Number of groups discovered (the exact robust F0 for
        well-separated data; the arrival-order greedy count in general)."""
        return len(self._representatives)

    @property
    def points_seen(self) -> int:
        """Number of points inserted."""
        return self._count

    def representatives(self) -> list[StreamPoint]:
        """The stored group representatives (arrival order)."""
        return list(self._representatives)

    def _neighbour_cells(self, cell: tuple[int, ...]):
        # Side alpha: a representative within alpha lies in a cell whose
        # coordinates differ by at most 1 in each dimension.
        if self._dim <= 6:
            # Exact 3^d enumeration.
            def recurse(axis: int, partial: list[int]):
                if axis == self._dim:
                    yield tuple(partial)
                    return
                base = cell[axis]
                for offset in (-1, 0, 1):
                    partial.append(base + offset)
                    yield from recurse(axis + 1, partial)
                    partial.pop()

            yield from recurse(0, [])
        else:
            # High dimension: fall back to scanning occupied buckets whose
            # coordinates are all within 1 (cheaper than 3^d when sparse).
            for other in self._buckets:
                if all(abs(a - b) <= 1 for a, b in zip(other, cell)):
                    yield other

    def insert(self, point: StreamPoint | Sequence[float]) -> None:
        """Store the point as a new representative unless one is nearby."""
        p = coerce_point(point, self._count)
        self._count += 1
        cell = self._grid.cell_of(p.vector)
        for neighbour in self._neighbour_cells(cell):
            for rep in self._buckets.get(neighbour, ()):
                if within_distance(rep.vector, p.vector, self._alpha):
                    return
        self._buckets.setdefault(cell, []).append(p)
        self._representatives.append(p)

    def sample(self, rng: random.Random | None = None) -> StreamPoint:
        """Uniformly random group representative."""
        if not self._representatives:
            raise EmptySampleError("no points inserted")
        rng = rng if rng is not None else random.Random()
        return rng.choice(self._representatives)

    def space_words(self) -> int:
        """Footprint: every representative is stored (Omega(n))."""
        return len(self._representatives) * (self._dim + 2) + 3

    # ------------------------------------------------------------------ #
    # Summary protocol (see repro.api.protocol)
    # ------------------------------------------------------------------ #

    def query(self, rng: random.Random | None = None) -> StreamPoint:
        """Protocol query: a uniformly random representative."""
        return self.sample(rng)

    def _absorb(self, point: StreamPoint) -> None:
        """Install a foreign representative unless one is already nearby."""
        cell = self._grid.cell_of(point.vector)
        for neighbour in self._neighbour_cells(cell):
            for rep in self._buckets.get(neighbour, ()):
                if within_distance(rep.vector, point.vector, self._alpha):
                    return
        self._buckets.setdefault(cell, []).append(point)
        self._representatives.append(point)

    def merge(self, *others: "ExactDistinctSampler") -> "ExactDistinctSampler":
        """Union of the group sets (greedy, self's representatives first).

        Requires identical grids (same alpha/dim/offset - build the
        inputs from one spec).  Groups straddling inputs are deduplicated
        by proximity, keeping this sampler's representative.
        """
        from repro.api.protocol import check_merge_peers

        check_merge_peers(self, others)
        for other in others:
            if (
                other._alpha != self._alpha
                or other._dim != self._dim
                or other._grid.offset != self._grid.offset
            ):
                raise ParameterError(
                    "cannot merge exact samplers with different grids"
                )
        merged = ExactDistinctSampler.__new__(ExactDistinctSampler)
        merged._alpha = self._alpha
        merged._dim = self._dim
        merged._grid = self._grid
        merged._buckets = {}
        merged._representatives = []
        merged._count = self._count + sum(o._count for o in others)
        for source in (self, *others):
            for rep in source._representatives:
                merged._absorb(rep)
        return merged

    def to_state(self) -> dict:
        """Serialise to a JSON-compatible dict (protocol checkpoint)."""
        from repro.core import serialize

        return {
            "alpha": self._alpha,
            "dim": self._dim,
            "grid_offset": list(self._grid.offset),
            "points_seen": self._count,
            "representatives": [
                serialize.point_to_state(p) for p in self._representatives
            ],
        }

    @classmethod
    def from_state(cls, state: dict) -> "ExactDistinctSampler":
        """Restore a sampler from :meth:`to_state` output."""
        from repro.core import serialize

        sampler = cls.__new__(cls)
        sampler._alpha = state["alpha"]
        sampler._dim = state["dim"]
        sampler._grid = Grid(
            side=state["alpha"],
            dim=state["dim"],
            offset=tuple(state["grid_offset"]),
        )
        sampler._buckets = {}
        sampler._representatives = []
        sampler._count = state["points_seen"]
        for point_state in state["representatives"]:
            point = serialize.point_from_state(point_state)
            cell = sampler._grid.cell_of(point.vector)
            sampler._buckets.setdefault(cell, []).append(point)
            sampler._representatives.append(point)
        return sampler
