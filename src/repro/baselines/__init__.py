"""Baseline algorithms the paper builds on or implicitly compares against.

None of these handle near-duplicates; they serve three purposes:

* motivation experiments - :class:`~repro.baselines.naive.NaiveReservoirSampler`
  demonstrates the bias of standard sampling on noisy data (the paper's
  introduction), and :class:`~repro.baselines.minrank.MinRankL0Sampler` is
  the folklore noiseless l0-sampler the techniques overview starts from;
* ground truth - :class:`~repro.baselines.exact.ExactDistinctSampler`
  stores one representative per group in Omega(n) space;
* F0 sketch baselines for Section 5 - Flajolet-Martin
  (:class:`~repro.baselines.fm.FMSketch`), Durand-Flajolet LogLog
  (:class:`~repro.baselines.loglog.LogLogSketch`), HyperLogLog
  (:class:`~repro.baselines.hyperloglog.HyperLogLog`) and BJKST
  (:class:`~repro.baselines.bjkst.BJKSTSketch`).
"""

from repro.baselines.bjkst import BJKSTSketch
from repro.baselines.exact import ExactDistinctSampler
from repro.baselines.fm import FMSketch
from repro.baselines.hyperloglog import HyperLogLog
from repro.baselines.loglog import LogLogSketch
from repro.baselines.minrank import MinRankL0Sampler
from repro.baselines.naive import NaiveReservoirSampler

__all__ = [
    "NaiveReservoirSampler",
    "MinRankL0Sampler",
    "ExactDistinctSampler",
    "FMSketch",
    "LogLogSketch",
    "HyperLogLog",
    "BJKSTSketch",
]
