"""The BJKST distinct-elements sketch (Bar-Yossef et al., RANDOM 2002).

Keep the set ``B`` of items whose hash is below a shrinking threshold
(equivalently: sampled at rate ``1/2^z``); whenever ``|B|`` exceeds
``kappa / eps^2`` increment ``z`` and re-filter.  The estimate is
``|B| * 2^z``.  This is exactly the framework Section 5 plugs the robust
sampler into, so it doubles as the noiseless reference for
:class:`~repro.core.f0_infinite.RobustF0EstimatorIW`.
"""

from __future__ import annotations

import math
from typing import Hashable

from repro.baselines.fm import item_key
from repro.core.base import StreamSampler
from repro.errors import ParameterError
from repro.hashing.mix import SplitMix64


class BJKSTSketch(StreamSampler):
    """BJKST F0 sketch with capacity ``ceil(kappa / eps^2)``.

    >>> sketch = BJKSTSketch(epsilon=0.2, seed=4)
    >>> _ = sketch.extend(range(2000))
    >>> 1500 <= sketch.estimate() <= 2500
    True
    """

    #: Registry key (see :mod:`repro.api.registry`).
    summary_key = "bjkst"

    def __init__(
        self, *, epsilon: float = 0.2, kappa: float = 8.0, seed: int = 0
    ) -> None:
        if not 0 < epsilon <= 1:
            raise ParameterError(f"epsilon must be in (0, 1], got {epsilon}")
        self._capacity = max(4, math.ceil(kappa / (epsilon * epsilon)))
        self._hash = SplitMix64(seed)
        self._z = 0
        self._kept: dict[int, int] = {}  # hashed id -> raw hash value

    @property
    def capacity(self) -> int:
        """Maximum kept-set size before the rate halves."""
        return self._capacity

    @property
    def level(self) -> int:
        """Current subsampling level z (rate 1/2^z)."""
        return self._z

    def insert(self, item: Hashable) -> None:
        """Observe one item."""
        key = item_key(item)
        value = self._hash(key)
        if value & ((1 << self._z) - 1):
            return
        self._kept[key] = value
        while len(self._kept) > self._capacity:
            self._z += 1
            mask = (1 << self._z) - 1
            self._kept = {k: v for k, v in self._kept.items() if not v & mask}

    def estimate(self) -> float:
        """``|B| * 2^z``."""
        return float(len(self._kept) * (1 << self._z))

    def space_words(self) -> int:
        """Kept identifiers plus the level counter."""
        return 2 * len(self._kept) + 2

    # ------------------------------------------------------------------ #
    # Summary protocol (see repro.api.protocol)
    # ------------------------------------------------------------------ #

    def query(self, rng=None) -> float:
        """Protocol query: the estimate (rng unused)."""
        return self.estimate()

    def merge(self, *others: "BJKSTSketch") -> "BJKSTSketch":
        """Union the kept sets at the maximum level, then re-filter.

        Sampling decisions nest across levels (a key kept at level z is
        kept at every shallower level), so the union-at-max-z is exactly
        the kept set a single sketch at that level would hold; the
        capacity rule then applies as usual.  Requires one shared hash
        seed and capacity.
        """
        from repro.api.protocol import check_merge_peers

        check_merge_peers(self, others)
        for other in others:
            if (
                other._capacity != self._capacity
                or other._hash.seed != self._hash.seed
            ):
                raise ParameterError(
                    "cannot merge BJKST sketches with different "
                    "capacities or seeds"
                )
        merged = BJKSTSketch()
        merged._capacity = self._capacity
        merged._hash = SplitMix64(self._hash.seed, premixed=True)
        merged._z = max(s._z for s in (self, *others))
        mask = (1 << merged._z) - 1
        merged._kept = {}
        for sketch in (self, *others):
            for key, value in sketch._kept.items():
                if not value & mask:
                    merged._kept[key] = value
        while len(merged._kept) > merged._capacity:
            merged._z += 1
            mask = (1 << merged._z) - 1
            merged._kept = {
                k: v for k, v in merged._kept.items() if not v & mask
            }
        return merged

    def to_state(self) -> dict:
        """Serialise to a JSON-compatible dict (protocol checkpoint)."""
        return {
            "capacity": self._capacity,
            "hash_seed": self._hash.seed,
            "level": self._z,
            "kept": sorted([key, value] for key, value in self._kept.items()),
        }

    @classmethod
    def from_state(cls, state: dict) -> "BJKSTSketch":
        """Restore a sketch from :meth:`to_state` output."""
        sketch = cls()
        sketch._capacity = state["capacity"]
        sketch._hash = SplitMix64(state["hash_seed"], premixed=True)
        sketch._z = state["level"]
        sketch._kept = {key: value for key, value in state["kept"]}
        return sketch
