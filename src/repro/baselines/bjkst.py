"""The BJKST distinct-elements sketch (Bar-Yossef et al., RANDOM 2002).

Keep the set ``B`` of items whose hash is below a shrinking threshold
(equivalently: sampled at rate ``1/2^z``); whenever ``|B|`` exceeds
``kappa / eps^2`` increment ``z`` and re-filter.  The estimate is
``|B| * 2^z``.  This is exactly the framework Section 5 plugs the robust
sampler into, so it doubles as the noiseless reference for
:class:`~repro.core.f0_infinite.RobustF0EstimatorIW`.
"""

from __future__ import annotations

import math
from typing import Hashable, Iterable

from repro.errors import ParameterError
from repro.hashing.mix import SplitMix64


class BJKSTSketch:
    """BJKST F0 sketch with capacity ``ceil(kappa / eps^2)``.

    >>> sketch = BJKSTSketch(epsilon=0.2, seed=4)
    >>> sketch.extend(range(2000))
    >>> 1500 <= sketch.estimate() <= 2500
    True
    """

    def __init__(
        self, *, epsilon: float = 0.2, kappa: float = 8.0, seed: int = 0
    ) -> None:
        if not 0 < epsilon <= 1:
            raise ParameterError(f"epsilon must be in (0, 1], got {epsilon}")
        self._capacity = max(4, math.ceil(kappa / (epsilon * epsilon)))
        self._hash = SplitMix64(seed)
        self._z = 0
        self._kept: dict[int, int] = {}  # hashed id -> raw hash value

    @property
    def capacity(self) -> int:
        """Maximum kept-set size before the rate halves."""
        return self._capacity

    @property
    def level(self) -> int:
        """Current subsampling level z (rate 1/2^z)."""
        return self._z

    def insert(self, item: Hashable) -> None:
        """Observe one item."""
        key = hash(item)
        value = self._hash(key)
        if value & ((1 << self._z) - 1):
            return
        self._kept[key] = value
        while len(self._kept) > self._capacity:
            self._z += 1
            mask = (1 << self._z) - 1
            self._kept = {k: v for k, v in self._kept.items() if not v & mask}

    def extend(self, items: Iterable[Hashable]) -> None:
        """Observe a sequence of items."""
        for item in items:
            self.insert(item)

    def estimate(self) -> float:
        """``|B| * 2^z``."""
        return float(len(self._kept) * (1 << self._z))

    def space_words(self) -> int:
        """Kept identifiers plus the level counter."""
        return 2 * len(self._kept) + 2
