"""Universal checkpoint/restore: the envelope layer of the Summary protocol.

Streaming jobs run for days; a sketch that cannot be checkpointed has to
restart from scratch on every deploy.  Every summary in the library
implements ``to_state()`` / ``from_state(state)`` (the
:class:`repro.api.Summary` protocol); this module wraps those states in a
**versioned envelope** tagged with the summary's registry key::

    {"format": "repro/summary", "version": 2,
     "summary": "l0-sliding", "state": {...}}

so :func:`summary_from_state` can dispatch the restore through
:mod:`repro.api.registry` without being told the type.  Restores are
exact: the restored summary makes decisions identical to the original on
the remainder of the stream (``repro.engine.state_fingerprint``-equal
for every core sampler - including the sliding-window hierarchy, whose
shared-store state is captured verbatim: the flat level-tagged record
list, reservoirs, and the one hierarchy-wide lazy eviction heap
including stale entries and tiebreak counters; legacy one-store-per-level
checkpoints remain readable).

Version-1 checkpoints (the original infinite-window-only format) remain
readable; writers emit version 2.

>>> from repro.api import build
>>> sampler = build("l0-infinite", alpha=1.0, dim=1, seed=3)
>>> sampler.process_many([(0.0,), (9.0,)])
2
>>> envelope = summary_to_state(sampler)
>>> envelope["version"], envelope["summary"]
(2, 'l0-infinite')
>>> summary_from_state(envelope).points_seen
2
"""

from __future__ import annotations

import json
from typing import Any

from repro.core import serialize
from repro.core.infinite_window import RobustL0SamplerIW
from repro.errors import CheckpointError

#: Current envelope schema version.
FORMAT_VERSION = 2

#: Envelope format tag.
FORMAT_NAME = "repro/summary"


def summary_to_state(summary: Any) -> dict[str, Any]:
    """Wrap any summary's protocol state in a versioned envelope."""
    key = getattr(type(summary), "summary_key", None)
    to_state = getattr(summary, "to_state", None)
    if key is None or to_state is None:
        raise CheckpointError(
            f"{type(summary).__name__} does not implement the Summary "
            "checkpoint protocol (summary_key + to_state/from_state)"
        )
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "summary": key,
        "state": to_state(),
    }


def summary_from_state(envelope: dict[str, Any]) -> Any:
    """Restore any summary from a :func:`summary_to_state` envelope.

    The restore is dispatched through the registry: the envelope's
    ``summary`` key names the class whose ``from_state`` rebuilds the
    instance.  Version-1 checkpoints (infinite-window sampler only) are
    recognised and upgraded transparently.
    """
    from repro.api import registry

    version = envelope.get("version")
    if version == 1:
        return _legacy_sampler_from_state(envelope)
    if version != FORMAT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {version!r}"
        )
    key = envelope.get("summary")
    if not isinstance(key, str):
        raise CheckpointError("checkpoint envelope is missing a summary key")
    state = envelope.get("state")
    if not isinstance(state, dict):
        raise CheckpointError(
            "checkpoint envelope is missing its state payload"
        )
    cls = registry.summary_class(key)
    return cls.from_state(state)


def dumps_summary(summary: Any) -> bytes:
    """Serialise a summary's checkpoint envelope to UTF-8 JSON bytes.

    The bytes-level twin of :func:`dump_summary`: same envelope, no
    filesystem.  This is what stores that hold envelopes in memory, a
    database or an object store (e.g. the serving layer's
    :class:`repro.service.EnvelopeStore`) round-trip through.

    >>> sampler = RobustL0SamplerIW(1.0, 1, seed=3)
    >>> sampler.insert((0.0,))
    >>> loads_summary(dumps_summary(sampler)).points_seen
    1
    """
    return json.dumps(summary_to_state(summary)).encode("utf-8")


def loads_summary(data: bytes) -> Any:
    """Restore a summary from :func:`dumps_summary` bytes.

    Raises
    ------
    CheckpointError
        When the bytes are not a valid JSON checkpoint envelope.
    """
    try:
        envelope = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise CheckpointError(
            f"checkpoint bytes are not a JSON envelope: {error}"
        ) from error
    if not isinstance(envelope, dict):
        raise CheckpointError(
            "checkpoint bytes do not hold an envelope object"
        )
    return summary_from_state(envelope)


def dump_summary(summary: Any, path: str) -> None:
    """Write a summary checkpoint file (:func:`dumps_summary` to disk).

    The write is atomic and durable
    (:func:`repro.backends.atomic_write_bytes`: fsynced same-directory
    temp file + ``os.replace`` + directory fsync), so a crash mid-dump
    leaves either the previous checkpoint or the new one, never a torn
    file.

    >>> import tempfile, os
    >>> sampler = RobustL0SamplerIW(1.0, 1, seed=3)
    >>> sampler.insert((0.0,))
    >>> with tempfile.TemporaryDirectory() as d:
    ...     dump_summary(sampler, os.path.join(d, "ckpt.json"))
    ...     restored = load_summary(os.path.join(d, "ckpt.json"))
    >>> restored.points_seen
    1
    """
    from repro.backends import atomic_write_bytes

    atomic_write_bytes(path, dumps_summary(summary))


def load_summary(path: str) -> Any:
    """Read a checkpoint file back into a live summary."""
    with open(path, "rb") as handle:
        return loads_summary(handle.read())


def store_summary(
    backend: Any, key: str, summary: Any, *, cas_version: int | None = None
) -> int:
    """Write a summary's envelope into a state backend; returns the version.

    The backend-keyed twin of :func:`dump_summary`.  With
    ``cas_version`` the write goes through the backend's atomic
    :meth:`~repro.backends.StateBackend.compare_and_swap` (``0`` =
    create-only), so concurrent checkpointers of the same key cannot
    interleave - the loser raises
    :class:`~repro.errors.CASConflictError` with nothing applied.

    >>> from repro.backends import MemoryBackend
    >>> backend = MemoryBackend()
    >>> sampler = RobustL0SamplerIW(1.0, 1, seed=3)
    >>> sampler.insert((0.0,))
    >>> store_summary(backend, "job-1", sampler)
    1
    >>> load_stored_summary(backend, "job-1").points_seen
    1
    """
    data = dumps_summary(summary)
    if cas_version is None:
        return backend.put(key, data)
    return backend.compare_and_swap(key, cas_version, data)


def load_stored_summary(backend: Any, key: str) -> Any | None:
    """Restore the summary checkpointed under ``key``, or ``None``.

    The backend-keyed twin of :func:`load_summary`; an absent key is
    ``None`` (a fresh job), a present-but-invalid envelope raises
    :class:`~repro.errors.CheckpointError`.
    """
    data = backend.get(key)
    if data is None:
        return None
    return loads_summary(data)


# --------------------------------------------------------------------- #
# legacy version-1 surface (infinite-window sampler only)
# --------------------------------------------------------------------- #


def _legacy_sampler_from_state(state: dict[str, Any]) -> RobustL0SamplerIW:
    """Restore a version-1 checkpoint (flat, infinite-window only)."""
    import ast

    config = serialize.config_from_state(state["config"])
    policy_state = state["policy"]
    sampler = RobustL0SamplerIW(
        config.alpha,
        config.dim,
        kappa0=policy_state["kappa0"],
        expected_stream_length=policy_state["expected_stream_length"],
        accept_capacity=policy_state["fixed"],
        track_members=state["track_members"],
        config=config,
    )
    sampler._rate_denominator = state["rate_denominator"]
    sampler._count = state["points_seen"]
    sampler._peak_words = state["peak_space_words"]
    sampler._policy._seen = policy_state["seen"]
    sampler._member_rng.setstate(
        ast.literal_eval(state["member_rng_state"])
    )
    for record_state in state["records"]:
        sampler._store.add(_legacy_record_from_state(record_state))
    return sampler


def _legacy_record_from_state(state: dict[str, Any]):
    # Version 1 used the same record layout as repro.core.serialize.
    return serialize.record_from_state(state)


def sampler_to_state(sampler: RobustL0SamplerIW) -> dict[str, Any]:
    """Serialise an infinite-window sampler (now a protocol envelope).

    Kept as a compatibility alias for the original single-sampler API;
    new code should use :func:`summary_to_state`.

    >>> sampler = RobustL0SamplerIW(1.0, 1, seed=3)
    >>> sampler.insert((0.0,))
    >>> state = sampler_to_state(sampler)
    >>> state["version"], state["state"]["rate_denominator"]
    (2, 1)
    """
    return summary_to_state(sampler)


def sampler_from_state(state: dict[str, Any]) -> RobustL0SamplerIW:
    """Restore an infinite-window sampler from version-1 or -2 state.

    Compatibility alias; new code should use :func:`summary_from_state`.
    """
    restored = summary_from_state(state)
    if not isinstance(restored, RobustL0SamplerIW):
        raise CheckpointError(
            "checkpoint does not hold an infinite-window sampler; use "
            "load_summary/summary_from_state for other summaries"
        )
    return restored


def dump_sampler(sampler: RobustL0SamplerIW, path: str) -> None:
    """Compatibility alias for :func:`dump_summary`."""
    dump_summary(sampler, path)


def load_sampler(path: str) -> RobustL0SamplerIW:
    """Compatibility alias: load a checkpoint holding an IW sampler."""
    with open(path, "r", encoding="utf-8") as handle:
        return sampler_from_state(json.load(handle))


__all__ = [
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "dump_sampler",
    "dump_summary",
    "dumps_summary",
    "load_sampler",
    "load_stored_summary",
    "load_summary",
    "loads_summary",
    "sampler_from_state",
    "sampler_to_state",
    "store_summary",
    "summary_from_state",
    "summary_to_state",
]
