"""Checkpoint/restore for the infinite-window sampler.

Streaming jobs run for days; a sketch that cannot be checkpointed has to
restart from scratch on every deploy.  This module serialises a
:class:`~repro.core.infinite_window.RobustL0SamplerIW` - configuration
(grid offset, hash state), rate, and every candidate record - to a plain
JSON-compatible dict and restores it bit-for-bit: the restored sampler
makes byte-identical decisions on the remainder of the stream.

Only the infinite-window sampler is covered; sliding-window state is
dominated by in-window points and is usually cheaper to rebuild by
replaying the window.
"""

from __future__ import annotations

import json
from typing import Any

from repro.core.base import CandidateRecord, SamplerConfig
from repro.core.infinite_window import RobustL0SamplerIW
from repro.errors import ParameterError
from repro.geometry.grid import Grid
from repro.hashing.kwise import KWiseHash
from repro.hashing.mix import SplitMix64
from repro.hashing.sampling import SamplingHash
from repro.streams.point import StreamPoint

#: Schema version embedded in every checkpoint.
FORMAT_VERSION = 1


def _point_to_state(point: StreamPoint) -> dict[str, Any]:
    return {"v": list(point.vector), "i": point.index, "t": point.time}


def _point_from_state(state: dict[str, Any]) -> StreamPoint:
    return StreamPoint(tuple(state["v"]), state["i"], state["t"])


def _config_to_state(config: SamplerConfig) -> dict[str, Any]:
    base = config.hash.base
    if isinstance(base, SplitMix64):
        hash_state: dict[str, Any] = {"kind": "splitmix64", "seed": base.seed}
    elif isinstance(base, KWiseHash):
        hash_state = {"kind": "kwise", "coefficients": list(base.coefficients)}
    else:
        raise ParameterError(
            f"cannot serialise hash of type {type(base).__name__}"
        )
    return {
        "alpha": config.alpha,
        "dim": config.dim,
        "grid_side": config.grid.side,
        "grid_offset": list(config.grid.offset),
        "hash": hash_state,
    }


def _config_from_state(state: dict[str, Any]) -> SamplerConfig:
    hash_state = state["hash"]
    if hash_state["kind"] == "splitmix64":
        base = SplitMix64(hash_state["seed"], premixed=True)
    elif hash_state["kind"] == "kwise":
        base = KWiseHash.from_coefficients(tuple(hash_state["coefficients"]))
    else:
        raise ParameterError(f"unknown hash kind {hash_state['kind']!r}")
    grid = Grid(
        side=state["grid_side"],
        dim=state["dim"],
        offset=tuple(state["grid_offset"]),
    )
    return SamplerConfig(
        alpha=state["alpha"],
        dim=state["dim"],
        grid=grid,
        hash=SamplingHash(base),
    )


def _record_to_state(record: CandidateRecord) -> dict[str, Any]:
    state = {
        "rep": _point_to_state(record.representative),
        "cell": list(record.cell),
        "cell_hash": record.cell_hash,
        "adj_hashes": list(record.adj_hashes),
        "accepted": record.accepted,
        "count": record.count,
    }
    if record.last is not record.representative:
        state["last"] = _point_to_state(record.last)
    if record.member is not None:
        state["member"] = _point_to_state(record.member)
    return state


def _record_from_state(state: dict[str, Any]) -> CandidateRecord:
    representative = _point_from_state(state["rep"])
    last = (
        _point_from_state(state["last"]) if "last" in state else representative
    )
    member = _point_from_state(state["member"]) if "member" in state else None
    return CandidateRecord(
        representative=representative,
        cell=tuple(state["cell"]),
        cell_hash=state["cell_hash"],
        adj_hashes=tuple(state["adj_hashes"]),
        accepted=state["accepted"],
        last=last,
        count=state["count"],
        member=member,
    )


def sampler_to_state(sampler: RobustL0SamplerIW) -> dict[str, Any]:
    """Serialise an infinite-window sampler to a JSON-compatible dict.

    >>> sampler = RobustL0SamplerIW(1.0, 1, seed=3)
    >>> sampler.insert((0.0,))
    >>> state = sampler_to_state(sampler)
    >>> state["version"], state["rate_denominator"]
    (1, 1)
    """
    policy = sampler._policy
    return {
        "version": FORMAT_VERSION,
        "config": _config_to_state(sampler.config),
        "rate_denominator": sampler.rate_denominator,
        "points_seen": sampler.points_seen,
        "peak_space_words": sampler.peak_space_words,
        "track_members": sampler._track_members,
        "member_rng_state": repr(sampler._member_rng.getstate()),
        "policy": {
            "kappa0": policy.kappa0,
            "expected_stream_length": policy.expected_stream_length,
            "fixed": policy.fixed,
            "seen": policy._seen,
        },
        "records": [
            _record_to_state(record)
            for record in sampler._store.records()
        ],
    }


def sampler_from_state(state: dict[str, Any]) -> RobustL0SamplerIW:
    """Restore a sampler from :func:`sampler_to_state` output.

    The restored sampler continues the stream with decisions identical to
    the original (same grid, hash, rate and candidate records).
    """
    if state.get("version") != FORMAT_VERSION:
        raise ParameterError(
            f"unsupported checkpoint version {state.get('version')!r}"
        )
    config = _config_from_state(state["config"])
    policy = state["policy"]
    sampler = RobustL0SamplerIW(
        config.alpha,
        config.dim,
        kappa0=policy["kappa0"],
        expected_stream_length=policy["expected_stream_length"],
        accept_capacity=policy["fixed"],
        track_members=state["track_members"],
        config=config,
    )
    sampler._rate_denominator = state["rate_denominator"]
    sampler._count = state["points_seen"]
    sampler._peak_words = state["peak_space_words"]
    sampler._policy._seen = policy["seen"]
    import ast

    sampler._member_rng.setstate(ast.literal_eval(state["member_rng_state"]))
    for record_state in state["records"]:
        sampler._store.add(_record_from_state(record_state))
    return sampler


def dump_sampler(sampler: RobustL0SamplerIW, path: str) -> None:
    """Write a checkpoint file.

    >>> import tempfile, os
    >>> sampler = RobustL0SamplerIW(1.0, 1, seed=3)
    >>> sampler.insert((0.0,))
    >>> with tempfile.TemporaryDirectory() as d:
    ...     dump_sampler(sampler, os.path.join(d, "ckpt.json"))
    ...     restored = load_sampler(os.path.join(d, "ckpt.json"))
    >>> restored.points_seen
    1
    """
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(sampler_to_state(sampler), handle)


def load_sampler(path: str) -> RobustL0SamplerIW:
    """Read a checkpoint file back into a live sampler."""
    with open(path, "r", encoding="utf-8") as handle:
        return sampler_from_state(json.load(handle))
