"""Distinct sampling over distributed noisy streams.

The related-work discussion cites distributed distinct sampling (Chung &
Tirthapura, IPDPS 2015) and notes that rank-based approaches break on
near-duplicates.  The robust sampler, however, distributes naturally:
because every sampling decision is a deterministic function of (grid,
hash, representative cell), shard samplers built from one shared
:class:`~repro.core.base.SamplerConfig` make *consistent* accept/reject
decisions, and a coordinator can merge their states into exactly what a
single sampler would have produced on the union stream - up to group
representatives differing per shard (each shard sees its own first point
of a group), which merging reconciles by proximity.
"""

from repro.distributed.coordinator import (
    DistributedRobustSampler,
    ShardSampler,
    StreamingMerge,
)

__all__ = ["DistributedRobustSampler", "ShardSampler", "StreamingMerge"]
