"""Coordinator/shard protocol for distributed robust sampling.

Deployment model: ``k`` independent stream shards (e.g. per-datacenter
feeds of the same logical event stream) each run a
:class:`ShardSampler`; a coordinator periodically pulls their compact
states and merges them into a single sampler over the union stream.

Consistency argument: all shards share one ``SamplerConfig`` (same grid
offset, same sampling hash), so a group's accept/reject status at rate
``1/R`` is the same everywhere - it depends only on the representative's
cell.  The merge itself is the Summary protocol's
:meth:`repro.core.infinite_window.RobustL0SamplerIW.merge`: raise every
shard to the maximum rate (decisions nest), deduplicate groups observed
by several shards by proximity, keep the earliest representative and
pool the counts.

Shards are **spec-constructed**: the coordinator holds one
:class:`~repro.api.specs.L0InfiniteSpec` describing every shard, derives
the shared config from it once, and builds each shard from the spec.
The whole coordinator checkpoints through the same protocol
(:meth:`to_state` / :meth:`from_state`), shards mid-stream included.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.core.base import DEFAULT_KAPPA0, SamplerConfig
from repro.core.infinite_window import RobustL0SamplerIW
from repro.errors import EmptySampleError, ParameterError
from repro.streams.point import StreamPoint

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.api.specs import L0InfiniteSpec


def _shard_spec(
    alpha: float | None,
    dim: int | None,
    spec: "L0InfiniteSpec | None",
    seed: int | None,
    kappa0: float,
    expected_stream_length: int | None,
) -> "L0InfiniteSpec":
    """Normalise the legacy ``(alpha, dim, ...)`` surface onto a spec.

    The two surfaces are mutually exclusive: a spec given alongside any
    legacy argument is an error rather than silently winning over it.
    """
    from repro.api.specs import L0InfiniteSpec

    if spec is not None:
        if (
            alpha is not None
            or dim is not None
            or seed is not None
            or kappa0 != DEFAULT_KAPPA0
            or expected_stream_length is not None
        ):
            raise ParameterError(
                "pass alpha/dim/seed/kappa0/expected_stream_length inside "
                "the spec, not alongside it"
            )
        return spec
    if alpha is None or dim is None:
        raise ParameterError(
            "either a spec or (alpha, dim) is required"
        )
    return L0InfiniteSpec(
        alpha=alpha,
        dim=dim,
        seed=seed,
        kappa0=kappa0,
        expected_stream_length=expected_stream_length,
    )


class ShardSampler(RobustL0SamplerIW):
    """A shard's local robust sampler.

    Identical to :class:`~repro.core.infinite_window.RobustL0SamplerIW`
    except that it is built from the coordinator's spec plus the *shared*
    config (enforced) and carries a shard id for bookkeeping.
    """

    def __init__(
        self,
        shard_id: int,
        config: SamplerConfig,
        *,
        spec: "L0InfiniteSpec | None" = None,
        kappa0: float = DEFAULT_KAPPA0,
        expected_stream_length: int | None = None,
    ) -> None:
        if spec is not None:
            kappa0 = spec.kappa0
            expected_stream_length = spec.expected_stream_length
        super().__init__(
            config.alpha,
            config.dim,
            kappa0=kappa0,
            expected_stream_length=expected_stream_length,
            config=config,
        )
        self._shard_id = shard_id

    @property
    def shard_id(self) -> int:
        """This shard's identifier."""
        return self._shard_id

    def to_state(self) -> dict[str, Any]:
        """Protocol state plus the shard id."""
        state = super().to_state()
        state["shard_id"] = self._shard_id
        return state

    @classmethod
    def _construct_for_restore(cls, state, config, policy) -> "ShardSampler":
        return cls(
            state["shard_id"],
            config,
            kappa0=policy.kappa0,
            expected_stream_length=policy.expected_stream_length,
        )


class StreamingMerge:
    """Incremental union-sampler accumulator (the streaming half of the
    coordinator's merge).

    :meth:`fold` absorbs one shard at a time through the Summary
    protocol's pairwise :meth:`~repro.core.infinite_window.RobustL0SamplerIW.merge`,
    so a coordinator can start merging as soon as the first shard
    finishes instead of waiting for all of them.  The result of folding
    shards in a fixed order is deterministic; the barrier-style
    :meth:`DistributedRobustSampler.merged_sampler` remains the one-shot
    variadic form.

    >>> a = RobustL0SamplerIW(1.0, 1, seed=3)
    >>> b = RobustL0SamplerIW(1.0, 1, config=a.config)
    >>> a.insert((0.0,)); b.insert((50.0,))
    >>> merge = StreamingMerge()
    >>> merge.fold(a); merge.fold(b)
    >>> merge.result().num_candidate_groups
    2
    """

    def __init__(self) -> None:
        self._accumulator: RobustL0SamplerIW | None = None
        self._folded = 0

    @property
    def folded(self) -> int:
        """Number of summaries folded so far."""
        return self._folded

    def fold(self, sampler: RobustL0SamplerIW) -> None:
        """Absorb one shard sampler into the running union."""
        if self._accumulator is None:
            # merge() with no peers normalises the first shard into a
            # fresh union sampler (re-keyed representatives), exactly as
            # the variadic merge does for its first input.
            self._accumulator = sampler.merge()
        else:
            self._accumulator = self._accumulator.merge(sampler)
        self._folded += 1

    def result(self) -> RobustL0SamplerIW:
        """The union sampler over everything folded so far."""
        if self._accumulator is None:
            raise EmptySampleError("nothing folded into the merge yet")
        return self._accumulator


class DistributedRobustSampler:
    """Coordinator over ``num_shards`` robust shard samplers.

    Parameters
    ----------
    alpha, dim:
        Geometry of the noisy data model (legacy surface; equivalently
        pass ``spec``).
    spec:
        A :class:`~repro.api.specs.L0InfiniteSpec` describing every
        shard; the shared config (grid + hash) is derived from it once.
    num_shards:
        Number of shard samplers to create.
    seed, kappa0, expected_stream_length:
        Legacy-surface shorthands folded into the spec.

    Examples
    --------
    >>> import random
    >>> coordinator = DistributedRobustSampler(0.5, 1, num_shards=2, seed=3)
    >>> coordinator.shard(0).insert((0.0,))
    >>> coordinator.shard(1).insert((0.1,))   # same group, other shard
    >>> coordinator.shard(1).insert((9.0,))
    >>> merged = coordinator.merged_sampler()
    >>> merged.num_candidate_groups
    2
    """

    def __init__(
        self,
        alpha: float | None = None,
        dim: int | None = None,
        *,
        spec: "L0InfiniteSpec | None" = None,
        num_shards: int,
        seed: int | None = None,
        kappa0: float = DEFAULT_KAPPA0,
        expected_stream_length: int | None = None,
    ) -> None:
        if num_shards < 1:
            raise ParameterError(f"num_shards must be >= 1, got {num_shards}")
        self._spec = _shard_spec(
            alpha, dim, spec, seed, kappa0, expected_stream_length
        )
        self._config = SamplerConfig.create(
            self._spec.alpha,
            self._spec.dim,
            seed=self._spec.seed,
            grid_side=self._spec.grid_side,
            kwise=self._spec.kwise,
        )
        self._shards = [
            ShardSampler(i, self._config, spec=self._spec)
            for i in range(num_shards)
        ]

    @property
    def num_shards(self) -> int:
        """Number of shards."""
        return len(self._shards)

    @property
    def config(self) -> SamplerConfig:
        """The shared grid/hash configuration."""
        return self._config

    @property
    def spec(self) -> "L0InfiniteSpec":
        """The spec every shard was constructed from."""
        return self._spec

    def shard(self, index: int) -> ShardSampler:
        """Access one shard's sampler."""
        return self._shards[index]

    def route(self, point: StreamPoint | Sequence[float], shard: int) -> None:
        """Deliver a point to a shard (convenience for simulations)."""
        self._shards[shard].insert(point)

    def route_many(
        self,
        points: Iterable[StreamPoint | Sequence[float]],
        shard: int,
        *,
        geometry=None,
    ) -> int:
        """Deliver a batch to a shard through its batched ingestion path.

        ``geometry`` forwards a chunk's precomputed
        :class:`~repro.core.chunk_geometry.ChunkGeometry` (valid for
        every shard - they share one config) so the shard skips
        rebuilding it.
        """
        return self._shards[shard].process_many(points, geometry=geometry)

    def restore_shard(self, index: int, state: dict[str, Any]) -> None:
        """Replace one shard with a restore of ``state`` (protocol state).

        Used by the parallel shard executors: worker processes ingest
        into shard *replicas* and ship their protocol states back; this
        folds one returned state into the coordinator, re-sharing the
        coordinator's config object.  The round-trip is
        ``state_fingerprint``-exact, so a pipeline that ran on process
        workers is indistinguishable from one that ran serially.
        """
        self._shards[index] = ShardSampler.from_state(
            state, config=self._config
        )

    def scatter(
        self,
        points: Iterable[StreamPoint | Sequence[float]],
        *,
        rng: random.Random | None = None,
    ) -> None:
        """Distribute points across shards uniformly at random."""
        rng = rng if rng is not None else random.Random()
        for point in points:
            self._shards[rng.randrange(len(self._shards))].insert(point)

    # ------------------------------------------------------------------ #
    # merge protocol
    # ------------------------------------------------------------------ #

    def merged_sampler(self) -> RobustL0SamplerIW:
        """Merge all shard states into one sampler over the union stream.

        Delegates to the Summary protocol's
        :meth:`~repro.core.infinite_window.RobustL0SamplerIW.merge`.
        Communication cost is the shards' sketch sizes (O(k log m) words
        total), not the stream size.
        """
        return self._shards[0].merge(*self._shards[1:])

    def streaming_merge(
        self,
        arrivals: Iterable[tuple[int, dict[str, Any] | None]],
    ) -> RobustL0SamplerIW:
        """Fold finished shard states into a running union sampler.

        ``arrivals`` yields ``(shard_id, state)`` pairs in *completion*
        order (the surface of :meth:`repro.engine.executors.ShardExecutor.drain`);
        a ``state`` of ``None`` means the coordinator's own shard object
        is already current.  The process executor delivers states
        *batched per worker* and encoded (one
        :class:`~repro.engine.executors.DeferredStates` payload per
        worker message) - callers consuming ``drain()`` directly pass
        each pair through
        :func:`repro.engine.executors.resolve_state` first, which is
        what the pipeline does at every read point.  Each arriving
        state is restored into its
        shard slot immediately, and the merge accumulator folds every
        settled shard *in shard order* as soon as it is available - so
        merge work overlaps with still-running workers instead of
        barriering on the slowest one, while the folded result stays
        deterministic (a left fold over shards 0..k-1) regardless of
        which worker finished first.

        The deterministic fold order is what keeps parallel pipeline
        queries reproducible: the same spec and stream produce the same
        merged sampler whichever executor ran the shards.
        """
        merge = StreamingMerge()
        settled: set[int] = set()
        next_fold = 0
        for shard_id, state in arrivals:
            if state is not None:
                self.restore_shard(shard_id, state)
            settled.add(shard_id)
            while next_fold in settled:
                merge.fold(self._shards[next_fold])
                next_fold += 1
        # Shards the executor did not report (every executor reports all
        # of its shards; this also serves direct coordinator callers who
        # pass a partial iterable).
        while next_fold < len(self._shards):
            merge.fold(self._shards[next_fold])
            next_fold += 1
        return merge.result()

    def sample(self, rng: random.Random | None = None) -> StreamPoint:
        """One-shot distributed query: merge then sample."""
        merged = self.merged_sampler()
        if merged.accept_size == 0:
            raise EmptySampleError("no shard holds an accepted group")
        return merged.sample(rng)

    def estimate_f0(self) -> float:
        """Distributed robust F0: merge then apply the Section 5 estimate."""
        return self.merged_sampler().estimate_f0()

    def communication_words(self) -> int:
        """Total words shipped to the coordinator in one merge."""
        return sum(s.space_words() for s in self._shards)

    # ------------------------------------------------------------------ #
    # checkpoint state
    # ------------------------------------------------------------------ #

    def to_state(self) -> dict[str, Any]:
        """Serialise spec, shared config and every shard (mid-stream OK)."""
        from repro.core import serialize

        return {
            "spec": self._spec.to_state(),
            "config": serialize.config_to_state(self._config),
            "shards": [shard.to_state() for shard in self._shards],
        }

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> "DistributedRobustSampler":
        """Restore a coordinator; all shards re-share one config object."""
        from repro.api.registry import spec_from_state
        from repro.core import serialize

        coordinator = cls.__new__(cls)
        coordinator._spec = spec_from_state(state["spec"])
        coordinator._config = serialize.config_from_state(state["config"])
        coordinator._shards = [
            ShardSampler.from_state(
                shard_state, config=coordinator._config
            )
            for shard_state in state["shards"]
        ]
        return coordinator
