"""Coordinator/shard protocol for distributed robust sampling.

Deployment model: ``k`` independent stream shards (e.g. per-datacenter
feeds of the same logical event stream) each run a
:class:`ShardSampler`; a coordinator periodically pulls their compact
states and merges them into a single sampler over the union stream.

Consistency argument: all shards share one ``SamplerConfig`` (same grid
offset, same sampling hash), so a group's accept/reject status at rate
``1/R`` is the same everywhere - it depends only on the representative's
cell.  Merging therefore only has to (1) raise every shard to the maximum
rate (resampling, exactly as Algorithm 1's Line 12 does), and (2)
deduplicate groups observed by several shards, keeping the earliest
representative (the union stream's first point of the group, up to
points within alpha of each other straddling shards - the usual general-
dataset relaxation of Section 3).
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from repro.core.base import DEFAULT_KAPPA0, CandidateStore, SamplerConfig
from repro.core.infinite_window import RobustL0SamplerIW
from repro.errors import EmptySampleError, ParameterError
from repro.streams.point import StreamPoint


class ShardSampler(RobustL0SamplerIW):
    """A shard's local robust sampler.

    Identical to :class:`~repro.core.infinite_window.RobustL0SamplerIW`
    except that it must be built from a shared config (enforced) and
    carries a shard id for bookkeeping.
    """

    def __init__(
        self,
        shard_id: int,
        config: SamplerConfig,
        *,
        kappa0: float = DEFAULT_KAPPA0,
        expected_stream_length: int | None = None,
    ) -> None:
        super().__init__(
            config.alpha,
            config.dim,
            kappa0=kappa0,
            expected_stream_length=expected_stream_length,
            config=config,
        )
        self._shard_id = shard_id

    @property
    def shard_id(self) -> int:
        """This shard's identifier."""
        return self._shard_id


class DistributedRobustSampler:
    """Coordinator over ``num_shards`` robust shard samplers.

    Parameters
    ----------
    alpha, dim:
        Geometry of the noisy data model.
    num_shards:
        Number of shard samplers to create.
    seed:
        Seed of the *shared* configuration (grid + hash).
    kappa0, expected_stream_length:
        Forwarded to every shard.

    Examples
    --------
    >>> import random
    >>> coordinator = DistributedRobustSampler(0.5, 1, num_shards=2, seed=3)
    >>> coordinator.shard(0).insert((0.0,))
    >>> coordinator.shard(1).insert((0.1,))   # same group, other shard
    >>> coordinator.shard(1).insert((9.0,))
    >>> merged = coordinator.merged_sampler()
    >>> merged.num_candidate_groups
    2
    """

    def __init__(
        self,
        alpha: float,
        dim: int,
        *,
        num_shards: int,
        seed: int | None = None,
        kappa0: float = DEFAULT_KAPPA0,
        expected_stream_length: int | None = None,
    ) -> None:
        if num_shards < 1:
            raise ParameterError(f"num_shards must be >= 1, got {num_shards}")
        self._config = SamplerConfig.create(alpha, dim, seed=seed)
        self._kappa0 = kappa0
        self._expected = expected_stream_length
        self._shards = [
            ShardSampler(
                i,
                self._config,
                kappa0=kappa0,
                expected_stream_length=expected_stream_length,
            )
            for i in range(num_shards)
        ]

    @property
    def num_shards(self) -> int:
        """Number of shards."""
        return len(self._shards)

    @property
    def config(self) -> SamplerConfig:
        """The shared grid/hash configuration."""
        return self._config

    def shard(self, index: int) -> ShardSampler:
        """Access one shard's sampler."""
        return self._shards[index]

    def route(self, point: StreamPoint | Sequence[float], shard: int) -> None:
        """Deliver a point to a shard (convenience for simulations)."""
        self._shards[shard].insert(point)

    def route_many(
        self,
        points: Iterable[StreamPoint | Sequence[float]],
        shard: int,
    ) -> int:
        """Deliver a batch to a shard through its batched ingestion path."""
        return self._shards[shard].process_many(points)

    def scatter(
        self,
        points: Iterable[StreamPoint | Sequence[float]],
        *,
        rng: random.Random | None = None,
    ) -> None:
        """Distribute points across shards uniformly at random."""
        rng = rng if rng is not None else random.Random()
        for point in points:
            self._shards[rng.randrange(len(self._shards))].insert(point)

    # ------------------------------------------------------------------ #
    # merge protocol
    # ------------------------------------------------------------------ #

    def merged_sampler(self) -> RobustL0SamplerIW:
        """Merge all shard states into one sampler over the union stream.

        Communication cost is the shards' sketch sizes (O(k log m) words
        total), not the stream size.
        """
        target_rate = max(s.rate_denominator for s in self._shards)
        merged = RobustL0SamplerIW(
            self._config.alpha,
            self._config.dim,
            kappa0=self._kappa0,
            expected_stream_length=self._expected,
            config=self._config,
        )
        merged._rate_denominator = target_rate
        store: CandidateStore = merged._store

        total_seen = 0
        num_shards = len(self._shards)
        for shard in self._shards:
            total_seen += shard.points_seen
            # Bring the shard's view to the merged rate; decisions nest, so
            # this only drops/demotes records, never invents them.
            shard_records = sorted(
                shard._store.records(),
                key=lambda r: r.representative.index,
            )
            mask = target_rate - 1
            for record in shard_records:
                if record.cell_hash & mask == 0:
                    accepted = True
                elif any(v & mask == 0 for v in record.adj_hashes):
                    accepted = False
                else:
                    continue
                existing = store.find_nearby(
                    record.representative.vector, record.cell_hash
                )
                if existing is not None:
                    # Same group seen by several shards: keep the earlier
                    # representative, pool the counts.
                    existing.count += record.count
                    continue
                # Re-key representatives injectively: shard-local arrival
                # indices overlap across shards, and the merged store keys
                # records by that index.
                rep = record.representative
                global_rep = StreamPoint(
                    rep.vector,
                    rep.index * num_shards + shard.shard_id,
                    rep.time,
                )
                clone = type(record)(
                    representative=global_rep,
                    cell=record.cell,
                    cell_hash=record.cell_hash,
                    adj_hashes=record.adj_hashes,
                    accepted=accepted,
                    last=record.last,
                    count=record.count,
                )
                store.add(clone)
        merged._count = total_seen
        merged._policy.observe_many(total_seen)
        while store.accepted_count > merged._policy.threshold():
            merged._rate_denominator *= 2
            store.resample(merged._rate_denominator)
        return merged

    def sample(self, rng: random.Random | None = None) -> StreamPoint:
        """One-shot distributed query: merge then sample."""
        merged = self.merged_sampler()
        if merged.accept_size == 0:
            raise EmptySampleError("no shard holds an accepted group")
        return merged.sample(rng)

    def estimate_f0(self) -> float:
        """Distributed robust F0: merge then apply the Section 5 estimate."""
        return self.merged_sampler().estimate_f0()

    def communication_words(self) -> int:
        """Total words shipped to the coordinator in one merge."""
        return sum(s.space_words() for s in self._shards)
