"""Backend-backed work queue of the remote executor.

The queue is nothing but :class:`~repro.backends.base.StateBackend`
keys under a namespace - any storage both sides can reach (a shared
directory, a Redis) is a transport.  Key schema, all under
``<queue_key>/<epoch>``:

* ``meta`` - pickled ``{"config": ..., "num_shards": k, "dim": d}``;
  published **last** by the submitter, so a worker that sees it knows
  every shard's initial state entry already exists.
* ``chunk/<shard>/<seq>`` - one encoded chunk.  Per-shard sequence
  numbers make the queue a FIFO per shard (the executor-equivalence
  invariant) without any queue server: a worker simply asks for the
  next sequence it has not folded yet.
* ``lease/<shard>`` - the shard's ownership lease
  (:mod:`repro.backends.lease`).
* ``state/<shard>`` - pickled ``(consumed_seq, shard_state)``.  This is
  the **CAS fence**: a worker may only publish through
  ``compare_and_swap`` at the version it last wrote (or observed at
  adoption), so after a lease is stolen the previous holder's next
  publish conflicts and *nothing of it lands* - re-adoption is always
  all-or-nothing, never a torn merge.
* ``stop`` - presence tells idle workers to exit.
* ``error`` - a failed worker's traceback; the submitter's drain turns
  it into :class:`~repro.errors.ExecutorError`.

Each executor instance bumps ``<queue_key>/epoch`` and works under the
returned version, so a worker resurrected from a *previous* executor's
queue writes only to dead keys.

Chunks are encoded through the PR-6 array coercion path
(``repro.engine.executors._chunk_as_array``): an eligible chunk ships
as raw little-endian float64 rows (decoded to one contiguous array, so
the worker rebuilds its geometry in one pass exactly like the
shared-memory transport), everything else pickles - reproducing the
scalar error semantics.  A numpy-less decoder falls back to
``struct.iter_unpack``, which yields the identical float64 tuples.

Enforced by ``tests/test_remote_executor.py``.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any, Iterable

from repro.backends.base import StateBackend

__all__ = ["RemoteQueue", "decode_chunk", "encode_chunk"]

#: Chunk payload header: magic + kind (``A`` array / ``P`` pickle).
_CHUNK_MAGIC = b"RQC1"
_ARRAY_HEADER = struct.Struct("<4scII")  # magic, kind, rows, dim


def encode_chunk(chunk: Any, dim: int) -> bytes:
    """One chunk as self-describing bytes (array form when eligible)."""
    from repro.engine.executors import _chunk_as_array

    array = _chunk_as_array(chunk, dim)
    if array is not None:
        rows = array.shape[0]
        return (
            _ARRAY_HEADER.pack(_CHUNK_MAGIC, b"A", rows, dim)
            + array.astype("<f8", copy=False).tobytes()
        )
    return (
        _ARRAY_HEADER.pack(_CHUNK_MAGIC, b"P", 0, 0)
        + pickle.dumps(list(chunk), protocol=pickle.HIGHEST_PROTOCOL)
    )


def decode_chunk(data: bytes) -> tuple[str, Any]:
    """``("array", ndarray)`` or ``("pickle", list)`` back from bytes.

    Without numpy the array form decodes to the same float64 tuples via
    ``struct.iter_unpack`` (reported as ``"pickle"`` so callers take
    the plain ``process_many`` path).
    """
    magic, kind, rows, dim = _ARRAY_HEADER.unpack_from(data)
    if magic != _CHUNK_MAGIC:
        raise ValueError("not a remote-queue chunk payload")
    payload = data[_ARRAY_HEADER.size :]
    if kind == b"P":
        return "pickle", pickle.loads(payload)
    from repro.geometry import kernels

    if kernels.HAVE_NUMPY:
        import numpy as np

        array = np.frombuffer(payload, dtype="<f8").reshape(rows, dim)
        return "array", np.ascontiguousarray(array, dtype=np.float64)
    unpacked = struct.iter_unpack(f"<{dim}d", payload)
    return "pickle", [tuple(row) for row in unpacked]


class RemoteQueue:
    """One executor epoch's view of the queue keys (see module docs)."""

    def __init__(
        self, backend: StateBackend, queue_key: str, epoch: int
    ) -> None:
        self.backend = backend
        self.queue_key = queue_key
        self.epoch = epoch
        self._prefix = f"{queue_key}/{epoch}"

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #

    @classmethod
    def create(
        cls,
        backend: StateBackend,
        queue_key: str,
        *,
        config_state: dict[str, Any],
        dim: int,
        shard_states: list[dict[str, Any]],
    ) -> "RemoteQueue":
        """Submitter side: open a fresh epoch and seed it.

        Every shard's initial state entry is written *before* ``meta``,
        so meta's presence implies a worker can adopt any shard.
        """
        epoch = backend.put(f"{queue_key}/epoch", b"")
        queue = cls(backend, queue_key, epoch)
        queue.backend.put_many(
            (queue.state_key(shard), pickle.dumps((0, state)))
            for shard, state in enumerate(shard_states)
        )
        meta = {
            "config": config_state,
            "num_shards": len(shard_states),
            "dim": dim,
        }
        backend.put(queue.meta_key, pickle.dumps(meta))
        return queue

    @classmethod
    def open(
        cls, backend: StateBackend, queue_key: str
    ) -> "RemoteQueue | None":
        """Worker side: attach to the queue's current epoch (if any)."""
        found = backend.get_versioned(f"{queue_key}/epoch")
        if found is None:
            return None
        return cls(backend, queue_key, found[1])

    # ------------------------------------------------------------------ #
    # keys
    # ------------------------------------------------------------------ #

    @property
    def meta_key(self) -> str:
        return f"{self._prefix}/meta"

    def chunk_key(self, shard: int, seq: int) -> str:
        return f"{self._prefix}/chunk/{shard}/{seq}"

    def lease_key(self, shard: int) -> str:
        return f"{self._prefix}/lease/{shard}"

    def state_key(self, shard: int) -> str:
        return f"{self._prefix}/state/{shard}"

    @property
    def stop_key(self) -> str:
        return f"{self._prefix}/stop"

    @property
    def error_key(self) -> str:
        return f"{self._prefix}/error"

    # ------------------------------------------------------------------ #
    # operations
    # ------------------------------------------------------------------ #

    def meta(self) -> dict[str, Any] | None:
        data = self.backend.get(self.meta_key)
        return None if data is None else pickle.loads(data)

    def put_chunks(
        self, items: Iterable[tuple[int, int, bytes]]
    ) -> None:
        """Batch-enqueue ``(shard, seq, payload)`` chunks (group commit)."""
        self.backend.put_many(
            (self.chunk_key(shard, seq), payload)
            for shard, seq, payload in items
        )

    def get_chunk(self, shard: int, seq: int) -> bytes | None:
        return self.backend.get(self.chunk_key(shard, seq))

    def delete_chunk(self, shard: int, seq: int) -> None:
        self.backend.delete(self.chunk_key(shard, seq))

    def read_state(
        self, shard: int
    ) -> tuple[int, Any, int] | None:
        """``(consumed_seq, shard_state, version)``, or ``None``."""
        found = self.backend.get_versioned(self.state_key(shard))
        if found is None:
            return None
        data, version = found
        seq, state = pickle.loads(data)
        return seq, state, version

    def publish_state(
        self, shard: int, expected_version: int, seq: int, state: Any
    ) -> int:
        """CAS-fenced commit of a shard's folded progress.

        Raises :class:`~repro.errors.CASConflictError` (nothing
        applied) when someone re-adopted the shard since
        ``expected_version`` - the torn-merge guard.
        """
        return self.backend.compare_and_swap(
            self.state_key(shard),
            expected_version,
            pickle.dumps((seq, state), protocol=pickle.HIGHEST_PROTOCOL),
        )

    def request_stop(self) -> None:
        self.backend.put(self.stop_key, b"")

    def stop_requested(self) -> bool:
        return self.stop_key in self.backend

    def report_error(self, worker_id: str, text: str) -> None:
        self.backend.put(
            self.error_key, f"[worker {worker_id}]\n{text}".encode("utf-8")
        )

    def first_error(self) -> str | None:
        data = self.backend.get(self.error_key)
        return None if data is None else data.decode("utf-8", "replace")

    def purge(self) -> None:
        """Drop every key of this epoch (the owning executor's close)."""
        prefix = self._prefix + "/"
        for key in list(self.backend.keys()):
            if key.startswith(prefix):
                self.backend.delete(key)
