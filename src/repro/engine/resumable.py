"""Crash-safe resumable pipeline runs: checkpoint to a backend under CAS.

A long sharded ingestion job dies - deploy, OOM, power cut - and the
naive recovery is "start over".  :func:`run_resumable` instead drives a
:class:`~repro.engine.pipeline.BatchPipeline` against a *restartable*
stream while periodically committing the whole pipeline (shard states,
round-robin cursor, points-seen) into a
:class:`~repro.backends.StateBackend` at **chunk boundaries**.  A rerun
of the same call resumes from the last committed checkpoint and skips
the points it already consumed, and because dealing is deterministic
and checkpoints are chunk-aligned, the resumed run is
``state_fingerprint``-identical to one that was never interrupted (the
PR-2 resume contract, now surviving ``kill -9``).

Concurrent safety comes from the backend's atomic compare-and-swap:
every commit after the first passes the version of the checkpoint this
run last wrote (the first passes 0 - create-only - electing exactly one
owner of a fresh key).  If another worker checkpointed the same key in
between, the commit raises :class:`~repro.errors.CASConflictError`
with nothing applied - two racing runs can never interleave shard
states into a torn checkpoint, one of them simply loses whole and can
rebase on the winner's.

The stream must be **restartable and stable**: a rerun is handed the
same point sequence from the start and the prefix already consumed is
skipped by count.  Feed it from a file, a replayable log, or any
deterministic generator - not from a socket that drops data on read.

>>> from repro.api import PipelineSpec
>>> from repro.backends import MemoryBackend
>>> backend = MemoryBackend()
>>> spec = PipelineSpec(alpha=1.0, dim=1, seed=7, num_shards=2,
...                     batch_size=8)
>>> points = [(float(i % 5) * 25.0,) for i in range(64)]
>>> pipeline = run_resumable(spec, points, backend, "job",
...                          checkpoint_every=2)
>>> pipeline.points_seen
64
>>> resumed = run_resumable(spec, points, backend, "job")  # no-op rerun
>>> resumed.points_seen
64
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Any, Iterable

from repro.engine.batching import chunked
from repro.engine.pipeline import BatchPipeline
from repro.errors import CheckpointError, ParameterError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.specs import PipelineSpec
    from repro.backends import StateBackend

__all__ = ["run_resumable"]

#: Chunks between checkpoint commits when the caller does not say.
DEFAULT_CHECKPOINT_EVERY = 16


def run_resumable(
    spec: "PipelineSpec",
    points: Iterable[Any],
    backend: "StateBackend",
    key: str,
    *,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
) -> BatchPipeline:
    """Ingest ``points`` through a pipeline, checkpointing into ``backend``.

    Resumes from the checkpoint under ``key`` when one exists (its spec
    must match ``spec`` - a mismatch raises
    :class:`~repro.errors.CheckpointError` rather than silently mixing
    two jobs); otherwise starts fresh and claims the key with a
    create-only CAS.  Commits every ``checkpoint_every`` chunks and
    once more after the stream ends, always between chunks, each commit
    CAS-fenced on the previous one.  Returns the finished pipeline
    (parallel executors are closed; the final state is committed).

    On a crash, rerun with the same arguments: already-consumed points
    are skipped by count, chunk boundaries land in the same places, and
    the final state is fingerprint-identical to an uninterrupted run.
    """
    if checkpoint_every < 1:
        raise ParameterError(
            f"checkpoint_every must be >= 1, got {checkpoint_every}"
        )
    pipeline, version = BatchPipeline.resume_from(backend, key)
    if pipeline is None:
        pipeline = BatchPipeline(spec=spec)
        # Claim the key before ingesting: of N fresh workers racing on
        # one key, exactly one create-only CAS wins and does the work.
        version = pipeline.checkpoint_to(backend, key, cas_version=0)
    elif pipeline.spec != spec:
        raise CheckpointError(
            f"backend key {key!r} holds a checkpoint of a different "
            "pipeline spec; use a distinct key per job"
        )
    stream = iter(points)
    if pipeline.points_seen:
        # Skip the prefix the checkpointed run already consumed.  The
        # checkpoint was chunk-aligned, so re-chunking what remains
        # reproduces the original chunk boundaries exactly.
        skipped = sum(
            1 for _ in itertools.islice(stream, pipeline.points_seen)
        )
        if skipped < pipeline.points_seen:
            raise CheckpointError(
                f"stream ended after {skipped} points but the checkpoint "
                f"under {key!r} already consumed {pipeline.points_seen}; "
                "resumable runs need the same restartable stream"
            )
    try:
        since_commit = 0
        for chunk in chunked(stream, pipeline.batch_size):
            pipeline.submit(chunk)
            since_commit += 1
            if since_commit >= checkpoint_every:
                version = pipeline.checkpoint_to(
                    backend, key, cas_version=version
                )
                since_commit = 0
        if since_commit or pipeline.points_seen == 0:
            version = pipeline.checkpoint_to(
                backend, key, cas_version=version
            )
    finally:
        pipeline.close()
    return pipeline
