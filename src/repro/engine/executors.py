"""Pluggable shard executors: serial, thread, process and remote.

A :class:`~repro.engine.pipeline.BatchPipeline` deals chunks round-robin
across the shards of a
:class:`~repro.distributed.coordinator.DistributedRobustSampler`.  Until
this layer existed every chunk ran serially in the calling process; a
:class:`ShardExecutor` makes the *where* of that work pluggable while
keeping the *what* bit-identical:

* :class:`SerialShardExecutor` - today's behaviour (the default): every
  chunk is ingested synchronously into the coordinator's own shard
  objects.
* :class:`ThreadShardExecutor` - a pool of worker threads operating on
  the coordinator's live shards.  Under CPython's GIL this buys no
  CPU parallelism; it exists so the executor surface is complete and so
  callers whose streams block on I/O can overlap ingestion with reading.
* :class:`ProcessShardExecutor` - worker processes holding
  spec-constructed *shard replicas* (rebuilt from the shards' protocol
  states plus the shared :class:`~repro.core.base.SamplerConfig`).
  Chunks travel over a **zero-copy shared-memory transport**: ``submit``
  coerces the chunk into one contiguous float64 array, the scheduler
  memcpys it into a pooled :mod:`multiprocessing.shared_memory` slot and
  enqueues only a small descriptor ``(slot, segment name, rows, dim)``;
  the owning worker reconstructs the array pickle-free, publishes the
  completion and freed slot through a lock-free shared-memory control
  block (:class:`_ControlBlock` - no message, no submitter wake-up,
  no per-chunk context switch), and rebuilds the chunk's
  :class:`~repro.core.chunk_geometry.ChunkGeometry` straight from the
  array (:func:`repro.core.chunk_geometry.geometry_from_array`), so the
  chunk is float-coerced exactly once end to end.  Chunks the array
  transport cannot carry (StreamPoints, exotic element types, failed
  coercion) fall back to the pickle transport, which reproduces the
  scalar error semantics exactly.  On :meth:`~ShardExecutor.drain` each
  worker returns its shards' protocol states **batched in one message**,
  which the caller folds back into the coordinator as they arrive
  (streaming merge - see
  :meth:`repro.distributed.coordinator.DistributedRobustSampler.streaming_merge`)
  instead of barriering on the slowest worker.
* :class:`RemoteShardExecutor` - workers that may live on **other
  machines**, coupled to the submitter only through a shared
  :class:`~repro.backends.base.StateBackend` (a mounted directory, a
  Redis).  Chunks are enqueued as sequenced backend entries (group
  committed via ``put_many``), workers lease shards through backend
  CAS with heartbeat renewal (:mod:`repro.backends.lease`) and commit
  each folded chunk through a per-shard **CAS fence**, so a killed
  worker's shards are re-adopted from their last committed state and a
  resurrected stale worker loses wholly - see
  :mod:`repro.engine.queue` / :mod:`repro.engine.remote_worker` and
  ``docs/ARCHITECTURE.md`` §Remote workers.  Chaos-tested by
  ``tests/test_remote_executor.py``.

Scheduling and work stealing
----------------------------

The process executor keeps its backlog at the submitter: each worker has
at most :data:`_DISPATCH_DEPTH` chunks in flight, the rest queue in
per-shard FIFOs on the submit side.  Shards are *adopted* lazily - a
worker receives a shard's protocol state with its first chunk - and may
*migrate*: when a worker sits idle while another's shard has a backlog,
the scheduler releases the shard from its owner (the release message
follows the owner's in-flight chunks FIFO, so it observes all of them),
receives the flushed replica state, and re-adopts the shard to the idle
worker together with its queued chunks.  Per-shard sequence numbers are
carried on every chunk and asserted worker-side, so per-shard FIFO
order - the executor-equivalence invariant - is machine-checked even
across migrations, and executor choice stays state-unobservable.

The executor-equivalence contract
---------------------------------

Every executor must leave the pipeline ``state_fingerprint``-identical
to the serial one for the same dealt chunk sequence:

* chunks for the SAME shard are processed in submission order (a shard's
  state is a function of its own chunk sequence only);
* chunks for different shards may run in any interleaving (shards share
  no mutable state except the pure hash memo caches of their config);
* a drained executor's shard states round-trip through the protocol's
  ``to_state``/``from_state``, which is fingerprint-exact.

``tests/test_executors.py`` enforces the contract differentially
(serial vs thread vs process vs remote, including empty batches,
single-shard pipelines, mid-stream checkpoint/resume and forced shard
migrations),
``tests/test_shm_transport.py`` covers the shared-memory lifecycle
(no leaked segments after close, worker crash or failure; the matrix
under a forced spawn context), and
``tests/test_property_equivalence.py`` hammers the contract with
Hypothesis-generated streams and chunk layouts.

Worker failures (a poisoned point, a dead process) surface as
:class:`~repro.errors.ExecutorError` at the next drain, carrying the
worker-side traceback - or the worker's exit code when it died without
reporting.  Drains are time-bounded: a worker that stops making
progress for :data:`_DRAIN_STALL_SECONDS` fails the drain instead of
hanging it.
"""

from __future__ import annotations

import multiprocessing
import pickle
import queue as queue_module
import struct
import threading
import time
import traceback
import weakref
from collections import deque
from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Any, ClassVar, Iterator, Sequence

from repro.errors import ExecutorError, ParameterError
from repro.geometry import kernels

if kernels.HAVE_NUMPY:
    import numpy as np
else:  # pragma: no cover - exercised only without numpy
    np = None  # type: ignore[assignment]

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.distributed.coordinator import DistributedRobustSampler

#: Registry of executor names accepted by
#: :class:`~repro.api.specs.PipelineSpec` and the CLI's ``--executor``.
EXECUTOR_NAMES = ("serial", "thread", "process", "remote")

#: Chunk transports of the process executor: ``"auto"`` uses the
#: shared-memory array transport whenever numpy is available, ``"shm"``
#: requires it, ``"pickle"`` forces the legacy queue transport (the
#: benchmark's overhead baseline).
TRANSPORT_NAMES = ("auto", "shm", "pickle")

#: How long (seconds) a drain waits between liveness checks on worker
#: processes before concluding one died without reporting.
_DRAIN_POLL_SECONDS = 1.0

#: Total seconds a drain tolerates with zero worker progress (no state,
#: ack or completion message) before failing.  Bounds the previously
#: unbounded poll loop: a worker that crashes between posting an error
#: and queue teardown - or simply hangs - fails the drain instead of
#: wedging it.
_DRAIN_STALL_SECONDS = 30.0

#: Maximum chunks in flight (dispatched, not yet completed) per worker
#: process.  The rest of the backlog stays in the submitter's per-shard
#: FIFOs, which is what makes shards migratable: only up to this many
#: chunks must finish at the old owner before a release takes effect.
_DISPATCH_DEPTH = 4

#: Dispatch depth used when there is exactly ONE worker.  Stealing is
#: impossible there, so a deep pipeline costs nothing in migratability
#: and lets the submitter pre-dispatch its whole backlog: the worker
#: then chews through it without a single submitter wake-up (the
#: control block makes completions message-free), which is what keeps
#: the 1-worker configuration at parity with serial even on one core.
_SINGLE_WORKER_DEPTH = 64

#: Minimum submitter-side backlog (chunks) a shard must have before it
#: is worth migrating to an idle worker.
_STEAL_MIN_PENDING = 2

#: Pool slack beyond the worst-case in-flight slot count.
_POOL_SLACK_SLOTS = 2

#: Smallest shared-memory segment allocated (bytes); segments grow
#: geometrically and are reused across chunks.
_MIN_SEGMENT_BYTES = 1 << 16


class ShardExecutor:
    """Strategy interface for running shard ingestion work.

    Lifecycle: a pipeline creates its executor lazily on first ingestion,
    :meth:`submit`\\ s one chunk at a time, :meth:`drain`\\ s at every
    synchronisation point (checkpoint, query, merge) and :meth:`close`\\ s
    it when the pipeline is closed.
    """

    #: Name under which :func:`make_executor` builds this class.
    name: ClassVar[str] = ""

    #: Whether the pipeline should precompute a
    #: :class:`~repro.core.chunk_geometry.ChunkGeometry` per chunk and
    #: pass it to :meth:`submit`.  True for executors whose shard work
    #: runs in this process (the geometry object can be handed over
    #: directly); the process executor's workers rebuild it from the
    #: transported array instead of paying to pickle it.
    wants_geometry: ClassVar[bool] = True

    def submit(
        self, shard_id: int, chunk: Sequence[Any], geometry: Any = None
    ) -> int | None:
        """Deliver one chunk to one shard.

        ``geometry`` is the chunk's precomputed
        :class:`~repro.core.chunk_geometry.ChunkGeometry` (or ``None``);
        executors forward it to the shard's ``process_many`` when the
        shard runs in-process.  Returns the number of points ingested
        when the work happened synchronously, or ``None`` when it was
        queued (the caller then counts ``len(chunk)`` and must
        :meth:`drain` before reading any shard state).
        """
        raise NotImplementedError

    def drain(self) -> Iterator[tuple[int, dict[str, Any] | None]]:
        """Finish all queued work; yield every shard as it settles.

        Yields ``(shard_id, state)`` pairs in *completion* order -
        ``state`` is the shard's protocol ``to_state()`` for executors
        whose replicas live outside the coordinator (process workers
        ship it still pickled, as a shared :class:`DeferredStates`
        handle - pass it through :func:`resolve_state` to decode), or
        ``None`` when the coordinator's own shard object is already
        current.  Raises :class:`~repro.errors.ExecutorError` if any
        worker failed; the pipeline then stays dirty.
        """
        raise NotImplementedError

    def stats(self) -> dict[str, Any]:
        """Transport/scheduling counters (empty for in-process executors).

        The process executor reports chunk counts per transport, bytes
        shipped through shared memory, shard migrations and the total
        submit-side transport time - the numbers
        ``benchmarks/bench_throughput.py`` records per run.
        """
        return {}

    def close(self) -> None:
        """Release workers.  Idempotent; further submits are an error."""


class SerialShardExecutor(ShardExecutor):
    """Default executor: synchronous ingestion into the live shards."""

    name = "serial"

    def __init__(self, coordinator: "DistributedRobustSampler") -> None:
        self._coordinator = coordinator

    def submit(
        self, shard_id: int, chunk: Sequence[Any], geometry: Any = None
    ) -> int:
        return self._coordinator.route_many(
            chunk, shard_id, geometry=geometry
        )

    def drain(self) -> Iterator[tuple[int, dict[str, Any] | None]]:
        for shard_id in range(self._coordinator.num_shards):
            yield (shard_id, None)


def _owned_shards(worker: int, num_shards: int, num_workers: int) -> list[int]:
    """Shard ids owned by ``worker`` (fixed ``shard % workers`` striping).

    The thread executor's static mapping: every chunk of a shard goes to
    the same worker queue, which is what serialises per-shard work and
    makes the executor state-equivalent to the serial one.  (The process
    executor assigns shards dynamically instead - see
    :class:`ProcessShardExecutor` - with the same per-shard FIFO
    invariant enforced by sequence numbers.)
    """
    return list(range(worker, num_shards, num_workers))


def _resolve_workers(num_workers: int | None, num_shards: int) -> int:
    if num_workers is None:
        num_workers = num_shards
    if num_workers < 1:
        raise ParameterError(
            f"num_workers must be >= 1, got {num_workers}"
        )
    # More workers than shards would sit idle: shards are the unit of
    # parallelism (per-shard order is part of the equivalence contract).
    return min(num_workers, num_shards)


def _owned_chunk(chunk: Sequence[Any]) -> Sequence[Any]:
    """A snapshot of a submitted chunk the executor may read later.

    Asynchronous executors consume chunks after ``submit`` returns, so a
    caller that reuses (clears/refills) its batch buffer must not
    corrupt queued work.  Tuples are immutable containers and are kept
    as-is - no copy; numpy arrays are copied wholesale (a ``list()`` of
    row views would still alias the caller's buffer); everything else
    gets the shallow list copy.  The snapshot is shallow by contract,
    matching what the serial executor observes at submit time.
    """
    if isinstance(chunk, tuple):
        return chunk
    if np is not None and isinstance(chunk, np.ndarray):
        return np.array(chunk, copy=True)
    return list(chunk)


class ThreadShardExecutor(ShardExecutor):
    """Worker threads ingesting into the coordinator's live shards.

    Each worker owns a fixed stripe of shards and consumes its queue
    FIFO, so per-shard chunk order is preserved.  The shards share only
    their config's pure hash-memo caches, which are safe to touch
    concurrently under the GIL (every entry is a deterministic function
    of its key, so racing writers write the same value).
    """

    name = "thread"

    def __init__(
        self,
        coordinator: "DistributedRobustSampler",
        *,
        num_workers: int | None = None,
    ) -> None:
        self._coordinator = coordinator
        self._num_workers = _resolve_workers(
            num_workers, coordinator.num_shards
        )
        self._queues: list[queue_module.SimpleQueue] = [
            queue_module.SimpleQueue() for _ in range(self._num_workers)
        ]
        self._failures: list[str | None] = [None] * self._num_workers
        self._closed = False
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                args=(index,),
                name=f"repro-shard-worker-{index}",
                daemon=True,
            )
            for index in range(self._num_workers)
        ]
        for thread in self._threads:
            thread.start()

    def _worker_loop(self, worker: int) -> None:
        tasks = self._queues[worker]
        while True:
            message = tasks.get()
            kind = message[0]
            if kind == "chunk":
                if self._failures[worker] is not None:
                    continue  # poisoned: swallow work until drain reports
                try:
                    self._coordinator.route_many(
                        message[2], message[1], geometry=message[3]
                    )
                except BaseException:
                    self._failures[worker] = traceback.format_exc()
            elif kind == "drain":
                message[1].put(worker)
            else:  # "stop"
                return

    def submit(
        self, shard_id: int, chunk: Sequence[Any], geometry: Any = None
    ) -> None:
        if self._closed:
            raise ExecutorError("executor is closed")
        # Snapshot (copy only when the caller's buffer is mutable): the
        # worker reads the chunk after submit returns, and equivalence
        # with the synchronous serial executor requires submit-time
        # contents.  The geometry was built from the submit-time values,
        # so it stays consistent with the snapshot.
        self._queues[shard_id % self._num_workers].put(
            ("chunk", shard_id, _owned_chunk(chunk), geometry)
        )
        return None

    def drain(self) -> Iterator[tuple[int, dict[str, Any] | None]]:
        if self._closed:
            raise ExecutorError("executor is closed")
        acks: queue_module.SimpleQueue = queue_module.SimpleQueue()
        for tasks in self._queues:
            tasks.put(("drain", acks))
        for _ in range(self._num_workers):
            worker = acks.get()
            failure = self._failures[worker]
            if failure is not None:
                raise ExecutorError(
                    f"shard worker {worker} failed:\n{failure}"
                )
            for shard_id in _owned_shards(
                worker, self._coordinator.num_shards, self._num_workers
            ):
                yield (shard_id, None)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for tasks in self._queues:
            tasks.put(("stop",))
        for thread in self._threads:
            thread.join(timeout=5.0)


# --------------------------------------------------------------------- #
# the zero-copy shared-memory transport
# --------------------------------------------------------------------- #


def _try_unlink(segment: shared_memory.SharedMemory) -> None:
    try:
        segment.unlink()
    except FileNotFoundError:  # pragma: no cover - already gone
        pass


def _unlink_segments(names: dict[int, str]) -> None:
    """Interpreter-exit backstop: unlink every pool segment by name."""
    for name in list(names.values()):
        try:
            segment = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            continue
        segment.close()
        _try_unlink(segment)


class _ShmChunkPool:
    """Pooled ring of shared-memory segments for in-flight chunk arrays.

    The submitter acquires a free slot per dispatched chunk, memcpys the
    chunk's float64 array into it and ships only a descriptor; the
    consuming worker returns the slot through the :class:`_ControlBlock`
    free ring with its completion, and the pool holds a slot for
    every chunk that can be in flight plus slack, so recycling can
    never starve a submit.
    Segments are created lazily, grown geometrically and reused (LIFO,
    so warm segments stay warm).  Every created segment is unlinked on
    :meth:`close` and, as a backstop, by a ``weakref.finalize`` at
    interpreter exit - no segment outlives the creating process
    (``tests/test_shm_transport.py`` proves it for close, worker crash
    and failure paths).
    """

    def __init__(self, num_slots: int) -> None:
        self._segments: list[shared_memory.SharedMemory | None] = (
            [None] * num_slots
        )
        self._free = list(range(num_slots))
        self._names: dict[int, str] = {}
        self._finalizer = weakref.finalize(
            self, _unlink_segments, self._names
        )

    def segment_names(self) -> list[str]:
        """Names of every live segment (the lifecycle tests' probe)."""
        return list(self._names.values())

    def acquire(
        self, nbytes: int
    ) -> tuple[int, shared_memory.SharedMemory] | None:
        """A free slot with capacity >= ``nbytes``, or ``None``."""
        if not self._free:
            return None
        slot = self._free.pop()
        segment = self._segments[slot]
        if segment is None or segment.size < nbytes:
            if segment is not None:
                segment.close()
                _try_unlink(segment)
            size = _MIN_SEGMENT_BYTES
            while size < nbytes:
                size *= 2
            segment = shared_memory.SharedMemory(create=True, size=size)
            self._segments[slot] = segment
            self._names[slot] = segment.name
        return slot, segment

    def release(self, slot: int) -> None:
        self._free.append(slot)

    def close(self) -> None:
        self._finalizer.detach()
        for segment in self._segments:
            if segment is not None:
                segment.close()
                _try_unlink(segment)
        self._segments = []
        self._free = []
        self._names.clear()


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker tracking.

    CPython's shared_memory registers with the resource tracker on
    attach, not only on create.  Workers share the submitter's tracker
    (fork AND spawn children inherit its fd), so an attach-side
    registration is at best a duplicate of the submitter's and at worst
    a *revival*: it races the submitter's unlink-time unregister and
    can recreate the entry after the segment is gone, making the
    tracker warn at exit.  The submitter's create-time registration is
    the single leak backstop; suppress registration for the attach.
    (Worker loops are single-threaded, so the swap cannot be observed
    concurrently; Python 3.13+ would spell this ``track=False``.)
    """
    from multiprocessing import resource_tracker

    original_register = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register


class _ControlBlock:
    """Lock-free completion channel in one small shared-memory segment.

    Completion acks used to return as result-queue messages; on a
    loaded (or single-core) machine every such write wakes the blocked
    submitter - two context switches plus a cache refill *per chunk*.
    Instead each worker publishes into its own region of this segment:

    * a monotonically increasing **completion counter** (one per
      processed chunk, slot-carrying or not), and
    * a **ring of freed chunk-pool slots**, each written as
      ``slot + 1`` (0 means empty; the submitter zeroes consumed
      cells).

    Every cell is an 8-byte-aligned single-writer value, so plain
    reads and writes are atomic and no lock exists anywhere; the
    submitter polls opportunistically (during submits and drain waits)
    and is never woken at all.  A worker cannot lap the submitter's
    ring cursor: unconsumed frees are bounded by the slots in
    existence, and the ring holds one cell per pool slot.
    """

    def __init__(self, num_workers: int, ring_slots: int) -> None:
        self._num_workers = num_workers
        self._ring_slots = ring_slots
        self._stride = 8 * (1 + ring_slots)
        self._segment = shared_memory.SharedMemory(
            create=True, size=max(8, num_workers * self._stride)
        )
        self._done_seen = [0] * num_workers
        self._cursors = [0] * num_workers
        self._names = {0: self._segment.name}
        self._finalizer = weakref.finalize(
            self, _unlink_segments, self._names
        )

    @property
    def name(self) -> str:
        return self._segment.name

    @property
    def ring_slots(self) -> int:
        return self._ring_slots

    def poll(self) -> tuple[list[int], list[int]]:
        """(per-worker completion deltas, freed pool slots) since last
        poll.  Submitter-side only."""
        buf = self._segment.buf
        deltas = []
        freed = []
        for worker in range(self._num_workers):
            base = worker * self._stride
            done = struct.unpack_from("<q", buf, base)[0]
            deltas.append(done - self._done_seen[worker])
            self._done_seen[worker] = done
            cursor = self._cursors[worker]
            while self._ring_slots:
                offset = base + 8 + (cursor % self._ring_slots) * 8
                value = struct.unpack_from("<q", buf, offset)[0]
                if value == 0:
                    break
                struct.pack_into("<q", buf, offset, 0)
                freed.append(value - 1)
                cursor += 1
            self._cursors[worker] = cursor
        return deltas, freed

    def close(self) -> None:
        self._finalizer.detach()
        self._segment.close()
        _try_unlink(self._segment)


class _Channel:
    """One-direction message channel built directly on a pipe.

    ``multiprocessing.Queue`` runs a feeder thread in every writing
    process: each ``put`` is a lock + buffer append + condition notify,
    and the pipe write happens on a different thread - at chunk
    granularity the per-ack thread-switch churn (in the submitter *and*
    in every worker) is a measurable slice of the transport's cost.
    The executor needs none of it: ``put`` pickles and writes inline
    (one syscall for a descriptor-sized message), ``get`` polls the
    read end.  A channel with several writing processes (the workers'
    shared result channel) serialises sends with a process-shared
    lock; single-writer channels (each worker's task channel) skip
    even that.  Flow control is the pipe buffer itself: a ``put``
    blocks once the reader falls a pipe-buffer behind, which only the
    oversized pickle-fallback payloads can reach - descriptor traffic
    is bounded by the dispatch depth.
    """

    def __init__(self, context, *, writers: int) -> None:
        self._reader, self._writer = context.Pipe(duplex=False)
        self._lock = context.Lock() if writers > 1 else None

    def put(self, message) -> None:
        if self._lock is None:
            self._writer.send(message)
        else:
            with self._lock:
                self._writer.send(message)

    def put_with_payload(self, message, payload: bytes) -> None:
        """Send ``message`` immediately followed by a raw byte payload.

        Both writes happen under the channel lock, so the reader can
        rely on the payload directly following its header even on a
        multi-writer channel; the reader MUST consume the payload
        (:meth:`get_payload`) before its next :meth:`get`.
        """
        if self._lock is None:
            self._writer.send(message)
            self._writer.send_bytes(payload)
        else:
            with self._lock:
                self._writer.send(message)
                self._writer.send_bytes(payload)

    def get_payload(self) -> bytes:
        """The raw byte payload following a header message."""
        return self._reader.recv_bytes()

    def get(self, timeout: float | None = None):
        """Next message; blocks forever when ``timeout`` is ``None``,
        else raises :class:`queue.Empty` after ``timeout`` seconds."""
        if timeout is not None and not self._reader.poll(timeout):
            raise queue_module.Empty
        return self._reader.recv()

    def get_nowait(self):
        return self.get(timeout=0)

    def close(self) -> None:
        self._reader.close()
        self._writer.close()


class DeferredStates:
    """A worker's drained shard states, shipped home but not yet decoded.

    Drain's barrier needs the state bytes HOME - once the payload is in
    the submitting process, the workers can die without losing data -
    but it does not need them *decoded*: unpickling half a megabyte of
    candidate records belongs to whoever actually rebuilds a shard,
    which the pipeline does lazily, off the ingestion clock.  Drain
    therefore yields ``(shard_id, deferred)`` pairs sharing one
    instance per worker message; :meth:`get` decodes the payload on
    first use and answers from the decoded dict afterwards.
    """

    __slots__ = ("_blob", "_states")

    def __init__(self, blob: bytes) -> None:
        self._blob = blob
        self._states: dict[int, dict[str, Any]] | None = None

    def get(self, shard_id: int) -> dict[str, Any]:
        """The decoded protocol state of ``shard_id``."""
        if self._states is None:
            self._states = dict(pickle.loads(self._blob))
            self._blob = b""
        return self._states[shard_id]


def resolve_state(shard_id: int, state: Any) -> dict[str, Any] | None:
    """A drain-yielded state as a plain dict (decoding if deferred)."""
    if isinstance(state, DeferredStates):
        return state.get(shard_id)
    return state


def _chunk_as_array(chunk: Sequence[Any], dim: int) -> "np.ndarray | None":
    """The chunk as an ``(n, dim)`` float64 array, or ``None``.

    Eligibility is decided by the coercion itself: ``np.asarray``
    applies the same per-element ``float()`` conversion the scalar
    coercion does, so carried values are bit-identical, and anything it
    rejects - ragged rows, unconvertible elements, StreamPoints (not
    sequences, so they coerce to nothing), wrong widths - falls back to
    the pickle transport, which reproduces the scalar error semantics
    exactly.  (numpy never iterates generators, so a failed coercion
    cannot half-consume a single-pass element.)  The returned array may
    alias ``chunk`` when it already was a contiguous float64 array -
    callers snapshot before queueing.
    """
    if np is None or len(chunk) == 0:
        return None
    if isinstance(chunk, np.ndarray):
        if chunk.ndim != 2 or chunk.shape[1] != dim:
            return None
        try:
            return np.ascontiguousarray(chunk, dtype=np.float64)
        except (TypeError, ValueError):
            return None
    try:
        array = np.asarray(chunk, dtype=np.float64)
    except Exception:
        return None
    if array.ndim != 2 or array.shape[1] != dim:
        return None
    return array


def _transport_worker(
    worker_id, task_queue, result_queue, config_state, ctrl_name, ring_slots
):
    """Worker-process loop of the zero-copy transport.

    Owns an evolving set of shard replicas - the scheduler ``adopt``\\ s
    a shard (shipping its protocol state) before the shard's first
    chunk and may later ``release`` it (the replica state flows back and
    the shard migrates to another worker).  Chunk payloads arrive as
    shared-memory descriptors, pickled arrays or pickled chunks; the
    array forms rebuild the chunk's geometry in one pass
    (:func:`repro.core.chunk_geometry.geometry_from_array`) with the
    coerced vectors cached on it, so the replica's materialisation is
    free.  Per-shard sequence numbers are asserted on every chunk - the
    machine check that migrations preserved per-shard FIFO order.
    Completions and freed slots are published through the
    :class:`_ControlBlock` (no message, no submitter wake-up).  On
    ``drain`` the worker ships all owned shards' states batched in one
    message; failures are sticky and reported there (chunks after a
    failure are swallowed, but their completions and shared-memory
    slots are still published so the submitter's pool cannot starve).
    """
    from repro.core import serialize
    from repro.core.chunk_geometry import geometry_from_array
    from repro.distributed.coordinator import ShardSampler

    config = serialize.config_from_state(config_state)
    shards: dict[int, Any] = {}
    next_seq: dict[int, int] = {}
    attachments: dict[int, shared_memory.SharedMemory] = {}
    failure: str | None = None

    ctrl = _attach_untracked(ctrl_name)
    ctrl_base = worker_id * 8 * (1 + ring_slots)
    done_total = 0
    freed_total = 0

    def publish(slot: int | None) -> None:
        """Publish one completion (and a freed slot) to the submitter."""
        nonlocal done_total, freed_total
        if slot is not None:
            struct.pack_into(
                "<q",
                ctrl.buf,
                ctrl_base + 8 + (freed_total % ring_slots) * 8,
                slot + 1,
            )
            freed_total += 1
        done_total += 1
        struct.pack_into("<q", ctrl.buf, ctrl_base, done_total)

    def attach(slot: int, name: str) -> shared_memory.SharedMemory:
        cached = attachments.get(slot)
        if cached is not None and cached.name == name:
            return cached
        if cached is not None:  # the submitter grew this slot's segment
            cached.close()
        segment = _attach_untracked(name)
        attachments[slot] = segment
        return segment

    while True:
        message = task_queue.get()
        kind = message[0]
        if kind == "chunk":
            shard_id, seq, payload = message[1], message[2], message[3]
            slot = payload[1] if payload[0] == "shm" else None
            if failure is not None:
                # Poisoned: swallow work until drain reports, but keep
                # the transport flowing - the slot and the completion
                # must still reach the submitter.
                publish(slot)
                continue
            try:
                expected = next_seq.get(shard_id)
                if seq != expected:
                    raise RuntimeError(
                        f"shard {shard_id} chunk out of order: got "
                        f"sequence {seq}, expected {expected}"
                    )
                if payload[0] == "shm":
                    segment = attach(slot, payload[2])
                    rows, dim = payload[3], payload[4]
                    view = np.frombuffer(
                        segment.buf, dtype=np.float64, count=rows * dim
                    ).reshape(rows, dim)
                    vectors, geometry = geometry_from_array(config, view)
                    del view  # everything derived is a copy
                    shards[shard_id].process_many(
                        vectors, geometry=geometry
                    )
                elif payload[0] == "array":
                    vectors, geometry = geometry_from_array(
                        config, payload[1]
                    )
                    shards[shard_id].process_many(
                        vectors, geometry=geometry
                    )
                else:  # "pickle"
                    shards[shard_id].process_many(payload[1])
                next_seq[shard_id] = seq + 1
            except BaseException:
                failure = traceback.format_exc()
            finally:
                # One publication per chunk carries both the completion
                # and the slot to recycle: the pool has a slot for
                # every chunk that can be in flight plus slack, so
                # holding the slot for the chunk's processing (instead
                # of an early free) can never starve the submitter.
                publish(slot)
        elif kind == "adopt":
            try:
                shards[message[1]] = ShardSampler.from_state(
                    message[2], config=config
                )
                next_seq[message[1]] = message[3]
            except BaseException:
                failure = traceback.format_exc()
        elif kind == "release":
            shard_id = message[1]
            shard = shards.pop(shard_id, None)
            seq = next_seq.pop(shard_id, 0)
            state = None
            if failure is None and shard is not None:
                try:
                    state = shard.to_state()
                except BaseException:
                    failure = traceback.format_exc()
            result_queue.put(("released", shard_id, state, seq))
        elif kind == "drain":
            token = message[1]
            if failure is not None:
                result_queue.put(("error", token, worker_id, failure))
            else:
                try:
                    # One raw pickle payload for all owned shards: the
                    # submitter stores the bytes and decodes them lazily
                    # (DeferredStates), so the barrier pays the ship but
                    # not the decode.
                    states = [
                        (shard_id, shard.to_state())
                        for shard_id, shard in shards.items()
                    ]
                    blob = pickle.dumps(
                        states, protocol=pickle.HIGHEST_PROTOCOL
                    )
                except BaseException:
                    failure = traceback.format_exc()
                    result_queue.put(("error", token, worker_id, failure))
                else:
                    result_queue.put_with_payload(
                        (
                            "states",
                            token,
                            worker_id,
                            [shard_id for shard_id, _ in states],
                        ),
                        blob,
                    )
        else:  # "stop"
            for segment in attachments.values():
                segment.close()
            ctrl.close()
            return


def _mp_context():
    """Prefer fork (cheap, inherits the warmed-up interpreter); every
    payload is picklable, so spawn-only platforms work too."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


class ProcessShardExecutor(ShardExecutor):
    """Worker processes fed through the zero-copy shared-memory transport.

    The coordinator's shard objects become *stale* while chunks are in
    flight; every read must go through :meth:`drain`, which returns each
    worker's shard states as that worker finishes (one batched message
    per worker), so the caller can fold early finishers into a running
    merge while stragglers are still ingesting.

    Parameters
    ----------
    transport:
        ``"auto"`` (default) ships eligible chunks as float64 arrays
        through pooled shared-memory segments and falls back to pickle
        per chunk; ``"shm"`` is the same but errors without numpy;
        ``"pickle"`` forces the legacy transport for every chunk.
    work_stealing:
        Whether idle workers may adopt backlogged shards from busy ones
        (on by default).  Stealing migrates the shard's replica state,
        never reorders its chunks - see the module docstring.
    """

    name = "process"
    # The submitter never builds a ChunkGeometry: its per-chunk work is
    # one asarray + one memcpy, and the worker rebuilds the geometry
    # from the transported array in one vectorised pass.
    wants_geometry = False

    def __init__(
        self,
        coordinator: "DistributedRobustSampler",
        *,
        num_workers: int | None = None,
        transport: str = "auto",
        work_stealing: bool = True,
    ) -> None:
        from repro.core import serialize

        if transport not in TRANSPORT_NAMES:
            raise ParameterError(
                f"unknown transport {transport!r}; one of: "
                + ", ".join(TRANSPORT_NAMES)
            )
        if transport == "shm" and np is None:
            raise ParameterError(
                "transport 'shm' requires numpy; use 'auto' or 'pickle'"
            )
        self._coordinator = coordinator
        self._num_shards = coordinator.num_shards
        self._num_workers = _resolve_workers(num_workers, self._num_shards)
        self._dim = coordinator.config.dim
        self._use_arrays = transport != "pickle" and np is not None
        self._work_stealing = bool(work_stealing)
        self._closed = False
        self._token = 0
        self._failure: str | None = None
        # Scheduler state: per-shard FIFO backlogs live here, workers
        # hold at most _DISPATCH_DEPTH chunks each.
        self._pending: dict[int, deque] = {}
        self._owner: dict[int, int] = {}
        self._flushed: dict[int, dict[str, Any]] = {}
        self._migrating: set[int] = set()
        self._lost: set[int] = set()
        self._seq = [0] * self._num_shards
        self._inflight = [0] * self._num_workers
        # A single worker cannot be stolen from, so its pipeline may be
        # deep: the whole backlog pre-dispatches and the worker never
        # waits on the submitter.
        self._depth = (
            _DISPATCH_DEPTH
            if self._num_workers > 1
            else max(_DISPATCH_DEPTH, _SINGLE_WORKER_DEPTH)
        )
        self._stats: dict[str, Any] = {
            "transport": "shm" if self._use_arrays else "pickle",
            "chunks": 0,
            "shm_chunks": 0,
            "array_chunks": 0,
            "pickle_chunks": 0,
            "shm_bytes": 0,
            "migrations": 0,
            "submit_seconds": 0.0,
        }
        pool_slots = self._num_workers * self._depth + _POOL_SLACK_SLOTS
        self._pool = (
            _ShmChunkPool(pool_slots) if self._use_arrays else None
        )
        self._ctrl = _ControlBlock(
            self._num_workers, pool_slots if self._use_arrays else 0
        )
        context = _mp_context()
        self._result_queue = _Channel(context, writers=self._num_workers)
        self._task_queues = []
        self._workers = []
        config_state = serialize.config_to_state(coordinator.config)
        for index in range(self._num_workers):
            tasks = _Channel(context, writers=1)
            worker = context.Process(
                target=_transport_worker,
                args=(
                    index,
                    tasks,
                    self._result_queue,
                    config_state,
                    self._ctrl.name,
                    self._ctrl.ring_slots,
                ),
                name=f"repro-shard-worker-{index}",
                daemon=True,
            )
            worker.start()
            self._task_queues.append(tasks)
            self._workers.append(worker)

    # ------------------------------------------------------------------ #
    # submit side
    # ------------------------------------------------------------------ #

    def submit(
        self, shard_id: int, chunk: Sequence[Any], geometry: Any = None
    ) -> None:
        if self._closed:
            raise ExecutorError("executor is closed")
        start = time.perf_counter()
        # ``geometry`` is intentionally unused (wants_geometry is
        # False); the worker rebuilds it from the transported array.
        payload = None
        if self._use_arrays:
            array = _chunk_as_array(chunk, self._dim)
            if array is not None:
                if array is chunk or array.base is not None:
                    # Aliases the caller's mutable buffer: snapshot it
                    # into a shared-memory slot right now if one is
                    # free, else fall back to an owned copy.
                    payload = self._write_shm(array)
                    if payload is None:
                        payload = ("array", array.copy())
                else:
                    payload = ("array", array)
        if payload is None:
            payload = ("pickle", _owned_chunk(chunk))
            self._stats["pickle_chunks"] += 1
        seq = self._seq[shard_id]
        self._seq[shard_id] = seq + 1
        self._pending.setdefault(shard_id, deque()).append((seq, payload))
        self._poll_results()
        self._pump()
        self._stats["chunks"] += 1
        self._stats["submit_seconds"] += time.perf_counter() - start
        return None

    def _write_shm(self, array) -> tuple | None:
        """Copy ``array`` into a pooled slot -> descriptor, or ``None``."""
        acquired = self._pool.acquire(array.nbytes)
        if acquired is None:
            return None
        slot, segment = acquired
        rows, dim = array.shape
        target = np.frombuffer(
            segment.buf, dtype=np.float64, count=rows * dim
        ).reshape(rows, dim)
        np.copyto(target, array)
        del target  # keep the segment's buffer unexported
        self._stats["shm_chunks"] += 1
        self._stats["shm_bytes"] += array.nbytes
        return ("shm", slot, segment.name, rows, dim)

    def _owned_count(self, worker: int) -> int:
        return sum(1 for owner in self._owner.values() if owner == worker)

    def _adopt(self, shard_id: int) -> int:
        """Assign an unowned shard to the least-loaded worker.

        The shard's replica state ships with the adoption: the flushed
        state from a migration if one is cached, else the coordinator's
        shard object (current, because a shard's chunks only ever reach
        workers after adoption).  The adoption message carries the next
        expected sequence number, re-arming the worker-side FIFO check.
        """
        worker = min(
            range(self._num_workers),
            key=lambda w: (self._inflight[w], self._owned_count(w), w),
        )
        state = self._flushed.pop(shard_id, None)
        if state is None:
            state = self._coordinator.shard(shard_id).to_state()
        self._task_queues[worker].put(
            ("adopt", shard_id, state, self._pending[shard_id][0][0])
        )
        self._owner[shard_id] = worker
        return worker

    def _pump(self) -> None:
        """Dispatch pending chunks up to each worker's depth limit."""
        for shard_id, backlog in self._pending.items():
            if (
                not backlog
                or shard_id in self._migrating
                or shard_id in self._lost
            ):
                continue
            worker = self._owner.get(shard_id)
            if worker is None:
                worker = self._adopt(shard_id)
            tasks = self._task_queues[worker]
            while backlog and self._inflight[worker] < self._depth:
                seq, payload = backlog.popleft()
                if payload[0] == "array":
                    written = self._write_shm(payload[1])
                    if written is not None:
                        payload = written
                    else:
                        self._stats["array_chunks"] += 1
                tasks.put(("chunk", shard_id, seq, payload))
                self._inflight[worker] += 1
        if self._work_stealing:
            self._maybe_steal()

    def _maybe_steal(self) -> None:
        """Migrate a backlogged shard away from a saturated worker.

        Triggers only when some worker is starving (nothing in flight,
        no owned shard with a backlog) while another worker is at its
        depth limit with a shard backlog of at least
        :data:`_STEAL_MIN_PENDING` chunks.  The release message joins
        the owner's FIFO behind its in-flight chunks, the flushed
        replica state comes back through the result queue, and the next
        :meth:`_pump` re-adopts the shard - queued chunks, sequence
        numbers and all - to the idle worker.
        """
        busy_backlog = False
        starving = set(range(self._num_workers))
        for shard_id, backlog in self._pending.items():
            if not backlog:
                continue
            owner = self._owner.get(shard_id)
            if owner is not None:
                starving.discard(owner)
        for worker in list(starving):
            if self._inflight[worker] > 0:
                starving.discard(worker)
        if not starving:
            return
        victim = None
        for shard_id, backlog in self._pending.items():
            if (
                len(backlog) < _STEAL_MIN_PENDING
                or shard_id in self._migrating
                or shard_id in self._lost
            ):
                continue
            owner = self._owner.get(shard_id)
            if owner is None or self._inflight[owner] < self._depth:
                continue
            if victim is None or len(backlog) > len(
                self._pending[victim]
            ):
                victim = shard_id
        if victim is None:
            return
        owner = self._owner.pop(victim)
        self._migrating.add(victim)
        self._task_queues[owner].put(("release", victim))
        self._stats["migrations"] += 1

    # ------------------------------------------------------------------ #
    # result plumbing
    # ------------------------------------------------------------------ #

    def _handle_async(self, message) -> None:
        """Absorb a worker message that is not a drain-level response."""
        kind = message[0]
        if kind == "released":
            shard_id, state = message[1], message[2]
            self._migrating.discard(shard_id)
            if state is None:
                # The owner was already poisoned; its sticky failure
                # surfaces at the next drain.  The shard's queued work
                # is lost with it.
                self._lost.add(shard_id)
                self._pending.pop(shard_id, None)
            else:
                self._flushed[shard_id] = state
        elif kind == "error":
            self._failure = message[3]
        elif kind == "states":
            # Stale report from an interrupted drain: its payload still
            # follows on the pipe and must be consumed to keep the
            # message stream aligned, then both are dropped.
            self._result_queue.get_payload()

    def _consume_control(self) -> bool:
        """Absorb control-block publications: completions, freed slots."""
        deltas, freed = self._ctrl.poll()
        progress = bool(freed)
        for worker, delta in enumerate(deltas):
            if delta:
                progress = True
                self._inflight[worker] -= delta
        for slot in freed:
            self._pool.release(slot)
        return progress

    def _poll_results(self, timeout: float | None = None) -> bool:
        """Absorb ready worker publications and messages.

        Returns whether anything arrived.  ``timeout`` blocks on the
        result channel for the first message only, and only when the
        control block showed no progress either - the drain flush loop
        uses a short timeout so silent control-block progress (the
        normal case: completions carry no message at all) is picked up
        promptly.
        """
        progress = self._consume_control()
        while True:
            try:
                if timeout is not None and not progress:
                    message = self._result_queue.get(timeout=timeout)
                else:
                    message = self._result_queue.get_nowait()
            except queue_module.Empty:
                if timeout is not None and not progress:
                    # Completions may have landed during the blocking
                    # wait; report them so stall detection sees life.
                    progress = self._consume_control()
                return progress
            progress = True
            self._handle_async(message)

    def _check_liveness(self) -> None:
        dead = [
            (worker.name, worker.exitcode)
            for worker in self._workers
            if not worker.is_alive()
        ]
        if dead:
            raise ExecutorError(
                "shard worker process(es) died without reporting: "
                + ", ".join(
                    f"{name} (exit code {code})" for name, code in dead
                )
            )

    def _raise_failure(self) -> None:
        raise ExecutorError(f"shard worker failed:\n{self._failure}")

    # ------------------------------------------------------------------ #
    # drain / close
    # ------------------------------------------------------------------ #

    def drain(self) -> Iterator[tuple[int, dict[str, Any] | None]]:
        if self._closed:
            raise ExecutorError("executor is closed")
        if self._failure is not None:
            self._raise_failure()
        # Phase 1: flush the submitter-side backlog.  Dispatch as depth
        # frees up and absorb migration states; progress is bounded -
        # a worker that stops acknowledging for _DRAIN_STALL_SECONDS
        # (or dies) fails the drain instead of hanging it.
        last_progress = time.monotonic()
        while True:
            for shard_id in self._lost:
                # A lost shard's backlog is undeliverable; drop it so
                # phase 2 can surface the owning worker's traceback
                # instead of stalling here.
                self._pending.pop(shard_id, None)
            if not (any(self._pending.values()) or self._migrating):
                break
            self._pump()
            if self._failure is not None:
                self._raise_failure()
            # Short wait: chunk completions are silent control-block
            # updates, not messages, so a long blocking poll on the
            # result channel would starve dispatch refills.
            if self._poll_results(timeout=0.02):
                last_progress = time.monotonic()
            else:
                self._check_liveness()
                if time.monotonic() - last_progress > _DRAIN_STALL_SECONDS:
                    queued = sum(
                        len(backlog) for backlog in self._pending.values()
                    )
                    raise ExecutorError(
                        "drain stalled: no worker progress for "
                        f"{_DRAIN_STALL_SECONDS:.0f}s with {queued} "
                        "chunk(s) still queued"
                    )
        # Phase 2: barrier.  Workers report their owned shards' states
        # batched in one message each, in completion order.
        self._token += 1
        token = self._token
        for tasks in self._task_queues:
            tasks.put(("drain", token))
        remaining = self._num_workers
        last_progress = time.monotonic()
        settled: set[int] = set()
        while remaining:
            try:
                message = self._result_queue.get(
                    timeout=_DRAIN_POLL_SECONDS
                )
            except queue_module.Empty:
                if self._consume_control():
                    # In-flight chunks completing ahead of the barrier
                    # response are progress, message-free as they are.
                    last_progress = time.monotonic()
                    continue
                self._check_liveness()
                if time.monotonic() - last_progress > _DRAIN_STALL_SECONDS:
                    raise ExecutorError(
                        "drain stalled: worker process(es) unresponsive "
                        f"for {_DRAIN_STALL_SECONDS:.0f}s"
                    ) from None
                continue
            last_progress = time.monotonic()
            kind = message[0]
            if kind == "states":
                # The raw state payload follows its header on the pipe
                # unconditionally - consume it even for a stale report.
                deferred = DeferredStates(self._result_queue.get_payload())
                if message[1] != token:
                    continue  # stale report from an interrupted drain
                remaining -= 1
                for shard_id in message[3]:
                    settled.add(shard_id)
                    yield (shard_id, deferred)
            elif kind == "error":
                self._failure = message[3]
                self._raise_failure()
            else:
                self._handle_async(message)
                if self._failure is not None:
                    self._raise_failure()
        # Phase 3: shards the submitter holds (flushed by a migration
        # that never re-adopted) and shards no chunk ever reached.  The
        # flushed cache is NOT cleared: until a re-adoption pops an
        # entry, it stays the shard's newest state - later drains yield
        # it again (idempotent) and the caller may defer rebuilding the
        # coordinator's shard object for as long as this executor
        # lives.
        for shard_id, state in self._flushed.items():
            settled.add(shard_id)
            yield (shard_id, state)
        for shard_id in range(self._num_shards):
            if shard_id not in settled and shard_id not in self._owner:
                yield (shard_id, None)

    def stats(self) -> dict[str, Any]:
        return dict(self._stats)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for tasks in self._task_queues:
            try:
                tasks.put(("stop",))
            except (OSError, ValueError):  # pragma: no cover - defensive
                pass
        for worker in self._workers:
            worker.join(timeout=5.0)
            if worker.is_alive():  # pragma: no cover - defensive
                worker.terminate()
                worker.join(timeout=5.0)
        self._result_queue.close()
        for tasks in self._task_queues:
            tasks.close()
        if self._pool is not None:
            self._pool.close()
        self._ctrl.close()


class RemoteShardExecutor(ShardExecutor):
    """Shard work served by workers reachable only through a backend.

    The submitter side of the multi-machine pipeline: ``submit``
    serialises each chunk through the array coercion path
    (:func:`_chunk_as_array` - raw float64 rows when eligible, pickle
    otherwise) and group-commits it as a sequenced
    ``chunk/<shard>/<seq>`` backend entry
    (:meth:`~repro.backends.base.StateBackend.put_many`, amortising the
    file backend's per-put fsync).  Workers - local threads spawned
    here, or ``python -m repro.engine.remote_worker`` processes on any
    machine sharing the backend - lease shards via CAS, fold chunks in
    sequence order and commit ``(consumed_seq, state)`` entries through
    a per-shard CAS fence (see :mod:`repro.engine.queue`).  ``drain``
    polls those entries and yields each shard's plain protocol state
    the moment its consumed count reaches the submitted count, in
    completion order, for the pipeline's streaming merge - so the
    executor is fingerprint-identical to serial by construction:
    per-shard FIFO is enforced by sequence numbers, and states
    round-trip through the protocol's exact ``to_state``/``from_state``.

    Crash story: a worker that dies stops heartbeating; after
    ``lease_ttl`` any other worker steals the lease and resumes from
    the shard's last *committed* state (chunks at or after it are still
    queued - a chunk is deleted only once committed).  A stale worker
    that resurrects mid-steal conflicts at the fence with nothing
    applied.  Worker-side failures (a poisoned point) surface here as
    :class:`~repro.errors.ExecutorError` at the next drain, sticky, like
    every other executor.

    Each instance claims a fresh queue *epoch* under ``queue_key``, so
    leftover workers of a previous executor cannot touch it; ``close``
    signals workers to stop, joins the local ones and purges the
    epoch's keys.
    """

    name = "remote"
    #: Workers rebuild geometry from the transported array, exactly like
    #: the process executor - shipping the object would just be weight.
    wants_geometry = False

    def __init__(
        self,
        coordinator: "DistributedRobustSampler",
        *,
        num_workers: int | None = None,
        backend: Any = None,
        queue_backend: str | None = None,
        queue_path: str | None = None,
        queue_url: str | None = None,
        queue_key: str | None = None,
        lease_ttl: float = 5.0,
        poll_interval: float = 0.02,
        flush_chunks: int = 8,
    ) -> None:
        from repro.backends.base import make_backend
        from repro.core import serialize
        from repro.engine.queue import RemoteQueue
        from repro.engine.remote_worker import run_worker

        if lease_ttl <= 0:
            raise ParameterError(
                f"lease_ttl must be > 0, got {lease_ttl}"
            )
        if flush_chunks < 1:
            raise ParameterError(
                f"flush_chunks must be >= 1, got {flush_chunks}"
            )
        self._coordinator = coordinator
        self._dim = coordinator.config.dim
        if backend is not None:
            self._backend = backend
            self._owns_backend = False
        else:
            self._backend = make_backend(
                queue_backend or "memory",
                path=queue_path,
                url=queue_url,
            )
            self._owns_backend = True
        self._poll_interval = poll_interval
        self._flush_chunks = flush_chunks
        self._queue = RemoteQueue.create(
            self._backend,
            queue_key or "remote-queue",
            config_state=serialize.config_to_state(coordinator.config),
            dim=self._dim,
            shard_states=[
                coordinator.shard(index).to_state()
                for index in range(coordinator.num_shards)
            ],
        )
        self._submitted = [0] * coordinator.num_shards
        self._pending: list[tuple[int, int, bytes]] = []
        self._failure: str | None = None
        self._closed = False
        self._counters = {
            "chunks": 0,
            "array_chunks": 0,
            "pickle_chunks": 0,
            "bytes_out": 0,
            "flushes": 0,
        }
        # Local workers: the zero-configuration mode (and the fast path
        # of the test matrix).  num_workers=0 means every worker is an
        # external ``remote_worker`` process someone else launches.
        if num_workers is None:
            local = 1
        elif num_workers < 0:
            raise ParameterError(
                f"num_workers must be >= 0, got {num_workers}"
            )
        else:
            local = min(num_workers, coordinator.num_shards)
        self._stop_event = threading.Event()
        self._local_workers = [
            threading.Thread(
                target=run_worker,
                args=(self._backend, self._queue.queue_key),
                kwargs={
                    "worker_id": f"local-{index}",
                    "lease_ttl": lease_ttl,
                    "poll_interval": poll_interval,
                    "stop_event": self._stop_event,
                },
                name=f"repro-remote-worker-{index}",
                daemon=True,
            )
            for index in range(local)
        ]
        for thread in self._local_workers:
            thread.start()

    def _flush(self) -> None:
        if not self._pending:
            return
        self._queue.put_chunks(self._pending)
        self._counters["flushes"] += 1
        self._pending.clear()

    def submit(
        self, shard_id: int, chunk: Sequence[Any], geometry: Any = None
    ) -> None:
        if self._closed:
            raise ExecutorError("executor is closed")
        from repro.engine.queue import encode_chunk

        # Serialised immediately, so the caller may reuse its buffer.
        payload = encode_chunk(chunk, self._dim)
        seq = self._submitted[shard_id]
        self._submitted[shard_id] = seq + 1
        self._pending.append((shard_id, seq, payload))
        kind = "array_chunks" if payload[4:5] == b"A" else "pickle_chunks"
        self._counters[kind] += 1
        self._counters["chunks"] += 1
        self._counters["bytes_out"] += len(payload)
        if len(self._pending) >= self._flush_chunks:
            self._flush()
        return None

    def drain(self) -> Iterator[tuple[int, dict[str, Any] | None]]:
        if self._failure is not None:
            raise ExecutorError(
                "remote worker failed:\n" + self._failure
            )
        self._flush()
        pending = set(range(self._coordinator.num_shards))
        last_total = -1
        last_progress = time.monotonic()
        while pending:
            error = self._queue.first_error()
            if error is not None:
                self._failure = error
                raise ExecutorError("remote worker failed:\n" + error)
            total = 0
            settled: list[tuple[int, dict[str, Any] | None]] = []
            for shard in sorted(pending):
                found = self._queue.read_state(shard)
                if found is None:  # pragma: no cover - purged underfoot
                    continue
                seq, state, _version = found
                total += seq
                if seq >= self._submitted[shard]:
                    # seq == 0: no chunk ever folded this epoch, so the
                    # coordinator's own shard object is still current.
                    settled.append((shard, state if seq > 0 else None))
            for shard, state in settled:
                pending.discard(shard)
                yield (shard, state)
            if not pending:
                return
            now = time.monotonic()
            if total > last_total:
                last_total = total
                last_progress = now
            elif now - last_progress > _DRAIN_STALL_SECONDS:
                raise ExecutorError(
                    "remote drain stalled: no shard progress for "
                    f"{_DRAIN_STALL_SECONDS:.0f}s (workers dead with no "
                    f"successor?); shards pending: {sorted(pending)}"
                )
            time.sleep(self._poll_interval)

    def stats(self) -> dict[str, Any]:
        return {
            "executor": self.name,
            "backend": type(self._backend).__name__,
            "epoch": self._queue.epoch,
            "local_workers": len(self._local_workers),
            **self._counters,
            "backend_ops": self._backend.stats(),
        }

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._queue.request_stop()
        self._stop_event.set()
        for thread in self._local_workers:
            thread.join(timeout=5.0)
        self._queue.purge()
        self._pending.clear()
        if self._owns_backend:
            self._backend.close()


def make_executor(
    name: str,
    coordinator: "DistributedRobustSampler",
    *,
    num_workers: int | None = None,
    transport: str = "auto",
    work_stealing: bool = True,
    backend: Any = None,
    queue_backend: str | None = None,
    queue_path: str | None = None,
    queue_url: str | None = None,
    queue_key: str | None = None,
    lease_ttl: float = 5.0,
    poll_interval: float = 0.02,
) -> ShardExecutor:
    """Build the executor registered under ``name``.

    ``transport`` and ``work_stealing`` configure the process executor
    (see :class:`ProcessShardExecutor`); ``backend`` (an instance) or
    ``queue_backend``/``queue_path``/``queue_url`` plus ``queue_key``,
    ``lease_ttl`` and ``poll_interval`` configure the remote executor
    (see :class:`RemoteShardExecutor`).  Each executor ignores the
    others' knobs.

    >>> from repro.distributed.coordinator import DistributedRobustSampler
    >>> coordinator = DistributedRobustSampler(1.0, 1, num_shards=2, seed=1)
    >>> make_executor("serial", coordinator).name
    'serial'
    >>> make_executor("warp", coordinator)
    Traceback (most recent call last):
        ...
    repro.errors.ParameterError: unknown executor 'warp'; one of: serial, thread, process, remote
    """
    if name == "serial":
        return SerialShardExecutor(coordinator)
    if name == "thread":
        return ThreadShardExecutor(coordinator, num_workers=num_workers)
    if name == "process":
        return ProcessShardExecutor(
            coordinator,
            num_workers=num_workers,
            transport=transport,
            work_stealing=work_stealing,
        )
    if name == "remote":
        return RemoteShardExecutor(
            coordinator,
            num_workers=num_workers,
            backend=backend,
            queue_backend=queue_backend,
            queue_path=queue_path,
            queue_url=queue_url,
            queue_key=queue_key,
            lease_ttl=lease_ttl,
            poll_interval=poll_interval,
        )
    raise ParameterError(
        f"unknown executor {name!r}; one of: " + ", ".join(EXECUTOR_NAMES)
    )
