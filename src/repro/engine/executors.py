"""Pluggable shard executors: serial, thread-pool and process-pool.

A :class:`~repro.engine.pipeline.BatchPipeline` deals chunks round-robin
across the shards of a
:class:`~repro.distributed.coordinator.DistributedRobustSampler`.  Until
this layer existed every chunk ran serially in the calling process; a
:class:`ShardExecutor` makes the *where* of that work pluggable while
keeping the *what* bit-identical:

* :class:`SerialShardExecutor` - today's behaviour (the default): every
  chunk is ingested synchronously into the coordinator's own shard
  objects.
* :class:`ThreadShardExecutor` - a pool of worker threads operating on
  the coordinator's live shards.  Under CPython's GIL this buys no
  CPU parallelism; it exists so the executor surface is complete and so
  callers whose streams block on I/O can overlap ingestion with reading.
* :class:`ProcessShardExecutor` - worker processes holding
  spec-constructed *shard replicas* (rebuilt from the shards' protocol
  states plus the shared :class:`~repro.core.base.SamplerConfig`).
  Chunks are shipped to the owning worker; on :meth:`~ShardExecutor.drain`
  each worker returns its shards' protocol states, which the caller folds
  back into the coordinator **as they arrive** (streaming merge - see
  :meth:`repro.distributed.coordinator.DistributedRobustSampler.streaming_merge`)
  instead of barriering on the slowest worker.  This is the first
  executor that turns the per-core batched throughput into a wall-clock
  win on multi-core machines.

The executor-equivalence contract
---------------------------------

Every executor must leave the pipeline ``state_fingerprint``-identical
to the serial one for the same dealt chunk sequence:

* chunks for the SAME shard are processed in submission order (a shard's
  state is a function of its own chunk sequence only);
* chunks for different shards may run in any interleaving (shards share
  no mutable state except the pure hash memo caches of their config);
* a drained executor's shard states round-trip through the protocol's
  ``to_state``/``from_state``, which is fingerprint-exact.

``tests/test_executors.py`` enforces the contract differentially
(serial vs thread vs process, including empty batches, single-shard
pipelines and mid-stream checkpoint/resume) and
``tests/test_property_equivalence.py`` hammers it with
Hypothesis-generated streams and chunk layouts.

Worker failures (a poisoned point, a dead process) surface as
:class:`~repro.errors.ExecutorError` at the next drain, carrying the
worker-side traceback.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_module
import threading
import traceback
from typing import TYPE_CHECKING, Any, ClassVar, Iterator, Sequence

from repro.errors import ExecutorError, ParameterError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.distributed.coordinator import DistributedRobustSampler

#: Registry of executor names accepted by
#: :class:`~repro.api.specs.PipelineSpec` and the CLI's ``--executor``.
EXECUTOR_NAMES = ("serial", "thread", "process")

#: How long (seconds) a drain waits between liveness checks on worker
#: processes before concluding one died without reporting.
_DRAIN_POLL_SECONDS = 1.0


class ShardExecutor:
    """Strategy interface for running shard ingestion work.

    Lifecycle: a pipeline creates its executor lazily on first ingestion,
    :meth:`submit`\\ s one chunk at a time, :meth:`drain`\\ s at every
    synchronisation point (checkpoint, query, merge) and :meth:`close`\\ s
    it when the pipeline is closed.
    """

    #: Name under which :func:`make_executor` builds this class.
    name: ClassVar[str] = ""

    #: Whether the pipeline should precompute a
    #: :class:`~repro.core.chunk_geometry.ChunkGeometry` per chunk and
    #: pass it to :meth:`submit`.  True for executors whose shard work
    #: runs in this process (the geometry object can be handed over
    #: directly); the process executor's workers rebuild it
    #: deterministically from the chunk instead of paying to pickle it.
    wants_geometry: ClassVar[bool] = True

    def submit(
        self, shard_id: int, chunk: Sequence[Any], geometry: Any = None
    ) -> int | None:
        """Deliver one chunk to one shard.

        ``geometry`` is the chunk's precomputed
        :class:`~repro.core.chunk_geometry.ChunkGeometry` (or ``None``);
        executors forward it to the shard's ``process_many`` when the
        shard runs in-process.  Returns the number of points ingested
        when the work happened synchronously, or ``None`` when it was
        queued (the caller then counts ``len(chunk)`` and must
        :meth:`drain` before reading any shard state).
        """
        raise NotImplementedError

    def drain(self) -> Iterator[tuple[int, dict[str, Any] | None]]:
        """Finish all queued work; yield every shard as it settles.

        Yields ``(shard_id, state)`` pairs in *completion* order -
        ``state`` is the shard's protocol ``to_state()`` for executors
        whose replicas live outside the coordinator (process workers),
        or ``None`` when the coordinator's own shard object is already
        current.  Raises :class:`~repro.errors.ExecutorError` if any
        worker failed; the pipeline then stays dirty.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release workers.  Idempotent; further submits are an error."""


class SerialShardExecutor(ShardExecutor):
    """Default executor: synchronous ingestion into the live shards."""

    name = "serial"

    def __init__(self, coordinator: "DistributedRobustSampler") -> None:
        self._coordinator = coordinator

    def submit(
        self, shard_id: int, chunk: Sequence[Any], geometry: Any = None
    ) -> int:
        return self._coordinator.route_many(
            chunk, shard_id, geometry=geometry
        )

    def drain(self) -> Iterator[tuple[int, dict[str, Any] | None]]:
        for shard_id in range(self._coordinator.num_shards):
            yield (shard_id, None)


def _owned_shards(worker: int, num_shards: int, num_workers: int) -> list[int]:
    """Shard ids owned by ``worker`` (fixed ``shard % workers`` striping).

    The mapping is static so every chunk of a shard goes to the same
    worker queue, which is what serialises per-shard work and makes the
    executor state-equivalent to the serial one.
    """
    return list(range(worker, num_shards, num_workers))


def _resolve_workers(num_workers: int | None, num_shards: int) -> int:
    if num_workers is None:
        num_workers = num_shards
    if num_workers < 1:
        raise ParameterError(
            f"num_workers must be >= 1, got {num_workers}"
        )
    # More workers than shards would sit idle: shards are the unit of
    # parallelism (per-shard order is part of the equivalence contract).
    return min(num_workers, num_shards)


class ThreadShardExecutor(ShardExecutor):
    """Worker threads ingesting into the coordinator's live shards.

    Each worker owns a fixed stripe of shards and consumes its queue
    FIFO, so per-shard chunk order is preserved.  The shards share only
    their config's pure hash-memo caches, which are safe to touch
    concurrently under the GIL (every entry is a deterministic function
    of its key, so racing writers write the same value).
    """

    name = "thread"

    def __init__(
        self,
        coordinator: "DistributedRobustSampler",
        *,
        num_workers: int | None = None,
    ) -> None:
        self._coordinator = coordinator
        self._num_workers = _resolve_workers(
            num_workers, coordinator.num_shards
        )
        self._queues: list[queue_module.SimpleQueue] = [
            queue_module.SimpleQueue() for _ in range(self._num_workers)
        ]
        self._failures: list[str | None] = [None] * self._num_workers
        self._closed = False
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                args=(index,),
                name=f"repro-shard-worker-{index}",
                daemon=True,
            )
            for index in range(self._num_workers)
        ]
        for thread in self._threads:
            thread.start()

    def _worker_loop(self, worker: int) -> None:
        tasks = self._queues[worker]
        while True:
            message = tasks.get()
            kind = message[0]
            if kind == "chunk":
                if self._failures[worker] is not None:
                    continue  # poisoned: swallow work until drain reports
                try:
                    self._coordinator.route_many(
                        message[2], message[1], geometry=message[3]
                    )
                except BaseException:
                    self._failures[worker] = traceback.format_exc()
            elif kind == "drain":
                message[1].put(worker)
            else:  # "stop"
                return

    def submit(
        self, shard_id: int, chunk: Sequence[Any], geometry: Any = None
    ) -> None:
        if self._closed:
            raise ExecutorError("executor is closed")
        # Copy: the worker reads the chunk after submit returns, so a
        # caller that reuses its batch buffer must not corrupt it (the
        # serial executor consumes chunks synchronously; equivalence
        # requires the asynchronous ones to behave as if they did).  The
        # geometry snapshot was taken from the submit-time values, so it
        # stays consistent with the copied chunk.
        self._queues[shard_id % self._num_workers].put(
            ("chunk", shard_id, list(chunk), geometry)
        )
        return None

    def drain(self) -> Iterator[tuple[int, dict[str, Any] | None]]:
        if self._closed:
            raise ExecutorError("executor is closed")
        acks: queue_module.SimpleQueue = queue_module.SimpleQueue()
        for tasks in self._queues:
            tasks.put(("drain", acks))
        for _ in range(self._num_workers):
            worker = acks.get()
            failure = self._failures[worker]
            if failure is not None:
                raise ExecutorError(
                    f"shard worker {worker} failed:\n{failure}"
                )
            for shard_id in _owned_shards(
                worker, self._coordinator.num_shards, self._num_workers
            ):
                yield (shard_id, None)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for tasks in self._queues:
            tasks.put(("stop",))
        for thread in self._threads:
            thread.join(timeout=5.0)


def _process_worker(task_queue, result_queue, config_state, shard_states):
    """Worker-process loop: own a stripe of shard replicas.

    Replicas are rebuilt from the shards' protocol states plus the shared
    config, ingest chunks exactly like the originals would, and ship
    their protocol states back on every drain - the same ``to_state`` /
    ``from_state`` round-trip the checkpoint matrix proves
    fingerprint-exact, which is what makes the process executor
    state-equivalent to the serial one.
    """
    from repro.core import serialize
    from repro.distributed.coordinator import ShardSampler

    config = serialize.config_from_state(config_state)
    shards = {
        state["shard_id"]: ShardSampler.from_state(state, config=config)
        for state in shard_states
    }
    failure = None
    while True:
        message = task_queue.get()
        kind = message[0]
        if kind == "chunk":
            if failure is not None:
                continue  # poisoned: swallow work until drain reports
            try:
                shards[message[1]].process_many(message[2])
            except BaseException:
                failure = traceback.format_exc()
        elif kind == "drain":
            token = message[1]
            if failure is not None:
                result_queue.put(("error", token, failure))
            else:
                result_queue.put(
                    (
                        "states",
                        token,
                        [
                            (shard_id, shard.to_state())
                            for shard_id, shard in shards.items()
                        ],
                    )
                )
        else:  # "stop"
            return


def _mp_context():
    """Prefer fork (cheap, inherits the warmed-up interpreter); every
    payload is picklable, so spawn-only platforms work too."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


class ProcessShardExecutor(ShardExecutor):
    """Worker processes holding spec-constructed shard replicas.

    The coordinator's shard objects become *stale* while chunks are in
    flight; every read must go through :meth:`drain`, which returns each
    worker's shard states as that worker finishes (completion order), so
    the caller can fold early finishers into a running merge while
    stragglers are still ingesting.
    """

    name = "process"
    # Shipping a ChunkGeometry through the task queue would pay pickling
    # for arrays the worker can rebuild in one vectorised pass; workers'
    # process_many rebuilds it deterministically instead.
    wants_geometry = False

    def __init__(
        self,
        coordinator: "DistributedRobustSampler",
        *,
        num_workers: int | None = None,
    ) -> None:
        from repro.core import serialize

        self._num_shards = coordinator.num_shards
        self._num_workers = _resolve_workers(num_workers, self._num_shards)
        self._closed = False
        self._token = 0
        context = _mp_context()
        self._result_queue = context.Queue()
        self._task_queues = []
        self._workers = []
        config_state = serialize.config_to_state(coordinator.config)
        for index in range(self._num_workers):
            tasks = context.Queue()
            shard_states = [
                coordinator.shard(shard_id).to_state()
                for shard_id in _owned_shards(
                    index, self._num_shards, self._num_workers
                )
            ]
            worker = context.Process(
                target=_process_worker,
                args=(tasks, self._result_queue, config_state, shard_states),
                name=f"repro-shard-worker-{index}",
                daemon=True,
            )
            worker.start()
            self._task_queues.append(tasks)
            self._workers.append(worker)

    def submit(
        self, shard_id: int, chunk: Sequence[Any], geometry: Any = None
    ) -> None:
        if self._closed:
            raise ExecutorError("executor is closed")
        # Copy: multiprocessing.Queue pickles in a background feeder
        # thread after submit returns, so a caller that reuses its batch
        # buffer would otherwise ship mutated data.  ``geometry`` is
        # intentionally dropped (wants_geometry is False): the worker's
        # process_many rebuilds it deterministically from the chunk.
        self._task_queues[shard_id % self._num_workers].put(
            ("chunk", shard_id, list(chunk))
        )
        return None

    def drain(self) -> Iterator[tuple[int, dict[str, Any] | None]]:
        if self._closed:
            raise ExecutorError("executor is closed")
        self._token += 1
        token = self._token
        for tasks in self._task_queues:
            tasks.put(("drain", token))
        remaining = self._num_workers
        while remaining:
            try:
                message = self._result_queue.get(
                    timeout=_DRAIN_POLL_SECONDS
                )
            except queue_module.Empty:
                dead = [
                    worker.name
                    for worker in self._workers
                    if not worker.is_alive()
                ]
                if dead:
                    raise ExecutorError(
                        "shard worker process(es) died without reporting: "
                        + ", ".join(dead)
                    ) from None
                continue
            kind, message_token = message[0], message[1]
            if message_token != token:
                continue  # stale report from an interrupted drain
            if kind == "error":
                raise ExecutorError(
                    f"shard worker failed:\n{message[2]}"
                )
            remaining -= 1
            for shard_id, state in message[2]:
                yield (shard_id, state)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for tasks in self._task_queues:
            try:
                tasks.put(("stop",))
            except (OSError, ValueError):  # pragma: no cover - defensive
                pass
        for worker in self._workers:
            worker.join(timeout=5.0)
            if worker.is_alive():  # pragma: no cover - defensive
                worker.terminate()
        self._result_queue.close()
        for tasks in self._task_queues:
            tasks.close()


def make_executor(
    name: str,
    coordinator: "DistributedRobustSampler",
    *,
    num_workers: int | None = None,
) -> ShardExecutor:
    """Build the executor registered under ``name``.

    >>> from repro.distributed.coordinator import DistributedRobustSampler
    >>> coordinator = DistributedRobustSampler(1.0, 1, num_shards=2, seed=1)
    >>> make_executor("serial", coordinator).name
    'serial'
    >>> make_executor("warp", coordinator)
    Traceback (most recent call last):
        ...
    repro.errors.ParameterError: unknown executor 'warp'; one of: serial, thread, process
    """
    if name == "serial":
        return SerialShardExecutor(coordinator)
    if name == "thread":
        return ThreadShardExecutor(coordinator, num_workers=num_workers)
    if name == "process":
        return ProcessShardExecutor(coordinator, num_workers=num_workers)
    raise ParameterError(
        f"unknown executor {name!r}; one of: " + ", ".join(EXECUTOR_NAMES)
    )
