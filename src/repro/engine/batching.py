"""Chunking utilities for the batched ingestion engine.

:func:`chunked` is defined in :mod:`repro.core.base` (the leaf module -
:meth:`~repro.core.base.StreamSampler.extend` chunks with it, and the
core cannot import the engine package without a cycle); this module is
its engine-facing home.
"""

from __future__ import annotations

from repro.core.base import chunked

__all__ = ["chunked"]
