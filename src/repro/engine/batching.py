"""Chunking and chunk-geometry utilities for the batched ingestion engine.

:func:`chunked` and the :class:`~repro.core.chunk_geometry.ChunkGeometry`
precompute are defined in the core package (leaf modules -
:meth:`~repro.core.base.StreamSampler.extend` chunks with the former,
the samplers' ``process_many`` overrides consume the latter, and the
core cannot import the engine package without a cycle); this module is
their engine-facing home, plus the pipeline-level geometry builder.

:func:`chunk_geometry_for` is where :class:`~repro.engine.pipeline.BatchPipeline`
builds one :class:`ChunkGeometry` per dealt chunk, so the shard that
receives the chunk (through whichever in-process executor) never
recomputes it; worker *processes* rebuild the geometry deterministically
inside their own ``process_many`` instead, which is state-equivalent
because a ``ChunkGeometry`` is a pure function of the chunk and the
shared config.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.base import SamplerConfig, chunked
from repro.core.chunk_geometry import (
    MIN_VECTOR_CHUNK,
    ChunkGeometry,
    compute_chunk_geometry,
    geometry_from_array,
    materialize_chunk,
    set_vectorized_geometry,
    vectorized_geometry_enabled,
)
from repro.geometry import kernels
from repro.streams.point import StreamPoint

if kernels.HAVE_NUMPY:
    import numpy as np
else:  # pragma: no cover - exercised only without numpy
    np = None  # type: ignore[assignment]

__all__ = [
    "chunked",
    "ChunkGeometry",
    "compute_chunk_geometry",
    "chunk_geometry_for",
    "geometry_from_array",
    "materialize_chunk",
    "set_vectorized_geometry",
    "vectorized_geometry_enabled",
]


def chunk_geometry_for(
    config: SamplerConfig,
    chunk: Sequence[StreamPoint | Iterable[float]],
) -> ChunkGeometry | None:
    """Build a chunk's geometry ahead of dealing it to a shard.

    Returns ``None`` for chunks the vectorised path cannot serve -
    including any invalid point (wrong dimension, non-numeric
    coordinate): the shard's own ``process_many`` then takes its scalar
    branch and reproduces the per-point error semantics exactly.

    The coerced tuples are cached on the returned geometry
    (``source_vectors``; ``pure_coords`` when no input point was a
    :class:`~repro.streams.point.StreamPoint`), so the shard's
    materialisation reuses this coercion instead of repeating it - the
    chunk is coerced exactly once per pipeline pass.
    """
    if not vectorized_geometry_enabled() or len(chunk) < MIN_VECTOR_CHUNK:
        return None
    dim = config.dim
    if (
        kernels.HAVE_NUMPY
        and isinstance(chunk, np.ndarray)
        and chunk.ndim == 2
        and chunk.dtype.kind in "fiub"
    ):
        # Numeric array chunks skip the per-row float() loop entirely:
        # one dtype cast (a no-op for float64 input), then the same
        # builder the worker-side transport uses.  Restricted to numeric
        # dtypes, where the cast is element-wise identical to float(x);
        # object arrays fall through to the scalar loop below so exotic
        # elements keep their exact per-point coercion semantics.
        if chunk.shape[1] != dim:
            # The scalar loop would fail its dimension sweep on every
            # row; short-circuit to the same verdict.
            return None
        _, geometry = geometry_from_array(
            config, np.asarray(chunk, dtype=np.float64)
        )
        return geometry
    pure = True
    vectors = []
    try:
        for point in chunk:
            if isinstance(point, StreamPoint):
                pure = False
                vectors.append(point.vector)
            else:
                vectors.append(tuple(float(x) for x in point))
    except Exception:
        return None
    for vector in vectors:
        if len(vector) != dim:
            return None
    return compute_chunk_geometry(
        config, vectors, source_vectors=vectors, pure_coords=pure
    )
