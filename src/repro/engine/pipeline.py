"""Fan batched ingestion out over distributed shards and merge on query.

:class:`BatchPipeline` is the scale-out face of the batch engine: it
slices an incoming stream into chunks (:func:`repro.engine.batching.chunked`),
deals the chunks round-robin across the shards of a
:class:`~repro.distributed.coordinator.DistributedRobustSampler`, and
answers queries from the coordinator's sketch-sized merge.  Because all
shards share one :class:`~repro.core.base.SamplerConfig` (same grid
offset, same sampling hash) the merged sampler is a faithful sampler of
the *union* stream - the oracle test in ``tests/test_distributed.py``
checks the merge output against a single sampler fed the interleaved
union directly.

Round-robin chunk dealing is deterministic: the same stream and
``batch_size`` always produce the same shard assignment, which together
with an explicit ``seed`` makes whole pipeline runs reproducible.
"""

from __future__ import annotations

import random
from typing import Iterable, Sequence

from repro.core.base import DEFAULT_BATCH_SIZE, DEFAULT_KAPPA0, SamplerConfig
from repro.core.infinite_window import RobustL0SamplerIW
from repro.distributed.coordinator import DistributedRobustSampler, ShardSampler
from repro.engine.batching import chunked
from repro.errors import ParameterError
from repro.streams.point import StreamPoint


class BatchPipeline:
    """Batched ingestion across ``num_shards`` robust shard samplers.

    Parameters
    ----------
    alpha, dim:
        Geometry of the noisy data model.
    num_shards:
        Number of shard samplers fed round-robin.
    batch_size:
        Chunk size used by :meth:`extend`.
    seed:
        Seed of the shared configuration; also accepts ``rng`` - an
        explicit generator - for library callers threading one source
        of randomness through a whole run.
    kappa0, expected_stream_length:
        Forwarded to every shard.

    Examples
    --------
    >>> pipeline = BatchPipeline(1.0, 1, num_shards=3, seed=11,
    ...                          batch_size=4)
    >>> pipeline.extend([(25.0 * (i % 5),) for i in range(40)])
    40
    >>> merged = pipeline.merge()
    >>> merged.num_candidate_groups
    5
    """

    def __init__(
        self,
        alpha: float,
        dim: int,
        *,
        num_shards: int,
        batch_size: int = DEFAULT_BATCH_SIZE,
        seed: int | None = None,
        rng: random.Random | None = None,
        kappa0: float = DEFAULT_KAPPA0,
        expected_stream_length: int | None = None,
    ) -> None:
        if batch_size < 1:
            raise ParameterError(
                f"batch_size must be >= 1, got {batch_size}"
            )
        if rng is not None:
            seed = rng.randrange(2**62)
        self._coordinator = DistributedRobustSampler(
            alpha,
            dim,
            num_shards=num_shards,
            seed=seed,
            kappa0=kappa0,
            expected_stream_length=expected_stream_length,
        )
        self._batch_size = batch_size
        self._next_shard = 0
        self._points_seen = 0

    # ------------------------------------------------------------------ #
    # properties
    # ------------------------------------------------------------------ #

    @property
    def num_shards(self) -> int:
        """Number of shard samplers."""
        return self._coordinator.num_shards

    @property
    def batch_size(self) -> int:
        """Chunk size used when slicing streams."""
        return self._batch_size

    @property
    def config(self) -> SamplerConfig:
        """The configuration shared by all shards (and by the merge)."""
        return self._coordinator.config

    @property
    def points_seen(self) -> int:
        """Total points ingested across all shards."""
        return self._points_seen

    @property
    def coordinator(self) -> DistributedRobustSampler:
        """The underlying coordinator (shard access, communication cost)."""
        return self._coordinator

    def shard(self, index: int) -> ShardSampler:
        """Access one shard's sampler."""
        return self._coordinator.shard(index)

    # ------------------------------------------------------------------ #
    # ingestion
    # ------------------------------------------------------------------ #

    def submit(
        self, batch: Iterable[StreamPoint | Sequence[float]]
    ) -> int:
        """Ingest one batch into the next shard (round-robin).

        Returns the number of points ingested.
        """
        shard = self._next_shard
        self._next_shard = (shard + 1) % self._coordinator.num_shards
        processed = self._coordinator.route_many(batch, shard)
        self._points_seen += processed
        return processed

    def extend(
        self, points: Iterable[StreamPoint | Sequence[float]]
    ) -> int:
        """Slice a stream into batches and deal them across the shards."""
        total = 0
        for chunk in chunked(points, self._batch_size):
            total += self.submit(chunk)
        return total

    # ------------------------------------------------------------------ #
    # queries (via the coordinator's sketch-sized merge)
    # ------------------------------------------------------------------ #

    def merge(self) -> RobustL0SamplerIW:
        """Merge all shard states into one sampler over the union stream."""
        return self._coordinator.merged_sampler()

    def sample(self, rng: random.Random | None = None) -> StreamPoint:
        """One-shot distributed query: merge then sample."""
        return self._coordinator.sample(rng)

    def estimate_f0(self) -> float:
        """Robust F0 estimate of the union stream."""
        return self._coordinator.estimate_f0()

    def communication_words(self) -> int:
        """Words shipped to the coordinator by one merge."""
        return self._coordinator.communication_words()
