"""Fan batched ingestion out over distributed shards and merge on query.

:class:`BatchPipeline` is the scale-out face of the batch engine: it
slices an incoming stream into chunks (:func:`repro.engine.batching.chunked`),
deals the chunks round-robin across the shards of a
:class:`~repro.distributed.coordinator.DistributedRobustSampler`, and
answers queries from the coordinator's sketch-sized merge.  Because all
shards share one :class:`~repro.core.base.SamplerConfig` (same grid
offset, same sampling hash) the merged sampler is a faithful sampler of
the *union* stream - the oracle test in ``tests/test_distributed.py``
checks the merge output against a single sampler fed the interleaved
union directly.

The pipeline is registered in :mod:`repro.api.registry` under
``"batch-pipeline"`` and is built from a
:class:`~repro.api.specs.PipelineSpec`; shards are spec-constructed by
the coordinator and the whole pipeline - shards mid-stream, round-robin
cursor and all - checkpoints through the Summary protocol
(:meth:`to_state` / :meth:`from_state`), so a long ingestion job can be
stopped and resumed with fingerprint-identical results.

*Where* shard work runs is pluggable (``PipelineSpec.executor``, see
:mod:`repro.engine.executors`): ``"serial"`` ingests chunks inline
(default), ``"thread"`` fans them out over worker threads, and
``"process"`` ships them to worker processes holding shard replicas -
the first wall-clock (not just per-core) throughput win.  Reads
(:meth:`merge`, :meth:`to_state`, queries) synchronise first; the merge
path folds finished shard states into the running union sampler as
each worker delivers them (the coordinator's
:meth:`~repro.distributed.coordinator.DistributedRobustSampler.streaming_merge`)
instead of barriering on the slowest shard.  Executor choice is never
observable in state: every executor yields a ``state_fingerprint``
identical to the serial pipeline's (enforced by
``tests/test_executors.py`` and the Hypothesis matrix in
``tests/test_property_equivalence.py``).

Round-robin chunk dealing is deterministic: the same stream and
``batch_size`` always produce the same shard assignment, which together
with an explicit ``seed`` makes whole pipeline runs reproducible -
whichever executor runs the shards.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.core.base import DEFAULT_KAPPA0, SamplerConfig
from repro.core.infinite_window import RobustL0SamplerIW
from repro.distributed.coordinator import DistributedRobustSampler, ShardSampler
from repro.engine.batching import chunk_geometry_for, chunked
from repro.errors import EmptySampleError, ExecutorError, ParameterError
from repro.geometry.kernels import HAVE_NUMPY
from repro.streams.point import StreamPoint

if HAVE_NUMPY:
    import numpy as np
else:  # pragma: no cover - exercised only without numpy
    np = None  # type: ignore[assignment]

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.specs import PipelineSpec
    from repro.engine.executors import ShardExecutor


class BatchPipeline:
    """Batched ingestion across ``num_shards`` robust shard samplers.

    Parameters
    ----------
    alpha, dim:
        Geometry of the noisy data model (legacy surface; equivalently
        pass ``spec``).
    spec:
        A :class:`~repro.api.specs.PipelineSpec` describing the whole
        pipeline (geometry, shard count, batch size, seed).
    num_shards:
        Number of shard samplers fed round-robin.
    batch_size:
        Chunk size used by :meth:`extend`.
    seed:
        Seed of the shared configuration; also accepts ``rng`` - an
        explicit generator - for library callers threading one source
        of randomness through a whole run.
    executor, num_workers:
        Where shard ingestion runs: ``"serial"`` (default), ``"thread"``
        or ``"process"`` with ``num_workers`` workers (default: one per
        shard).  See :mod:`repro.engine.executors`; parallel pipelines
        should be :meth:`close`\\ d (or used as context managers) to
        release their workers.
    kappa0, expected_stream_length:
        Forwarded to every shard.

    Examples
    --------
    >>> pipeline = BatchPipeline(1.0, 1, num_shards=3, seed=11,
    ...                          batch_size=4)
    >>> pipeline.extend([(25.0 * (i % 5),) for i in range(40)])
    40
    >>> merged = pipeline.merge()
    >>> merged.num_candidate_groups
    5
    """

    #: Registry key (see :mod:`repro.api.registry`).
    summary_key = "batch-pipeline"

    def __init__(
        self,
        alpha: float | None = None,
        dim: int | None = None,
        *,
        spec: "PipelineSpec | None" = None,
        num_shards: int | None = None,
        batch_size: int | None = None,
        seed: int | None = None,
        rng: random.Random | None = None,
        executor: str | None = None,
        num_workers: int | None = None,
        kappa0: float = DEFAULT_KAPPA0,
        expected_stream_length: int | None = None,
    ) -> None:
        from repro.api.specs import L0InfiniteSpec, PipelineSpec

        if spec is None:
            if rng is not None:
                seed = rng.randrange(2**62)
            if alpha is None or dim is None:
                raise ParameterError(
                    "either a spec or (alpha, dim) is required"
                )
            # Only non-None knobs are forwarded, so PipelineSpec's own
            # defaults stay the single source of truth.
            knobs = {
                key: value
                for key, value in (
                    ("num_shards", num_shards),
                    ("batch_size", batch_size),
                    ("executor", executor),
                    ("num_workers", num_workers),
                )
                if value is not None
            }
            spec = PipelineSpec(
                alpha=alpha,
                dim=dim,
                seed=seed,
                kappa0=kappa0,
                expected_stream_length=expected_stream_length,
                **knobs,
            )
        elif (
            alpha is not None
            or dim is not None
            or num_shards is not None
            or batch_size is not None
            or seed is not None
            or rng is not None
            or executor is not None
            or num_workers is not None
            or kappa0 != DEFAULT_KAPPA0
            or expected_stream_length is not None
        ):
            raise ParameterError(
                "pass alpha/dim/num_shards/batch_size/seed/executor/"
                "num_workers/kappa0/expected_stream_length inside the "
                "spec, not alongside it"
            )
        self._spec = spec
        self._coordinator = DistributedRobustSampler(
            spec=L0InfiniteSpec(
                alpha=spec.alpha,
                dim=spec.dim,
                seed=spec.seed,
                kappa0=spec.kappa0,
                expected_stream_length=spec.expected_stream_length,
            ),
            num_shards=spec.num_shards,
        )
        self._batch_size = spec.batch_size
        self._next_shard = 0
        self._points_seen = 0
        self._executor: "ShardExecutor | None" = None
        self._dirty = False
        # Shard states shipped home by a drain but not yet rebuilt into
        # the coordinator's shard objects (see sync()).  Values are
        # protocol-state dicts or still-pickled DeferredStates handles;
        # readers go through executors.resolve_state.
        self._shipped: dict[int, Any] = {}

    # ------------------------------------------------------------------ #
    # properties
    # ------------------------------------------------------------------ #

    @property
    def spec(self) -> "PipelineSpec":
        """The spec this pipeline was constructed from."""
        return self._spec

    @property
    def num_shards(self) -> int:
        """Number of shard samplers."""
        return self._coordinator.num_shards

    @property
    def batch_size(self) -> int:
        """Chunk size used when slicing streams."""
        return self._batch_size

    @property
    def config(self) -> SamplerConfig:
        """The configuration shared by all shards (and by the merge)."""
        return self._coordinator.config

    @property
    def points_seen(self) -> int:
        """Total points ingested across all shards."""
        return self._points_seen

    @property
    def coordinator(self) -> DistributedRobustSampler:
        """The underlying coordinator (shard access, communication cost).

        Synchronises first: with a parallel executor the coordinator's
        shard objects are only current after outstanding chunks drain.
        """
        self.sync()
        self._materialize()
        return self._coordinator

    @property
    def executor_name(self) -> str:
        """Which executor runs shard work (``spec.executor``)."""
        return self._spec.executor

    def shard(self, index: int) -> ShardSampler:
        """Access one shard's sampler (synchronises first)."""
        self.sync()
        self._materialize()
        return self._coordinator.shard(index)

    # ------------------------------------------------------------------ #
    # executor plumbing
    # ------------------------------------------------------------------ #

    def _ensure_executor(self) -> "ShardExecutor":
        """Create the spec's executor on first ingestion (lazily, so a
        restored or idle pipeline holds no workers)."""
        if self._executor is None:
            from repro.engine.executors import make_executor

            self._executor = make_executor(
                self._spec.executor,
                self._coordinator,
                num_workers=self._spec.num_workers,
                transport=self._spec.transport,
                work_stealing=self._spec.work_stealing,
                queue_backend=self._spec.queue_backend,
                queue_path=self._spec.queue_path,
                queue_url=self._spec.queue_url,
                queue_key=self._spec.queue_key,
                lease_ttl=self._spec.lease_ttl,
            )
        return self._executor

    def executor_stats(self) -> dict:
        """The live executor's transport/scheduling counters.

        Empty for in-process executors and for a pipeline whose
        executor has not started (or was closed); see
        :meth:`repro.engine.executors.ShardExecutor.stats`.  Read these
        *before* :meth:`close` - the benchmark records them per run.
        """
        if self._executor is None:
            return {}
        return self._executor.stats()

    def sync(self) -> None:
        """Barrier: finish outstanding shard work, bring states home.

        A no-op for the serial executor (shard objects are always
        current) and for a clean pipeline.  With the process executor
        this collects each worker's shard states as the workers deliver
        them; rebuilding them into live shard *objects* is deferred to
        the first read that needs one (:meth:`_materialize`), so a
        sync-then-keep-streaming cycle never pays the restore cost and a
        sync-then-merge pays it inside the merge fold.  Raises
        :class:`~repro.errors.ExecutorError` if a worker failed - the
        pipeline then stays dirty and unsynchronised work is not lost
        silently - not even after a failed :meth:`close` released the
        workers (reads keep raising rather than serving stale shards).
        """
        if not self._dirty:
            return
        if self._executor is None:
            raise ExecutorError(
                "pipeline has unsynchronised chunks but its executor was "
                "already released (a close() after a worker failure); the "
                "queued work was lost - restore from the last checkpoint"
            )
        for shard_id, state in self._executor.drain():
            if state is not None:
                self._shipped[shard_id] = state
            # state None: either the coordinator's own shard object is
            # current, or an earlier drain already shipped this shard's
            # state and it is still buffered - keep the buffered one.
        self._dirty = False

    def _materialize(self) -> None:
        """Rebuild buffered shard states into the coordinator's shards.

        The deferred half of :meth:`sync`: drain ships the states home
        cheaply (as raw payload bytes for process workers), and only a
        read that needs live shard objects (queries, checkpoints,
        direct shard access, the next adoption decision inside a fresh
        executor) pays the decode and ``from_state`` reconstruction.
        """
        if not self._shipped:
            return
        from repro.engine.executors import resolve_state

        for shard_id, state in self._shipped.items():
            self._coordinator.restore_shard(
                shard_id, resolve_state(shard_id, state)
            )
        self._shipped.clear()

    def close(self) -> None:
        """Synchronise and release the executor's workers (idempotent).

        The pipeline stays usable afterwards: the next ingestion lazily
        starts a fresh executor from the synchronised shard states.
        """
        if self._executor is None:
            return
        try:
            self.sync()
        finally:
            self._executor.close()
            self._executor = None

    def __enter__(self) -> "BatchPipeline":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # ingestion
    # ------------------------------------------------------------------ #

    def submit(
        self, batch: Iterable[StreamPoint | Sequence[float]]
    ) -> int:
        """Ingest one batch into the next shard (round-robin).

        The chunk's :class:`~repro.core.chunk_geometry.ChunkGeometry`
        is built **once here** (all shards share one config, so the
        geometry is valid wherever the chunk lands) and handed to the
        executor; in-process executors forward it to the owning shard's
        ``process_many``, worker processes rebuild it deterministically
        on their side.  Returns the number of points ingested.  With a
        parallel executor the chunk is queued to the shard's worker and
        the count returned is the chunk length; any worker-side failure
        surfaces as :class:`~repro.errors.ExecutorError` at the next
        synchronisation point (:meth:`sync`, :meth:`merge`,
        :meth:`to_state`, queries).
        """
        if self._shipped and self._executor is None:
            # A previous sync left shard states buffered and the
            # executor that shipped them is gone; rebuild them before a
            # fresh executor snapshots coordinator shards for adoption.
            # (A live executor needs no rebuild: its workers - and its
            # own flushed-state cache - hold every state newer than the
            # coordinator's objects.)
            self._materialize()
        shard = self._next_shard
        self._next_shard = (shard + 1) % self._coordinator.num_shards
        executor = self._ensure_executor()
        # Lists and tuples pass through as-is; a 2-d numpy array does
        # too (the process executor's transport copies it into shared
        # memory without ever touching Python floats).  Anything else -
        # generators included - is materialised once here.
        if isinstance(batch, (list, tuple)):
            chunk = batch
        elif HAVE_NUMPY and isinstance(batch, np.ndarray) and batch.ndim == 2:
            chunk = batch
        else:
            chunk = list(batch)
        geometry = None
        if executor.wants_geometry:
            geometry = chunk_geometry_for(self._coordinator.config, chunk)
            if (
                geometry is not None
                and geometry.pure_coords
                and geometry.source_vectors is not None
                and len(geometry.source_vectors) == len(chunk)
            ):
                # Hand the shard the coerced tuples themselves: shard
                # materialisation then hits the identity fast path of
                # ``_reusable_vectors`` (``points is source_vectors``)
                # and ``valid_for`` short-circuits on the same identity,
                # so the chunk is coerced exactly once per pipeline
                # pass.  Safe because ``pure_coords`` guarantees no
                # StreamPoint metadata is lost and the tuples cover the
                # full chunk.
                chunk = geometry.source_vectors
        processed = executor.submit(shard, chunk, geometry)
        if processed is None:  # queued, not yet ingested
            self._dirty = True
            processed = len(chunk)
        self._points_seen += processed
        return processed

    def process_many(
        self, points: Iterable[StreamPoint | Sequence[float]]
    ) -> int:
        """Protocol ingestion: chunk by ``batch_size`` and deal round-robin.

        Identical to :meth:`extend`, so protocol-generic callers get the
        same sharded ingestion as native ones; :meth:`submit` remains the
        explicit one-batch-to-one-shard primitive.
        """
        return self.extend(points)

    def extend(
        self,
        points: Iterable[StreamPoint | Sequence[float]],
        *,
        batch_size: int | None = None,
    ) -> int:
        """Slice a stream into batches and deal them across the shards.

        ``batch_size`` overrides the spec's chunk size for this call
        only.  The chunking determines the round-robin shard assignment,
        so runs (and checkpoint resumes) are only comparable when they
        deal with the same chunk size.
        """
        if batch_size is None:
            batch_size = self._batch_size
        total = 0
        for chunk in chunked(points, batch_size):
            total += self.submit(chunk)
        return total

    # ------------------------------------------------------------------ #
    # queries (via the coordinator's sketch-sized streaming merge)
    # ------------------------------------------------------------------ #

    def merge(self, *others: "BatchPipeline") -> RobustL0SamplerIW:
        """Merge all shard states into one sampler over the union stream.

        Called with no arguments (the usual form) this is the pipeline's
        shard merge: finished shard states are folded into the running
        union sampler as the executor delivers them
        (:meth:`~repro.distributed.coordinator.DistributedRobustSampler.streaming_merge`),
        so with process workers the merge overlaps the last shards'
        ingestion instead of barriering on all of them.  The fold order
        is deterministic (shards 0..k-1), so the merged sampler is
        identical whichever executor ran the shards.

        Merging two *pipelines* is intentionally unsupported - deal the
        streams into one pipeline instead, or merge the pipelines'
        :meth:`merge` outputs, which are plain samplers.
        """
        if others:
            from repro.api.protocol import merge_unsupported

            raise merge_unsupported(
                self,
                "merge() combines this pipeline's own shards; merge the "
                "per-pipeline merged samplers instead",
            )
        if self._dirty:
            if self._executor is None:
                self.sync()  # raises: the queued work was lost
            merged = self._coordinator.streaming_merge(
                self._arrivals_via(self._executor.drain())
            )
            self._dirty = False
            return merged
        # Buffered states from an earlier sync ride into the fold (the
        # streaming merge restores each arriving state anyway, so the
        # deferred rebuild happens here at no extra cost).
        from repro.engine.executors import resolve_state

        return self._coordinator.streaming_merge(
            (shard_id, resolve_state(shard_id, self._shipped.pop(shard_id, None)))
            for shard_id in range(self._coordinator.num_shards)
        )

    def _arrivals_via(self, drain):
        """Adapt a drain into merge arrivals, overlaying buffered states.

        A drain reports ``None`` for a shard whose chunks all pre-date
        this executor's life or whose newest state was already shipped
        by an earlier drain; in the latter case the buffered state is
        the current one and must reach the fold.
        """
        from repro.engine.executors import resolve_state

        for shard_id, state in drain:
            if state is None:
                state = self._shipped.pop(shard_id, None)
            else:
                self._shipped.pop(shard_id, None)
            yield (shard_id, resolve_state(shard_id, state))

    def query(self, rng: random.Random | None = None) -> StreamPoint:
        """Protocol query: merge then sample (see :meth:`sample`)."""
        return self.sample(rng)

    def sample(self, rng: random.Random | None = None) -> StreamPoint:
        """One-shot distributed query: merge then sample."""
        merged = self.merge()
        if merged.accept_size == 0:
            raise EmptySampleError("no shard holds an accepted group")
        return merged.sample(rng)

    def estimate_f0(self) -> float:
        """Robust F0 estimate of the union stream."""
        return self.merge().estimate_f0()

    def communication_words(self) -> int:
        """Words shipped to the coordinator by one merge."""
        self.sync()
        self._materialize()
        return self._coordinator.communication_words()

    # ------------------------------------------------------------------ #
    # checkpoint state
    # ------------------------------------------------------------------ #

    def to_state(self) -> dict[str, Any]:
        """Serialise the pipeline mid-stream (shards + dealing cursor).

        Synchronises first, so the envelope always holds the shards'
        current states whichever executor ran them.  Checkpoints are
        chunk-aligned: call between :meth:`submit`/:meth:`extend` calls.
        """
        self.sync()
        self._materialize()
        return {
            "spec": self._spec.to_state(),
            "batch_size": self._batch_size,
            "next_shard": self._next_shard,
            "points_seen": self._points_seen,
            "coordinator": self._coordinator.to_state(),
        }

    @classmethod
    def from_state(cls, state: dict[str, Any]) -> "BatchPipeline":
        """Restore a pipeline from :meth:`to_state` output.

        The restored pipeline continues dealing exactly where the
        original stopped (same shard cursor, same shard states), so a
        resumed run is fingerprint-identical to an uninterrupted one.
        """
        from repro.api.registry import spec_from_state

        pipeline = cls.__new__(cls)
        pipeline._spec = spec_from_state(state["spec"])
        pipeline._batch_size = state["batch_size"]
        pipeline._next_shard = state["next_shard"]
        pipeline._points_seen = state["points_seen"]
        pipeline._coordinator = DistributedRobustSampler.from_state(
            state["coordinator"]
        )
        pipeline._executor = None  # restarted lazily on the next submit
        pipeline._dirty = False
        pipeline._shipped = {}
        return pipeline

    # ------------------------------------------------------------------ #
    # backend checkpoints (crash-safe resume, see repro.engine.resumable)
    # ------------------------------------------------------------------ #

    def checkpoint_to(
        self, backend: Any, key: str, *, cas_version: int | None = None
    ) -> int:
        """Checkpoint this pipeline into a state backend; returns the version.

        Synchronises first (via :meth:`to_state`), so the committed
        envelope is chunk-aligned whichever executor ran the shards.
        With ``cas_version`` the commit is an atomic
        :meth:`~repro.backends.StateBackend.compare_and_swap`: a
        concurrent checkpointer of the same key makes this raise
        :class:`~repro.errors.CASConflictError` with **nothing
        applied** - two racing writers can never interleave a torn
        merge of shard states, one simply loses whole.
        """
        from repro.persist import store_summary

        return store_summary(backend, key, self, cas_version=cas_version)

    @classmethod
    def resume_from(
        cls, backend: Any, key: str
    ) -> tuple["BatchPipeline | None", int]:
        """(pipeline, version) from a backend checkpoint, or ``(None, 0)``.

        The version is what the next :meth:`checkpoint_to` should pass
        as ``cas_version`` so the resumed run keeps exclusive ownership
        of the key.
        """
        from repro.errors import CheckpointError
        from repro.persist import loads_summary

        found = backend.get_versioned(key)
        if found is None:
            return None, 0
        data, version = found
        pipeline = loads_summary(data)
        if not isinstance(pipeline, cls):
            raise CheckpointError(
                f"backend key {key!r} holds a "
                f"{getattr(type(pipeline), 'summary_key', '?')!r} "
                "checkpoint, not a batch-pipeline"
            )
        return pipeline, version
