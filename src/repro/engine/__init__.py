"""Batched ingestion engine: high-throughput, state-equivalent ingestion.

The seed reproduction fed every sampler one point at a time through
Python-level dispatch.  This package - together with the
``process_many`` overrides in :mod:`repro.core` and the batch hash
evaluators in :mod:`repro.hashing` - provides the batched hot path that
the ROADMAP's "heavy traffic" north star needs, plus the tooling that
keeps it honest.

The batch API contract
----------------------

Every sampler derives from :class:`repro.core.base.StreamSampler` and
obeys one invariant, *state equivalence*:

    ``sampler.process_many(batch)`` leaves the sampler in a state
    identical to ``for p in batch: sampler.insert(p)`` - same candidate
    records, same rates and counters, same lazy-eviction heaps, same RNG
    states - for every batch size, including singletons, uneven tails
    and empty batches.

Batching is therefore an implementation detail of throughput: no caller
can observe whether a stream arrived in batches or point by point.
:func:`repro.engine.equivalence.state_fingerprint` reifies "state" as a
comparable value; ``tests/test_engine.py`` is the deterministic
differential suite and ``tests/test_property_equivalence.py`` the
property-based one (Hypothesis-driven adversarial streams and batch
layouts against every registry key, shrinking on failure) that enforce
the contract, and ``benchmarks/bench_throughput.py`` measures what it
buys and gates the committed speedup floors (results tracked in
``BENCH_sliding.json``).

Where the speed comes from
--------------------------

* the vectorised geometry kernel layer
  (:mod:`repro.geometry.kernels` + the per-chunk
  :class:`~repro.core.chunk_geometry.ChunkGeometry` precompute): a
  whole chunk's cell coordinates, cell ids and memo-aware cell hashes
  in a few numpy passes, bit-identical to the scalar geometry;
  adjacency enumeration switches to vectorised block tables when a
  chunk proves founding-heavy; pipelines build ONE geometry per dealt
  chunk (:func:`repro.engine.batching.chunk_geometry_for`) and hand it
  to the owning shard;
* the sampled-cell ignore probes: a point whose group is untracked at
  the current rate needs no ``adj(p)`` enumeration unless it lies
  within ``alpha`` of a *sampled* nearby cell - memoised conservative
  neighbourhoods at dim <= 2 (``conservative_neighborhood``), the
  kernel layer's conservative probe above (usable at any dimension,
  verdicts rate-nested across mid-chunk doublings);
* the config-level hash memos (``cell_hash_memo`` scalar,
  ``cell_id_hash_memo`` vectorised): near-duplicate streams revisit
  the same grid cells constantly, so cell hashes are computed once per
  cell, not once per point - shared by every level of a sliding-window
  hierarchy and every shard of a pipeline;
* batch Horner / batch splitmix64 evaluation
  (:meth:`repro.hashing.kwise.KWiseHash.many`,
  :meth:`repro.hashing.mix.SplitMix64.many`, and their array twins
  :meth:`~repro.hashing.mix.SplitMix64.many_chunk` /
  :meth:`~repro.hashing.sampling.SamplingHash.value_chunk`).

Extending the engine to a new sampler
-------------------------------------

The full step-by-step guide - protocol, spec, registry key, and every
test matrix to join - is ``docs/ADDING_A_SUMMARY.md``; in brief:

1. Derive from :class:`~repro.core.base.StreamSampler`; implementing
   :meth:`~repro.core.base.StreamSampler.insert` alone already gives you
   correct (looping) ``process_many`` and chunked ``extend``.
2. If the sampler is hot, override ``process_many``.  Replicate the
   insert path *operation-for-operation* (same mutations, same RNG
   draws, same error points); hoist attribute lookups into locals and
   route repeated geometry through ``config.cell_hash_memo`` /
   ``config.conservative_neighborhood``.  Defer pure counters (e.g.
   ``_ThresholdPolicy.observe``) only to points where nothing reads
   them.
3. Keep the *incremental-space contract*: ``space_words()`` must be
   served from counters maintained on every mutation (record add /
   remove / ``last``-point relink - see
   :meth:`repro.core.base.CandidateStore.relink_last` and the sliding
   hierarchy's per-level word counters), never by walking the record
   set, and the sampler must expose ``recount_space_words()`` as the
   from-scratch oracle.  ``tests/test_property_equivalence.py`` asserts
   counter == recount after every operation; the counters are also part
   of the state fingerprint, so drift fails the differential suites.
4. Teach :func:`repro.engine.equivalence.state_fingerprint` about any
   new state, and add the sampler to the differential matrix in
   ``tests/test_engine.py`` **and** to the property matrix in
   ``tests/test_property_equivalence.py`` (its registry-coverage test
   fails until the key is added).  A fingerprint mismatch on any seeded
   stream is a contract violation, not a flaky test.

Scale-out
---------

:class:`~repro.engine.pipeline.BatchPipeline` deals chunks round-robin
across the shards of a
:class:`~repro.distributed.coordinator.DistributedRobustSampler` (all
sharing one config) and answers queries from the sketch-sized merge;
``tests/test_distributed.py`` checks the merge against a single sampler
fed the interleaved union stream.  *Where* shard work runs is pluggable
(:mod:`repro.engine.executors`): the ``serial`` executor ingests chunks
inline, ``thread`` fans them out over worker threads, ``process``
ships them to worker processes holding shard replicas - the wall-clock
scaling path - and ``remote`` enqueues them into a shared
:class:`~repro.backends.StateBackend` served by lease-holding workers
on any machine (:mod:`repro.engine.remote_worker`, chaos-tested by
``tests/test_remote_executor.py``), with finished shard states folded
into the coordinator's running union merge as they arrive
(:meth:`~repro.distributed.coordinator.DistributedRobustSampler.streaming_merge`).
Executor choice is never observable in state
(``tests/test_executors.py``).  The pipeline is part of the unified
API (:mod:`repro.api`, key ``"batch-pipeline"``): shards are
spec-constructed, the shard merge goes through the Summary protocol's
:meth:`~repro.core.infinite_window.RobustL0SamplerIW.merge`, and the
whole pipeline checkpoints mid-stream via ``to_state``/``from_state``
(resumed runs are fingerprint-identical when the interruption falls on
a chunk boundary - checkpoint between ``submit``/``extend`` calls; a
parallel pipeline synchronises its workers first).
:func:`repro.engine.resumable.run_resumable` automates this against a
pluggable :class:`repro.backends.StateBackend`: chunk-aligned
checkpoints committed under atomic compare-and-swap, so a killed run
resumes fingerprint-identical and two racing runs can never interleave
a torn checkpoint (``tests/test_resumable.py``).
"""

from repro.core.base import DEFAULT_BATCH_SIZE, StreamSampler
from repro.engine.batching import (
    ChunkGeometry,
    chunk_geometry_for,
    chunked,
    compute_chunk_geometry,
    set_vectorized_geometry,
    vectorized_geometry_enabled,
)
from repro.engine.equivalence import state_fingerprint
from repro.engine.executors import (
    EXECUTOR_NAMES,
    TRANSPORT_NAMES,
    ProcessShardExecutor,
    RemoteShardExecutor,
    SerialShardExecutor,
    ShardExecutor,
    ThreadShardExecutor,
    make_executor,
)
from repro.engine.pipeline import BatchPipeline
from repro.engine.remote_worker import run_worker
from repro.engine.resumable import run_resumable

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "StreamSampler",
    "BatchPipeline",
    "chunked",
    "ChunkGeometry",
    "chunk_geometry_for",
    "compute_chunk_geometry",
    "set_vectorized_geometry",
    "vectorized_geometry_enabled",
    "state_fingerprint",
    "EXECUTOR_NAMES",
    "TRANSPORT_NAMES",
    "ShardExecutor",
    "SerialShardExecutor",
    "ThreadShardExecutor",
    "ProcessShardExecutor",
    "RemoteShardExecutor",
    "make_executor",
    "run_resumable",
    "run_worker",
]
