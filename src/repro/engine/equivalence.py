"""Canonical state fingerprints for the batch/per-point equivalence contract.

The batched ingestion engine promises that ``process_many(batch)`` leaves a
sampler in a state identical to inserting the batch point by point (see
:class:`repro.core.base.StreamSampler`).  "State" here means every quantity
that can influence future decisions or queries:

* all candidate records (representative, cell, hashes, accept flag, last
  point, counts, reservoir members),
* rates, arrival counters, threshold-policy observations, peak space,
* the sliding samplers' lazy eviction heaps *verbatim* - including stale
  entries and tiebreak counters, because the batch paths replicate the
  eviction loop operation-for-operation,
* the member-tracking RNG states (so future random draws coincide too).

:func:`state_fingerprint` maps a sampler to a hashable tree of plain
Python values capturing exactly that; two samplers with equal fingerprints
are behaviourally indistinguishable on any future input.  The differential
suite (``tests/test_engine.py``) asserts fingerprint equality between
batch and per-point ingestion for every sampler and window flavour.
"""

from __future__ import annotations

from typing import Any

from repro.core.base import CandidateRecord, CandidateStore, _ThresholdPolicy
from repro.core.f0_infinite import RobustF0EstimatorIW
from repro.core.f0_sliding import RobustF0EstimatorSW
from repro.core.fixed_rate import FixedRateSlidingSampler
from repro.core.heavy_hitters import RobustHeavyHitters
from repro.core.infinite_window import RobustL0SamplerIW
from repro.core.ksample import KDistinctSampler
from repro.core.reservoir import ReservoirMember, WindowReservoir
from repro.core.sliding_window import RobustL0SamplerSW
from repro.distributed.coordinator import DistributedRobustSampler
from repro.engine.pipeline import BatchPipeline
from repro.errors import ParameterError
from repro.streams.point import StreamPoint


def _point(point: StreamPoint | None) -> tuple | None:
    if point is None:
        return None
    return (point.vector, point.index, point.time)


def _record(record: CandidateRecord) -> tuple:
    return (
        _point(record.representative),
        record.cell,
        record.cell_hash,
        record.adj_hashes,
        record.accepted,
        _point(record.last),
        record.count,
        _point(record.member),
        record.level,
    )


def _store(store: CandidateStore) -> tuple:
    records = tuple(
        _record(record)
        for record in sorted(
            store.records(), key=lambda r: r.representative.index
        )
    )
    # The incremental space counters are part of the contract: a batch
    # path that drifts from the per-point accounting (or a resume that
    # fails to rebuild it) is a fingerprint mismatch, not just a wrong
    # space report.
    return (
        records,
        store.accepted_count,
        store.space_words(track_members=False),
        store.space_words(track_members=True),
    )


def _policy(policy: _ThresholdPolicy) -> tuple:
    return (
        policy.kappa0,
        policy.expected_stream_length,
        policy.minimum,
        policy.fixed,
        policy.seen,
    )


def _window_reservoir(reservoir: WindowReservoir) -> tuple:
    return tuple(
        (priority, _point(point)) for priority, point in reservoir._entries
    )


def _member_reservoir(reservoir: ReservoirMember) -> tuple:
    return (reservoir.count, _point(reservoir._member))


def _infinite(sampler: RobustL0SamplerIW) -> tuple:
    return (
        "RobustL0SamplerIW",
        sampler.rate_denominator,
        sampler.points_seen,
        _policy(sampler._policy),
        sampler._track_members,
        sampler.peak_space_words,
        _store(sampler._store),
        sampler._member_rng.getstate() if sampler._track_members else None,
    )


def _fixed_rate(sampler: FixedRateSlidingSampler) -> tuple:
    heap = tuple(
        (key, tiebreak, record.representative.index, _point(last))
        for key, tiebreak, record, last in sampler._heap
    )
    reservoirs = tuple(
        (key, _window_reservoir(sampler._reservoirs[key]))
        for key in sorted(sampler._reservoirs)
    )
    return (
        "FixedRateSlidingSampler",
        sampler.rate_denominator,
        sampler._track_members,
        _store(sampler._store),
        heap,
        reservoirs,
        sampler._member_rng.getstate() if sampler._track_members else None,
    )


def _sliding(sampler: RobustL0SamplerSW) -> tuple:
    heap = tuple(
        (key, tiebreak, record.representative.index, _point(last))
        for key, tiebreak, record, last in sampler._heap
    )
    return (
        "RobustL0SamplerSW",
        sampler.points_seen,
        _policy(sampler._policy),
        _point(sampler._latest),
        sampler.peak_space_words,
        _store(sampler._store),
        tuple(sampler._level_accepted),
        tuple(sampler._level_words),
        heap,
    )


def state_fingerprint(sampler: Any) -> tuple:
    """A hashable tree capturing a sampler's decision-relevant state.

    Two samplers with equal fingerprints behave identically on every
    future insertion and query.  Supports every sampler of the library
    (including the distributed shard sampler, which subclasses the
    infinite-window one) plus the standalone reservoirs.
    """
    if isinstance(sampler, RobustL0SamplerIW):  # incl. ShardSampler
        return _infinite(sampler)
    if isinstance(sampler, FixedRateSlidingSampler):
        return _fixed_rate(sampler)
    if isinstance(sampler, RobustL0SamplerSW):
        return _sliding(sampler)
    if isinstance(sampler, KDistinctSampler):
        return (
            "KDistinctSampler",
            sampler.k,
            sampler.replacement,
            tuple(state_fingerprint(s) for s in sampler._samplers),
        )
    if isinstance(sampler, RobustF0EstimatorIW):
        return (
            "RobustF0EstimatorIW",
            tuple(state_fingerprint(c) for c in sampler._copies),
        )
    if isinstance(sampler, RobustF0EstimatorSW):
        return (
            "RobustF0EstimatorSW",
            tuple(state_fingerprint(c) for c in sampler._copies),
        )
    if isinstance(sampler, RobustHeavyHitters):
        counters = tuple(
            (
                key,
                _point(counter.representative),
                counter.cell_hash,
                counter.adj_hashes,
                counter.count,
                counter.error,
            )
            for key, counter in sorted(sampler._counters.items())
        )
        return ("RobustHeavyHitters", sampler.points_seen, counters)
    if isinstance(sampler, WindowReservoir):
        return ("WindowReservoir", _window_reservoir(sampler))
    if isinstance(sampler, ReservoirMember):
        return ("ReservoirMember", _member_reservoir(sampler))
    if isinstance(sampler, BatchPipeline):
        return (
            "BatchPipeline",
            sampler.batch_size,
            sampler._next_shard,
            sampler.points_seen,
            state_fingerprint(sampler.coordinator),
        )
    if isinstance(sampler, DistributedRobustSampler):
        return (
            "DistributedRobustSampler",
            tuple(
                state_fingerprint(sampler.shard(i))
                for i in range(sampler.num_shards)
            ),
        )
    # Any other Summary-protocol implementor (the noiseless baselines):
    # its to_state() is by contract a complete capture of its
    # decision-relevant state, so the frozen state tree is a fingerprint.
    key = getattr(type(sampler), "summary_key", None)
    to_state = getattr(sampler, "to_state", None)
    if key is not None and to_state is not None:
        return (key, _freeze(to_state()))
    raise ParameterError(
        f"no fingerprint defined for {type(sampler).__name__}"
    )


def _freeze(value: Any) -> Any:
    """Recursively convert a JSON state tree into a hashable value."""
    if isinstance(value, dict):
        return tuple(
            (key, _freeze(value[key])) for key in sorted(value)
        )
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(item) for item in value)
    return value
