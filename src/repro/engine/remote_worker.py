"""Standalone remote pipeline worker: ``python -m repro.engine.remote_worker``.

The worker side of the remote executor (see
:class:`repro.engine.executors.RemoteShardExecutor`).  A worker holds no
socket to the submitter - everything flows through a shared
:class:`~repro.backends.base.StateBackend` (a directory both sides
mount, or a Redis both sides reach), so a worker can run on any
machine:

1. **Adopt**: claim a shard's lease by backend CAS
   (:func:`repro.backends.lease.acquire_lease` - create-only for fresh
   shards, stealing leases whose heartbeat went stale because their
   holder died).  Adoption reads the shard's committed
   ``(consumed_seq, state)`` entry and rebuilds a live replica from
   the protocol state, so a re-adopted shard resumes exactly where the
   last *committed* chunk left it.
2. **Pump**: fold the shard's chunks strictly in sequence order,
   committing ``(seq + 1, replica.to_state())`` after every chunk via
   the state entry's **CAS fence**.  A worker that lost its lease (or
   was SIGSTOPped across a steal) gets
   :class:`~repro.errors.CASConflictError` on its next commit and
   abandons the shard with *nothing applied* - the commit is
   all-or-nothing, so a resurrected stale worker can never tear a
   merge.
3. **Heartbeat**: every commit (and every idle pass) renews the lease
   beat; a dead or wedged worker stops beating and its shards are
   re-adopted after the ttl.

Failures while folding a chunk (a poisoned point) are reported through
the queue's error key - the submitter's drain raises
:class:`~repro.errors.ExecutorError`, same as the thread and process
executors - and the shard is held (heartbeating, not folding) so the
failure stays sticky instead of being retried by the next adopter.

Chaos-tested by ``tests/test_remote_executor.py``: SIGKILL/SIGSTOP
mid-stream, lease steals, stale-worker resurrection.
"""

from __future__ import annotations

import argparse
import json
import os
import socket
import sys
import time
import traceback
from dataclasses import dataclass, field
from typing import Any

from repro.backends.base import StateBackend, make_backend
from repro.backends.lease import (
    Lease,
    acquire_lease,
    release_lease,
    renew_lease,
)
from repro.engine.queue import RemoteQueue, decode_chunk
from repro.errors import CASConflictError

__all__ = ["main", "run_worker"]


@dataclass
class _Owned:
    """A shard this worker currently holds: replica + fence versions."""

    shard: int
    replica: Any
    seq: int  #: next chunk sequence to fold
    state_version: int  #: backend version of the last committed state
    lease: Lease
    poisoned: bool = field(default=False)


def _default_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}"


def _renew(
    queue: RemoteQueue,
    owned: dict[int, _Owned],
    entry: _Owned,
    stats: dict[str, int],
) -> bool:
    """Heartbeat ``entry``; drop it (returning False) if the lease is lost."""
    try:
        entry.lease = renew_lease(queue.backend, entry.lease)
        return True
    except CASConflictError:
        owned.pop(entry.shard, None)
        stats["leases_lost"] += 1
        return False


def _try_adopt(
    queue: RemoteQueue,
    shard: int,
    worker_id: str,
    lease_ttl: float,
    config: Any,
    stats: dict[str, int],
) -> _Owned | None:
    from repro.distributed.coordinator import ShardSampler

    lease = acquire_lease(
        queue.backend, queue.lease_key(shard), worker_id, ttl=lease_ttl
    )
    if lease is None:
        return None
    found = queue.read_state(shard)
    if found is None:  # pragma: no cover - meta implies states exist
        return None
    seq, state, version = found
    stats["adoptions"] += 1
    return _Owned(
        shard=shard,
        replica=ShardSampler.from_state(state, config=config),
        seq=seq,
        state_version=version,
        lease=lease,
    )


def _pump(
    queue: RemoteQueue,
    owned: dict[int, _Owned],
    entry: _Owned,
    worker_id: str,
    lease_ttl: float,
    config: Any,
    stats: dict[str, int],
) -> bool:
    """Fold every available chunk of one owned shard; returns progress."""
    if entry.poisoned:
        # Hold the shard (sticky failure) but keep beating so nobody
        # re-adopts it and retries the poisoned chunk.
        _renew(queue, owned, entry, stats)
        return False
    progressed = False
    while True:
        payload = queue.get_chunk(entry.shard, entry.seq)
        if payload is None:
            break
        try:
            kind, decoded = decode_chunk(payload)
            if kind == "array":
                from repro.core.chunk_geometry import geometry_from_array

                vectors, geometry = geometry_from_array(config, decoded)
                entry.replica.process_many(vectors, geometry=geometry)
            else:
                entry.replica.process_many(decoded)
        except BaseException:
            stats["errors"] += 1
            queue.report_error(worker_id, traceback.format_exc())
            entry.poisoned = True
            return progressed
        consumed = entry.seq + 1
        try:
            # The CAS fence: all-or-nothing against any re-adopter.
            entry.state_version = queue.publish_state(
                entry.shard,
                entry.state_version,
                consumed,
                entry.replica.to_state(),
            )
        except CASConflictError:
            # Fenced out (the lease was stolen while we were stopped or
            # slow): the shard's committed state is someone else's now
            # and nothing of ours landed.  Abandon the replica wholesale.
            owned.pop(entry.shard, None)
            stats["cas_rejections"] += 1
            stats["leases_lost"] += 1
            return progressed
        entry.seq = consumed
        # A committed chunk is dead weight: the state entry supersedes
        # it (re-adoption resumes from consumed_seq, never replays it).
        queue.delete_chunk(entry.shard, consumed - 1)
        stats["chunks"] += 1
        progressed = True
        if not _renew(queue, owned, entry, stats):
            return progressed
    # Idle on this shard.  If the committed state moved without us, we
    # were fenced out between polls - drop the stale replica; otherwise
    # keep the heartbeat fresh.
    found = queue.read_state(entry.shard)
    if found is not None and found[2] != entry.state_version:
        owned.pop(entry.shard, None)
        stats["leases_lost"] += 1
        return progressed
    if time.time() - entry.lease.beat > lease_ttl / 3.0:
        _renew(queue, owned, entry, stats)
    return progressed


def run_worker(
    backend: StateBackend,
    queue_key: str,
    *,
    worker_id: str | None = None,
    lease_ttl: float = 5.0,
    poll_interval: float = 0.05,
    stop_event: Any | None = None,
    max_idle: float | None = None,
) -> dict[str, int]:
    """Serve a queue until stopped; returns this worker's counters.

    Runs in a thread for the executor's built-in local workers
    (``stop_event`` set on close) and as the whole process for
    ``python -m repro.engine.remote_worker``.  ``max_idle`` bounds how
    long the worker lingers with no queue, no work and no stop request
    (``None``: forever - daemon mode, serving successive epochs).
    """
    from repro.core import serialize

    worker_id = worker_id or _default_worker_id()
    stats = {
        "chunks": 0,
        "adoptions": 0,
        "leases_lost": 0,
        "cas_rejections": 0,
        "errors": 0,
    }
    owned: dict[int, _Owned] = {}
    queue: RemoteQueue | None = None
    config: Any = None
    num_shards = 0
    idle_start = time.monotonic()

    def stopping() -> bool:
        return stop_event is not None and stop_event.is_set()

    try:
        while not stopping():
            latest = RemoteQueue.open(backend, queue_key)
            if latest is None or (
                queue is not None and latest.epoch != queue.epoch
            ):
                owned.clear()
                queue, config = None, None
            if latest is None:
                if max_idle is not None and (
                    time.monotonic() - idle_start > max_idle
                ):
                    break
                time.sleep(poll_interval)
                continue
            if queue is None:
                queue = latest
            if config is None:
                meta = queue.meta()
                if meta is None:
                    # Epoch not seeded yet - or purged by its executor's
                    # close; either way there is nothing to adopt.
                    if max_idle is not None and (
                        time.monotonic() - idle_start > max_idle
                    ):
                        break
                    time.sleep(poll_interval)
                    continue
                config = serialize.config_from_state(meta["config"])
                num_shards = int(meta["num_shards"])
            progressed = False
            for shard in range(num_shards):
                if stopping():
                    break
                entry = owned.get(shard)
                if entry is None:
                    entry = _try_adopt(
                        queue, shard, worker_id, lease_ttl, config, stats
                    )
                    if entry is None:
                        continue
                    owned[shard] = entry
                progressed = (
                    _pump(
                        queue,
                        owned,
                        entry,
                        worker_id,
                        lease_ttl,
                        config,
                        stats,
                    )
                    or progressed
                )
            if progressed:
                idle_start = time.monotonic()
                continue
            if queue.stop_requested():
                break
            if queue.meta() is None:
                # The epoch dissolved (executor closed and purged it).
                owned.clear()
                queue, config = None, None
                continue
            if max_idle is not None and (
                time.monotonic() - idle_start > max_idle
            ):
                break
            time.sleep(poll_interval)
    finally:
        # Hand shards back marked instantly stale, so a successor
        # adopts them without waiting out the ttl.
        for entry in list(owned.values()):
            release_lease(backend, entry.lease)
        owned.clear()
    return stats


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.engine.remote_worker",
        description=(
            "Serve a remote pipeline work queue: lease shards through "
            "backend CAS, fold their chunks, commit states through the "
            "CAS fence.  Point it at the same backend and --queue-key "
            "the submitting pipeline uses."
        ),
    )
    parser.add_argument(
        "--backend",
        required=True,
        choices=["file", "redis"],
        help="shared backend flavour (memory is in-process only)",
    )
    parser.add_argument(
        "--backend-path", default=None, help="file backend directory"
    )
    parser.add_argument(
        "--backend-url", default=None, help="redis backend URL"
    )
    parser.add_argument(
        "--queue-key", required=True, help="queue namespace to serve"
    )
    parser.add_argument(
        "--worker-id",
        default=None,
        help="lease identity (default: <hostname>-<pid>)",
    )
    parser.add_argument(
        "--lease-ttl",
        type=float,
        default=5.0,
        help="seconds without a heartbeat before a shard is stolen",
    )
    parser.add_argument(
        "--poll-interval",
        type=float,
        default=0.05,
        help="idle polling period in seconds",
    )
    parser.add_argument(
        "--max-idle",
        type=float,
        default=None,
        help="exit after this many idle seconds (default: serve forever)",
    )
    args = parser.parse_args(argv)
    try:
        backend = make_backend(
            args.backend, path=args.backend_path, url=args.backend_url
        )
    except Exception as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    try:
        stats = run_worker(
            backend,
            args.queue_key,
            worker_id=args.worker_id,
            lease_ttl=args.lease_ttl,
            poll_interval=args.poll_interval,
            max_idle=args.max_idle,
        )
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        return 130
    finally:
        backend.close()
    print(json.dumps(stats, sort_keys=True))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
