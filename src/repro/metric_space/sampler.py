"""Algorithm 1 generalised to metric spaces with LSH (concluding remark).

The Euclidean sampler's grid gives two primitives: ``cell(p)`` (a key
shared by all points of a group, subsampled at rate ``1/R``) and
``adj(p)`` (nearby keys that let the reject set veto double-counting).
With LSH the primitives become probabilistic:

* the *primary band key* of a group's representative plays the role of
  ``cell(p)``: the group is **accepted** iff ``h_R(primary) = 0``;
* the remaining band keys play the role of ``adj(p)``: the group is
  **rejected** (tracked but not sampleable) iff some other band key is
  subsampled - keeping the representative findable so later points attach
  to it rather than founding a duplicate;
* membership detection is a bucket probe over all band keys followed by
  an exact distance confirmation.

The relaxation relative to the Euclidean case: a later near-duplicate
finds its group's representative only with the banding's collision
probability (choose bands/rows via
:func:`repro.metric_space.lsh.design_banding`; e.g. recall 0.95+), so a
small fraction of groups may be tracked more than once.  The sampling
distribution remains uniform up to that fraction; the tests quantify it.
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, TypeVar

from repro.core.base import DEFAULT_KAPPA0, _ThresholdPolicy
from repro.errors import EmptySampleError, ParameterError
from repro.hashing.sampling import SamplingHash
from repro.metric_space.lsh import BandedLSH

Item = TypeVar("Item")


class _LSHRecord:
    """One tracked group in the LSH sampler."""

    __slots__ = ("representative", "key_hashes", "accepted", "count", "member")

    def __init__(self, representative, key_hashes, accepted):
        self.representative = representative
        self.key_hashes = key_hashes
        self.accepted = accepted
        self.count = 1
        self.member = representative

    @property
    def primary_hash(self) -> int:
        return self.key_hashes[0]


class RobustLSHSampler:
    """Robust distinct sampler over any LSH-equipped metric space.

    Parameters
    ----------
    lsh:
        The banded LSH structure producing per-item keys.
    metric:
        Exact distance function (normalised to [0, 1]) used to confirm
        candidate membership.
    alpha:
        Near-duplicate threshold under ``metric``.
    kappa0 / expected_stream_length:
        Accept-set threshold policy, as in the Euclidean sampler.
    seed:
        Seed for the subsampling hash and the member reservoir.

    Examples
    --------
    >>> import random
    >>> from repro.metric_space.lsh import BandedLSH, MinHash
    >>> rng = random.Random(0)
    >>> lsh = BandedLSH(lambda: MinHash(rng=rng), bands=8, rows_per_band=2)
    >>> from repro.metric_space.metrics import jaccard_distance
    >>> sampler = RobustLSHSampler(lsh, jaccard_distance, alpha=0.3, seed=1)
    >>> sampler.insert(frozenset({1, 2, 3, 4}))
    >>> sampler.insert(frozenset({1, 2, 3, 5}))   # near-duplicate
    >>> sampler.insert(frozenset({10, 11, 12}))   # distinct element
    >>> sampler.num_candidate_groups
    2
    """

    def __init__(
        self,
        lsh: BandedLSH,
        metric: Callable[[Item, Item], float],
        alpha: float,
        *,
        kappa0: float = DEFAULT_KAPPA0,
        expected_stream_length: int | None = None,
        seed: int | None = None,
    ) -> None:
        if not 0 < alpha <= 1:
            raise ParameterError(
                f"alpha must be in (0, 1] for normalised metrics, got {alpha}"
            )
        self._lsh = lsh
        self._metric = metric
        self._alpha = alpha
        rng = random.Random(seed)
        self._hash = SamplingHash(seed=rng.randrange(2**63))
        self._member_rng = random.Random(rng.randrange(2**63))
        self._policy = _ThresholdPolicy(kappa0, expected_stream_length)
        self._rate_denominator = 1
        self._records: dict[int, _LSHRecord] = {}
        self._buckets: dict[int, list[_LSHRecord]] = {}
        self._next_id = 0
        self._count = 0

    # ------------------------------------------------------------------ #
    # properties
    # ------------------------------------------------------------------ #

    @property
    def alpha(self) -> float:
        """Near-duplicate threshold."""
        return self._alpha

    @property
    def rate_denominator(self) -> int:
        """Current ``R``: band keys subsampled with probability ``1/R``."""
        return self._rate_denominator

    @property
    def points_seen(self) -> int:
        """Number of items inserted."""
        return self._count

    @property
    def accept_size(self) -> int:
        """``|S_acc|``."""
        return sum(1 for r in self._records.values() if r.accepted)

    @property
    def num_candidate_groups(self) -> int:
        """Number of tracked groups."""
        return len(self._records)

    # ------------------------------------------------------------------ #
    # streaming
    # ------------------------------------------------------------------ #

    def _find(self, item, key_hashes) -> _LSHRecord | None:
        seen: set[int] = set()
        for value in key_hashes:
            for record in self._buckets.get(value, ()):
                marker = id(record)
                if marker in seen:
                    continue
                seen.add(marker)
                if self._metric(record.representative, item) <= self._alpha:
                    return record
        return None

    def _add(self, record: _LSHRecord) -> None:
        self._next_id += 1
        self._records[self._next_id] = record
        for value in set(record.key_hashes):
            self._buckets.setdefault(value, []).append(record)

    def _remove(self, key: int, record: _LSHRecord) -> None:
        del self._records[key]
        for value in set(record.key_hashes):
            bucket = self._buckets[value]
            bucket.remove(record)
            if not bucket:
                del self._buckets[value]

    def insert(self, item: Item) -> None:
        """Process one arriving item."""
        self._count += 1
        self._policy.observe()
        keys = self._lsh.keys(item)
        key_hashes = tuple(self._hash.value(k) for k in keys)

        existing = self._find(item, key_hashes)
        if existing is not None:
            existing.count += 1
            if self._member_rng.random() < 1.0 / existing.count:
                existing.member = item
            return

        mask = self._rate_denominator - 1
        if key_hashes[0] & mask == 0:
            accepted = True
        elif any(value & mask == 0 for value in key_hashes[1:]):
            accepted = False
        else:
            return  # ignored at the current rate

        self._add(_LSHRecord(item, key_hashes, accepted))
        while self.accept_size > self._policy.threshold():
            self._rate_denominator *= 2
            self._resample()

    def extend(self, items: Iterable[Item]) -> None:
        """Insert a sequence of items."""
        for item in items:
            self.insert(item)

    def _resample(self) -> None:
        mask = self._rate_denominator - 1
        for key, record in list(self._records.items()):
            if record.primary_hash & mask == 0:
                record.accepted = True
            elif any(value & mask == 0 for value in record.key_hashes[1:]):
                record.accepted = False
            else:
                self._remove(key, record)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    def sample(self, rng: random.Random | None = None) -> Item:
        """A uniformly random accepted group's representative."""
        accepted = [r for r in self._records.values() if r.accepted]
        if not accepted:
            raise EmptySampleError("accept set is empty")
        rng = rng if rng is not None else random.Random()
        return rng.choice(accepted).representative

    def sample_member(self, rng: random.Random | None = None) -> Item:
        """A reservoir-uniform member of a random accepted group."""
        accepted = [r for r in self._records.values() if r.accepted]
        if not accepted:
            raise EmptySampleError("accept set is empty")
        rng = rng if rng is not None else random.Random()
        return rng.choice(accepted).member

    def estimate_f0(self) -> float:
        """``|S_acc| * R`` - the Section 5 estimator, LSH flavour."""
        return float(self.accept_size * self._rate_denominator)

    def space_words(self) -> int:
        """Approximate footprint: keys per record plus bookkeeping.

        Representative items are opaque; they are charged one word each
        (callers with large items should account separately).
        """
        words = 4
        for record in self._records.values():
            words += len(record.key_hashes) + 4
        return words

    def theoretical_recall(self) -> float:
        """Collision probability of the banding at distance ``alpha``."""
        return self._lsh.collision_probability(self._alpha)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RobustLSHSampler(alpha={self._alpha}, R={self._rate_denominator}, "
            f"groups={len(self._records)})"
        )
