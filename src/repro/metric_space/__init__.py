"""Robust distinct sampling in general metric spaces via LSH.

The paper's concluding remark: "the random grid we have used ... is a
particular locality-sensitive hash function, and it is possible to
generalize our algorithms to general metric spaces that are equipped with
efficient locality-sensitive hash functions.  We leave this generalization
as a future work."  This subpackage implements that generalisation:

* :mod:`repro.metric_space.metrics` - distance functions beyond Euclidean
  (cosine/angular, Jaccard over sets, Hamming over bit vectors);
* :mod:`repro.metric_space.lsh` - the matching LSH families (random
  hyperplanes / SimHash, MinHash, bit sampling), composed into banded
  keys that play the role of grid cells;
* :mod:`repro.metric_space.sampler` - :class:`RobustLSHSampler`, the
  Algorithm 1 skeleton with LSH buckets instead of grid cells.

The guarantee is necessarily weaker than the Euclidean case: an LSH
bucket equals a grid cell only probabilistically, so near-duplicate
detection combines the bucket lookup with an exact distance confirmation,
and the "adjacent cells" role is played by multiple independent bands.
"""

from repro.metric_space.lsh import (
    BandedLSH,
    BitSamplingHash,
    MinHash,
    RandomHyperplaneHash,
)
from repro.metric_space.metrics import (
    angular_distance,
    hamming_distance,
    jaccard_distance,
)
from repro.metric_space.sampler import RobustLSHSampler

__all__ = [
    "RobustLSHSampler",
    "BandedLSH",
    "RandomHyperplaneHash",
    "MinHash",
    "BitSamplingHash",
    "angular_distance",
    "jaccard_distance",
    "hamming_distance",
]
