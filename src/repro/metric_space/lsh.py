"""Locality-sensitive hash families and banding.

An LSH family maps an item to a small token such that near items collide
with high probability and far items with low probability.  ``BandedLSH``
concatenates ``rows_per_band`` independent family members into one band
key (AND-amplification: far collisions vanish) and keeps ``bands``
independent such keys (OR-amplification: near misses vanish).  Band keys
are the metric-space analogue of the paper's grid cells: the sampler
subsamples band keys with the same nested ``h_R`` scheme it uses for cell
identifiers.
"""

from __future__ import annotations

import math
import random
from typing import AbstractSet, Hashable, Protocol, Sequence

from repro.errors import ParameterError
from repro.hashing.mix import SplitMix64, splitmix64

_MASK64 = (1 << 64) - 1


class LSHFamily(Protocol):
    """One member of an LSH family: item -> small hashable token."""

    def token(self, item) -> Hashable:  # pragma: no cover - protocol
        ...


class RandomHyperplaneHash:
    """SimHash for angular distance: sign of a random projection.

    ``Pr[token(u) == token(v)] = 1 - angular_distance(u, v)``.
    """

    __slots__ = ("_normal",)

    def __init__(self, dim: int, *, rng: random.Random) -> None:
        if dim < 1:
            raise ParameterError(f"dim must be >= 1, got {dim}")
        self._normal = tuple(rng.gauss(0.0, 1.0) for _ in range(dim))

    def token(self, item: Sequence[float]) -> int:
        projection = sum(a * b for a, b in zip(self._normal, item))
        return 1 if projection >= 0.0 else 0


class MinHash:
    """MinHash for Jaccard distance over sets.

    ``Pr[token(a) == token(b)] = 1 - jaccard_distance(a, b)``.
    """

    __slots__ = ("_mix",)

    def __init__(self, *, rng: random.Random) -> None:
        self._mix = SplitMix64(rng.randrange(2**63))

    def token(self, item: AbstractSet[Hashable]) -> int:
        if not item:
            return -1
        return min(self._mix(hash(element) & _MASK64) for element in item)


class BitSamplingHash:
    """Bit sampling for Hamming distance: one random coordinate.

    ``Pr[token(u) == token(v)] = 1 - hamming_distance(u, v)``.
    """

    __slots__ = ("_position",)

    def __init__(self, dim: int, *, rng: random.Random) -> None:
        if dim < 1:
            raise ParameterError(f"dim must be >= 1, got {dim}")
        self._position = rng.randrange(dim)

    def token(self, item: Sequence[int]) -> int:
        return item[self._position]


class BandedLSH:
    """AND/OR-amplified LSH: ``bands`` keys of ``rows_per_band`` tokens.

    Parameters
    ----------
    family_factory:
        Zero-argument callable returning a fresh family member (closing
        over dimension/randomness as needed).
    bands:
        Number of independent band keys per item (the OR side); plays the
        role of ``adj(p)``'s size in the Euclidean sampler.
    rows_per_band:
        Tokens concatenated per band key (the AND side).
    seed:
        Seed for the key mixer (band keys are reduced to 64-bit ints).

    Examples
    --------
    >>> rng = random.Random(0)
    >>> lsh = BandedLSH(lambda: RandomHyperplaneHash(3, rng=rng),
    ...                 bands=4, rows_per_band=2, seed=1)
    >>> keys = lsh.keys((1.0, 0.0, 0.0))
    >>> len(keys)
    4
    """

    def __init__(
        self,
        family_factory,
        *,
        bands: int,
        rows_per_band: int,
        seed: int = 0,
    ) -> None:
        if bands < 1 or rows_per_band < 1:
            raise ParameterError("bands and rows_per_band must be >= 1")
        self._members = [
            [family_factory() for _ in range(rows_per_band)]
            for _ in range(bands)
        ]
        self._seed = splitmix64(seed)

    @property
    def bands(self) -> int:
        """Number of band keys per item."""
        return len(self._members)

    @property
    def rows_per_band(self) -> int:
        """Tokens per band key."""
        return len(self._members[0])

    def keys(self, item) -> tuple[int, ...]:
        """The item's band keys (64-bit, band index folded in)."""
        keys = []
        for band_index, band in enumerate(self._members):
            acc = splitmix64(self._seed ^ band_index)
            for member in band:
                acc = splitmix64(acc ^ (hash(member.token(item)) & _MASK64))
            keys.append(acc)
        return tuple(keys)

    def collision_probability(self, distance: float) -> float:
        """Probability that at least one band key collides.

        For a family with ``Pr[token collision] = 1 - distance``:
        ``1 - (1 - (1 - d)^rows)^bands``.
        """
        if not 0.0 <= distance <= 1.0:
            raise ParameterError(f"distance must be in [0, 1], got {distance}")
        per_band = (1.0 - distance) ** self.rows_per_band
        return 1.0 - (1.0 - per_band) ** self.bands


def design_banding(
    near: float, far: float, *, near_recall: float = 0.95
) -> tuple[int, int]:
    """Suggest (bands, rows_per_band) separating two distance regimes.

    Chooses the smallest ``rows`` whose far-collision probability per band
    is below 5%, then enough bands to catch near items with probability at
    least ``near_recall``.

    >>> bands, rows = design_banding(near=0.1, far=0.6)
    >>> bands >= 1 and rows >= 1
    True
    """
    if not 0 <= near < far <= 1:
        raise ParameterError("need 0 <= near < far <= 1")
    rows = 1
    while (1.0 - far) ** rows > 0.05 and rows < 64:
        rows += 1
    per_band_near = (1.0 - near) ** rows
    if per_band_near >= 1.0:
        return 1, rows
    bands = max(1, math.ceil(math.log(1 - near_recall) / math.log(1 - per_band_near)))
    return bands, rows
