"""Distance functions for non-Euclidean data.

Each metric pairs with an LSH family in :mod:`repro.metric_space.lsh`:
angular distance with random hyperplanes, Jaccard with MinHash, Hamming
with bit sampling.  All distances are normalised to [0, 1] so thresholds
compose uniformly.
"""

from __future__ import annotations

import math
from typing import AbstractSet, Hashable, Sequence

from repro.errors import DimensionMismatchError, ParameterError


def angular_distance(u: Sequence[float], v: Sequence[float]) -> float:
    """Angle between two vectors, normalised by pi (range [0, 1]).

    >>> round(angular_distance((1.0, 0.0), (0.0, 1.0)), 4)
    0.5
    >>> angular_distance((1.0, 0.0), (2.0, 0.0))
    0.0
    """
    if len(u) != len(v):
        raise DimensionMismatchError(
            f"vectors have different dimensions: {len(u)} vs {len(v)}"
        )
    dot = sum(a * b for a, b in zip(u, v))
    norm_u = math.sqrt(sum(a * a for a in u))
    norm_v = math.sqrt(sum(b * b for b in v))
    if norm_u == 0.0 or norm_v == 0.0:
        raise ParameterError("angular distance undefined for zero vectors")
    cosine = max(-1.0, min(1.0, dot / (norm_u * norm_v)))
    return math.acos(cosine) / math.pi


def jaccard_distance(a: AbstractSet[Hashable], b: AbstractSet[Hashable]) -> float:
    """``1 - |a & b| / |a | b|`` (range [0, 1]; 0 for two empty sets).

    >>> jaccard_distance({1, 2, 3}, {2, 3, 4})
    0.5
    """
    if not a and not b:
        return 0.0
    union = len(a | b)
    return 1.0 - len(a & b) / union


def hamming_distance(u: Sequence[int], v: Sequence[int]) -> float:
    """Fraction of differing positions (range [0, 1]).

    >>> hamming_distance((0, 1, 1, 0), (0, 1, 0, 0))
    0.25
    """
    if len(u) != len(v):
        raise DimensionMismatchError(
            f"bit vectors have different lengths: {len(u)} vs {len(v)}"
        )
    if not u:
        return 0.0
    return sum(1 for a, b in zip(u, v) if a != b) / len(u)
