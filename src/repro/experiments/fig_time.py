"""Figure 13: processing time per item (pTime).

The paper reports 1-3.5e-5 seconds per item (C++, Xeon E5-2667).  A pure
Python reproduction is expected to be ~2 orders of magnitude slower in
absolute terms; the *shape* to reproduce is (a) times grow with the point
dimension (Rand20 > Rand5: "manipulating vectors takes more time when d
increases") and (b) power-law variants are comparable to their uniform
counterparts.
"""

from __future__ import annotations

from repro.core.infinite_window import RobustL0SamplerIW
from repro.datasets.catalog import paper_datasets
from repro.experiments.registry import ExperimentOutput, format_table
from repro.metrics.timing import measure_processing_time, shuffled_stream_factory

PROFILES = {
    "quick": {"passes": 1, "names": ["Seeds", "Yacht"]},
    "standard": {"passes": 3, "names": None},
    "full": {"passes": 100, "names": None},
}


def run(
    *,
    profile: str = "standard",
    seed: int = 0,
    passes: int | None = None,
    names: list[str] | None = None,
) -> ExperimentOutput:
    """Reproduce Figure 13 (per-item processing time)."""
    settings = PROFILES[profile]
    passes = passes if passes is not None else settings["passes"]
    names = names if names is not None else settings["names"]
    datasets = paper_datasets(seed=seed, names=names)

    rows = []
    data = []
    for name, dataset in datasets.items():
        def make_sampler(index: int, _dataset=dataset) -> RobustL0SamplerIW:
            return RobustL0SamplerIW(
                _dataset.alpha,
                _dataset.dim,
                seed=seed + index,
                expected_stream_length=_dataset.num_points,
            )

        result = measure_processing_time(
            make_sampler,
            shuffled_stream_factory(dataset, base_seed=seed),
            passes=passes,
        )
        rows.append(
            [
                name,
                dataset.dim,
                dataset.num_points,
                round(result.micros_per_item, 2),
                round(result.total_seconds, 3),
            ]
        )
        data.append(
            {
                "dataset": name,
                "dim": dataset.dim,
                "points": dataset.num_points,
                "micros_per_item": result.micros_per_item,
            }
        )

    text = format_table(
        ["dataset", "dim", "points", "pTime (us/item)", "total (s)"],
        rows,
        title=(
            "Figure 13: per-item processing time of Algorithm 1\n"
            "(paper: 10-35 us/item in C++; expect ~100x here in pure "
            "Python - compare the shape across datasets, not absolutes)\n"
        ),
    )
    return ExperimentOutput(
        experiment_id="fig13",
        title="Processing time per item",
        text=text,
        data={"ptime": data},
    )
