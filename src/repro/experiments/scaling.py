"""Theorem 2.4: O(log m) space and time in the infinite window.

Streams of growing length (fixed group structure density) should show
peak space growing like log m - i.e. roughly constant *per doubling* -
and per-item time staying flat.  Also reports the final sample rate
denominator R, which should track n / threshold.
"""

from __future__ import annotations

import math
import random
import time

from repro.core.infinite_window import RobustL0SamplerIW
from repro.datasets.near_duplicates import add_near_duplicates
from repro.datasets.synthetic import random_points
from repro.experiments.registry import ExperimentOutput, format_table
from repro.streams.point import StreamPoint

PROFILES = {
    "quick": {"group_counts": [50, 100, 200], "dim": 5},
    "standard": {"group_counts": [50, 100, 200, 400, 800], "dim": 5},
    "full": {"group_counts": [100, 200, 400, 800, 1600, 3200], "dim": 5},
}


def _build_stream(num_groups: int, dim: int, seed: int):
    rng = random.Random(seed)
    base = random_points(num_groups, dim, rng=rng)
    counts = [rng.randint(1, 20) for _ in range(num_groups)]
    vectors, labels, alpha = add_near_duplicates(base, rng=rng, counts=counts)
    order = list(range(len(vectors)))
    rng.shuffle(order)
    points = [StreamPoint(vectors[j], i) for i, j in enumerate(order)]
    return points, alpha


def run(
    *,
    profile: str = "standard",
    seed: int = 0,
    group_counts: list[int] | None = None,
    dim: int | None = None,
) -> ExperimentOutput:
    """Check the Theorem 2.4 space/time scaling empirically."""
    settings = PROFILES[profile]
    group_counts = group_counts if group_counts is not None else settings["group_counts"]
    dim = dim if dim is not None else settings["dim"]

    rows = []
    data = []
    for n in group_counts:
        points, alpha = _build_stream(n, dim, seed)
        m = len(points)
        sampler = RobustL0SamplerIW(
            alpha, dim, seed=seed, expected_stream_length=m
        )
        start = time.perf_counter()
        for p in points:
            sampler.insert(p)
        elapsed = time.perf_counter() - start
        words_per_logm = sampler.peak_space_words / math.log2(max(m, 2))
        rows.append(
            [
                n,
                m,
                sampler.peak_space_words,
                round(words_per_logm, 1),
                sampler.rate_denominator,
                round(elapsed / m * 1e6, 2),
            ]
        )
        data.append(
            {
                "groups": n,
                "stream_length": m,
                "peak_words": sampler.peak_space_words,
                "words_per_log_m": words_per_logm,
                "rate_denominator": sampler.rate_denominator,
                "micros_per_item": elapsed / m * 1e6,
            }
        )

    text = format_table(
        [
            "groups",
            "m",
            "peak words",
            "words/log2(m)",
            "final R",
            "us/item",
        ],
        rows,
        title=(
            "Theorem 2.4: space and time scaling of Algorithm 1\n"
            "(words/log2(m) roughly flat = O(log m) words; us/item flat "
            "= O(log m) amortised time)\n"
        ),
    )
    return ExperimentOutput(
        experiment_id="thm24",
        title="Infinite-window scaling",
        text=text,
        data={"scaling": data},
    )
