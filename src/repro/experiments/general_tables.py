"""Theorem 3.1: general datasets (no natural partition).

On data violating well-separatedness (an overlapping chain of blobs) the
sampler must return, for every point p, some point of Ball(p, alpha) with
probability Theta(1/F0).  The experiment measures, for every point of the
dataset, the empirical probability that the returned sample lands within
alpha of it, normalised by 1/n_opt; Theorem 3.1 predicts these normalised
probabilities are bounded between positive constants (they are NOT
expected to be exactly 1 - the guarantee is uniformity up to constants).
"""

from __future__ import annotations

import random

from repro.core.infinite_window import RobustL0SamplerIW
from repro.datasets.synthetic import overlapping_chain
from repro.experiments.registry import ExperimentOutput, format_table
from repro.geometry.distance import within_distance
from repro.partition.greedy import greedy_partition
from repro.partition.min_cardinality import min_cardinality_size
from repro.streams.point import StreamPoint

PROFILES = {
    "quick": {"runs": 400, "num_links": 12},
    "standard": {"runs": 2000, "num_links": 20},
    "full": {"runs": 20000, "num_links": 30},
}


def run(
    *,
    profile: str = "standard",
    seed: int = 0,
    runs: int | None = None,
    num_links: int | None = None,
    dim: int = 2,
) -> ExperimentOutput:
    """Check the Theorem 3.1 guarantee (Equation 2) empirically."""
    settings = PROFILES[profile]
    runs = runs if runs is not None else settings["runs"]
    num_links = num_links if num_links is not None else settings["num_links"]

    vectors, alpha = overlapping_chain(num_links, dim, rng=random.Random(seed))
    n_opt = min_cardinality_size(vectors, alpha)
    n_gdy = len(greedy_partition(vectors, alpha))

    # Ball-hit counts per dataset point.
    hits = [0] * len(vectors)
    query_rng = random.Random(seed ^ 0xBA11)
    for r in range(runs):
        rng = random.Random(seed * 31337 + r)
        order = list(range(len(vectors)))
        rng.shuffle(order)
        sampler = RobustL0SamplerIW(
            alpha, dim, seed=seed * 131 + r, expected_stream_length=len(vectors)
        )
        for i, j in enumerate(order):
            sampler.insert(StreamPoint(vectors[j], i))
        sample = sampler.sample(query_rng).vector
        for i, v in enumerate(vectors):
            if within_distance(sample, v, alpha):
                hits[i] += 1

    normalised = [h / runs * n_opt for h in hits]
    rows = [
        [
            len(vectors),
            n_opt,
            n_gdy,
            runs,
            round(min(normalised), 3),
            round(sum(normalised) / len(normalised), 3),
            round(max(normalised), 3),
        ]
    ]
    text = format_table(
        [
            "points",
            "n_opt",
            "n_greedy",
            "runs",
            "min nPr",
            "mean nPr",
            "max nPr",
        ],
        rows,
        title=(
            "Theorem 3.1: general datasets - normalised ball-hit "
            "probabilities\n(nPr = Pr[sample in Ball(p, alpha)] * n_opt; "
            "the guarantee is Theta(1): bounded away from 0 and "
            "infinity)\n"
        ),
    )
    return ExperimentOutput(
        experiment_id="thm31",
        title="General datasets",
        text=text,
        data={
            "general": [
                {
                    "points": len(vectors),
                    "n_opt": n_opt,
                    "n_greedy": n_gdy,
                    "runs": runs,
                    "min_normalised_probability": min(normalised),
                    "mean_normalised_probability": sum(normalised) / len(normalised),
                    "max_normalised_probability": max(normalised),
                }
            ]
        },
    )
