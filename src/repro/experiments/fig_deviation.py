"""Figure 15: maxDevNm and stdDevNm per dataset.

The paper's acceptance bar: "in all datasets, stdDevNm is no larger than
0.1 and maxDevNm is no larger than 0.2" at 200k-500k runs.  Both metrics
scale as 1/sqrt(runs) for an unbiased sampler, so at reduced run counts
the meaningful reproduction is the *ratio to the noise floor* (about 1.0
for a uniform sampler) plus the chi-square verdict; the paper-scale bar is
recovered under ``profile="full"``.
"""

from __future__ import annotations

from repro.datasets.catalog import paper_datasets
from repro.experiments.registry import ExperimentOutput, format_table
from repro.metrics.trials import sampling_distribution

PROFILES = {
    "quick": {"runs": 400, "names": ["Seeds", "Yacht"]},
    "standard": {"runs": 2000, "names": None},
    "full": {"runs": 500_000, "names": None},
}


def run(
    *,
    profile: str = "standard",
    seed: int = 0,
    runs: int | None = None,
    names: list[str] | None = None,
) -> ExperimentOutput:
    """Reproduce Figure 15 (deviation metrics across all datasets)."""
    settings = PROFILES[profile]
    runs = runs if runs is not None else settings["runs"]
    names = names if names is not None else settings["names"]
    datasets = paper_datasets(seed=seed, names=names)

    rows = []
    data = []
    for name, dataset in datasets.items():
        report = sampling_distribution(dataset, runs=runs, seed=seed).report
        # What the measured stdDevNm would extrapolate to at the paper's
        # run count, assuming the 1/sqrt(runs) scaling of an unbiased
        # sampler (valid because the chi-square test keeps us honest).
        paper_runs = 200_000 if name.startswith("Rand") else 500_000
        projected = report.std_dev_nm * (runs / paper_runs) ** 0.5
        rows.append(
            [
                name,
                runs,
                round(report.std_dev_nm, 4),
                round(report.max_dev_nm, 4),
                round(report.excess_over_floor, 3),
                round(projected, 4),
                round(report.p_value, 4),
            ]
        )
        data.append(
            {
                "dataset": name,
                "runs": runs,
                "std_dev_nm": report.std_dev_nm,
                "max_dev_nm": report.max_dev_nm,
                "excess_over_floor": report.excess_over_floor,
                "projected_paper_scale_std": projected,
                "p_value": report.p_value,
            }
        )

    text = format_table(
        [
            "dataset",
            "runs",
            "stdDevNm",
            "maxDevNm",
            "x-floor",
            "stdDevNm@paper-runs",
            "chi2 p",
        ],
        rows,
        title=(
            "Figure 15: deviation of the empirical sampling distribution\n"
            "(paper bar: stdDevNm <= 0.1, maxDevNm <= 0.2 at 200k-500k "
            "runs; 'x-floor' ~ 1.0 and the projected column <= 0.1 "
            "reproduce it at reduced runs)\n"
        ),
    )
    return ExperimentOutput(
        experiment_id="fig15",
        title="Deviation metrics",
        text=text,
        data={"deviation": data},
    )
