"""Experiment registry and plain-text table rendering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence


@dataclass
class ExperimentOutput:
    """One experiment's result: a title, tables, and raw row data.

    ``data`` maps a table name to its rows (list of dicts) so benchmarks
    and tests can assert on values without parsing the rendered text.
    """

    experiment_id: str
    title: str
    text: str
    data: dict[str, list[dict]] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], *, title: str = ""
) -> str:
    """Render an aligned ASCII table.

    >>> print(format_table(["a", "b"], [[1, 2.5]]))
    a  b
    -  ---
    1  2.5
    """

    def fmt(value: object) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            magnitude = abs(value)
            if magnitude >= 1000 or magnitude < 0.001:
                return f"{value:.3e}"
            return f"{value:.4g}"
        return str(value)

    cells = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip())
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in cells:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))).rstrip())
    return "\n".join(lines)


def _load(experiment_id: str) -> Callable[..., ExperimentOutput]:
    # Imported lazily so `python -m repro.experiments --list` stays instant
    # and circular imports are impossible.
    from repro.experiments import (
        ablations,
        f0_tables,
        fig_deviation,
        fig_distributions,
        fig_space,
        fig_time,
        general_tables,
        highdim_tables,
        scaling,
        sliding_tables,
    )

    table = {
        "fig5_12": fig_distributions.run,
        "fig13": fig_time.run,
        "fig14": fig_space.run,
        "fig15": fig_deviation.run,
        "thm24": scaling.run,
        "thm27": sliding_tables.run,
        "thm31": general_tables.run,
        "thm41": highdim_tables.run,
        "sec5": f0_tables.run,
        "ablations": ablations.run,
    }
    return table[experiment_id]


#: Experiment ids in presentation order, with one-line descriptions.
EXPERIMENTS: dict[str, str] = {
    "fig5_12": "Figures 5-12: empirical sampling distributions (8 datasets)",
    "fig13": "Figure 13: processing time per item (pTime)",
    "fig14": "Figure 14: peak space usage (pSpace)",
    "fig15": "Figure 15: maxDevNm and stdDevNm per dataset",
    "thm24": "Theorem 2.4: O(log m) space/time scaling, infinite window",
    "thm27": "Theorem 2.7: sliding-window uniformity and space",
    "thm31": "Theorem 3.1: general (non-well-separated) datasets",
    "thm41": "Theorem 4.1: high-dimensional sparse datasets (+ JL)",
    "sec5": "Section 5: robust F0 estimation, infinite + sliding windows",
    "ablations": "Ablations: adj(p) pruning, kappa0, hash family, naive bias",
}


def run_experiment(experiment_id: str, **options) -> ExperimentOutput:
    """Run one experiment by id; options are forwarded to its ``run``."""
    if experiment_id not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; choose from {sorted(EXPERIMENTS)}"
        )
    return _load(experiment_id)(**options)
