"""Figures 5-12: empirical sampling distribution per dataset.

The paper visualises, for each of the eight datasets, how often each group
is returned over 200k-500k runs, observing distributions "very close to
uniform".  This reproduction runs a configurable number of passes (the
paper-scale counts are available via ``profile="full"`` but take hours in
pure Python) and reports, per dataset:

* stdDevNm and maxDevNm (the Figure 15 metrics derived from these runs),
* the multinomial noise floor - the stdDevNm a *perfectly uniform*
  sampler would show at this run count, and
* a chi-square p-value, which is calibrated at any run count.

"Reproduced" means: stdDevNm is statistically indistinguishable from the
noise floor and the chi-square test does not reject uniformity.
"""

from __future__ import annotations

from repro.datasets.catalog import paper_datasets
from repro.experiments.registry import ExperimentOutput, format_table
from repro.metrics.trials import sampling_distribution

#: Run counts per profile.  The paper uses 200k (Rand) / 500k (UCI) runs;
#: "quick" keeps the statistical tests meaningful while finishing fast.
PROFILES = {
    "quick": {"runs": 400, "names": ["Seeds", "Yacht"]},
    "standard": {"runs": 2000, "names": None},
    "full": {"runs": 200_000, "names": None},
}


def run(
    *,
    profile: str = "standard",
    seed: int = 0,
    runs: int | None = None,
    names: list[str] | None = None,
) -> ExperimentOutput:
    """Reproduce Figures 5-12 (empirical sampling distributions)."""
    settings = PROFILES[profile]
    runs = runs if runs is not None else settings["runs"]
    names = names if names is not None else settings["names"]
    datasets = paper_datasets(seed=seed, names=names)

    rows = []
    data = []
    for name, dataset in datasets.items():
        result = sampling_distribution(dataset, runs=runs, seed=seed)
        report = result.report
        rows.append(
            [
                name,
                dataset.num_groups,
                dataset.num_points,
                runs,
                round(report.std_dev_nm, 4),
                round(report.noise_floor, 4),
                round(report.max_dev_nm, 4),
                round(report.p_value, 4),
                "uniform" if report.is_consistent_with_uniform() else "BIASED",
            ]
        )
        data.append(
            {
                "dataset": name,
                "groups": dataset.num_groups,
                "points": dataset.num_points,
                "runs": runs,
                "std_dev_nm": report.std_dev_nm,
                "noise_floor": report.noise_floor,
                "max_dev_nm": report.max_dev_nm,
                "p_value": report.p_value,
                "counts": list(result.counts),
            }
        )

    text = format_table(
        [
            "dataset",
            "groups",
            "points",
            "runs",
            "stdDevNm",
            "noiseFloor",
            "maxDevNm",
            "chi2 p",
            "verdict",
        ],
        rows,
        title=(
            "Figures 5-12: empirical sampling distribution of Algorithm 1\n"
            "(stdDevNm ~ noiseFloor and p >= 0.01 reproduce the paper's "
            "'very close to uniform')\n"
        ),
    )
    return ExperimentOutput(
        experiment_id="fig5_12",
        title="Empirical sampling distributions",
        text=text,
        data={"distributions": data},
    )
