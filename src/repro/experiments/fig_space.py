"""Figure 14: peak space usage (pSpace).

The paper reports peak word counts per dataset and observes the algorithm
is "very space-efficient and the dimension of the data points will
typically affect the space usage".  This reproduction reports the robust
sampler's peak words next to the Omega(n) exact baseline, showing both the
dimension effect and the gap to exhaustive storage.
"""

from __future__ import annotations

from repro.baselines.exact import ExactDistinctSampler
from repro.core.infinite_window import RobustL0SamplerIW
from repro.datasets.catalog import paper_datasets
from repro.experiments.registry import ExperimentOutput, format_table
from repro.metrics.space import dataset_stream_factory, measure_peak_space

PROFILES = {
    "quick": {"passes": 1, "names": ["Seeds", "Yacht"]},
    "standard": {"passes": 3, "names": None},
    "full": {"passes": 100, "names": None},
}


def run(
    *,
    profile: str = "standard",
    seed: int = 0,
    passes: int | None = None,
    names: list[str] | None = None,
) -> ExperimentOutput:
    """Reproduce Figure 14 (peak space usage in words)."""
    settings = PROFILES[profile]
    passes = passes if passes is not None else settings["passes"]
    names = names if names is not None else settings["names"]
    datasets = paper_datasets(seed=seed, names=names)

    rows = []
    data = []
    for name, dataset in datasets.items():
        def make_robust(index: int, _dataset=dataset) -> RobustL0SamplerIW:
            return RobustL0SamplerIW(
                _dataset.alpha,
                _dataset.dim,
                seed=seed + index,
                expected_stream_length=_dataset.num_points,
            )

        def make_exact(index: int, _dataset=dataset) -> ExactDistinctSampler:
            return ExactDistinctSampler(
                _dataset.alpha, _dataset.dim, seed=seed + index
            )

        streams = dataset_stream_factory(dataset, base_seed=seed)
        robust = measure_peak_space(make_robust, streams, passes=passes)
        exact = measure_peak_space(make_exact, streams, passes=1)
        rows.append(
            [
                name,
                dataset.dim,
                dataset.num_groups,
                round(robust.mean_peak_words, 1),
                exact.max_peak_words,
                round(exact.max_peak_words / robust.mean_peak_words, 1),
            ]
        )
        data.append(
            {
                "dataset": name,
                "dim": dataset.dim,
                "groups": dataset.num_groups,
                "robust_peak_words": robust.mean_peak_words,
                "exact_peak_words": exact.max_peak_words,
            }
        )

    text = format_table(
        [
            "dataset",
            "dim",
            "groups",
            "robust pSpace (words)",
            "exact pSpace (words)",
            "saving x",
        ],
        rows,
        title=(
            "Figure 14: peak space of Algorithm 1 vs the Omega(n) exact "
            "baseline\n(space grows with dimension; robust sampler stays "
            "polylogarithmic in the stream)\n"
        ),
    )
    return ExperimentOutput(
        experiment_id="fig14",
        title="Peak space usage",
        text=text,
        data={"pspace": data},
    )
