"""Experiment harness regenerating every figure of the paper's Section 6.

Each module exposes a ``run(...) -> ExperimentOutput`` function; the
registry maps experiment ids (``fig5``-``fig15``, ``thm24``, ``thm27``,
``thm31``, ``thm41``, ``sec5``, ``ablations``) to those functions.  Run
from the command line::

    python -m repro.experiments fig13 --profile quick
    python -m repro.experiments all  --profile quick

Every experiment accepts a ``profile`` ("quick" for CI-scale runs,
"full" for paper-scale runs) and a ``seed``.  Outputs are plain-text
tables whose rows mirror what the paper's figures plot; EXPERIMENTS.md
records the measured values against the paper's.
"""

from repro.experiments.registry import (
    EXPERIMENTS,
    ExperimentOutput,
    format_table,
    run_experiment,
)

__all__ = ["EXPERIMENTS", "run_experiment", "ExperimentOutput", "format_table"]
