"""Theorem 2.7: sliding-window sampler - uniformity and space.

Protocol: a well-separated stream whose groups interleave, a window
covering a subset of groups, and many independent runs of Algorithm 3.
The sampled group must always be one whose last point is inside the
window (correctness), with empirical frequencies uniform over those
groups (Theorem 2.7), in both the sequence-based and time-based models.
Space is compared across window sizes (O(log w log m) words).
"""

from __future__ import annotations

import random

from repro.core.fixed_rate import FixedRateSlidingSampler
from repro.core.sliding_window import RobustL0SamplerSW
from repro.datasets.near_duplicates import add_near_duplicates
from repro.datasets.synthetic import random_points
from repro.experiments.registry import ExperimentOutput, format_table
from repro.metrics.accuracy import deviation_report
from repro.streams.point import StreamPoint
from repro.streams.windows import SequenceWindow, TimeWindow

PROFILES = {
    "quick": {"runs": 300, "num_groups": 40, "window": 120},
    "standard": {"runs": 1500, "num_groups": 60, "window": 200},
    "full": {"runs": 20000, "num_groups": 100, "window": 400},
}


def _noisy_stream(num_groups: int, dim: int, seed: int, *, copies: int = 5):
    """A shuffled noisy stream plus the ground-truth label per index."""
    rng = random.Random(seed)
    base = random_points(num_groups, dim, rng=rng)
    counts = [copies] * num_groups
    vectors, labels, alpha = add_near_duplicates(base, rng=rng, counts=counts)
    order = list(range(len(vectors)))
    rng.shuffle(order)
    points = [StreamPoint(vectors[j], i) for i, j in enumerate(order)]
    label_of = {i: labels[j] for i, j in enumerate(order)}
    return points, label_of, alpha


def _window_groups(points, label_of, alpha, dim, window, seed):
    """Ground truth: groups whose last point lies in the final window.

    Uses a rate-1 Algorithm 2 instance, which tracks *every* group
    exactly.
    """
    from repro.core.base import SamplerConfig

    config = SamplerConfig.create(alpha, dim, seed=seed)
    tracker = FixedRateSlidingSampler(config, 1, window)
    for p in points:
        tracker.insert(p)
    tracker.evict(points[-1])
    return {label_of[r.last.index] for r in tracker.accepted_records()}


def run(
    *,
    profile: str = "standard",
    seed: int = 0,
    runs: int | None = None,
    num_groups: int | None = None,
    window: int | None = None,
    dim: int = 5,
) -> ExperimentOutput:
    """Check Theorem 2.7: uniform samples from the sliding window."""
    settings = PROFILES[profile]
    runs = runs if runs is not None else settings["runs"]
    num_groups = num_groups if num_groups is not None else settings["num_groups"]
    window_size = window if window is not None else settings["window"]

    points, label_of, alpha = _noisy_stream(num_groups, dim, seed)
    uniformity_rows = []
    data_rows = []

    window_specs = [
        ("sequence", SequenceWindow(window_size), None),
        ("time", TimeWindow(float(window_size)), len(points)),
    ]
    for model, spec, capacity in window_specs:
        truth = _window_groups(points, label_of, alpha, dim, spec, seed)
        counts: dict[int, int] = {g: 0 for g in truth}
        violations = 0
        query_rng = random.Random(seed ^ 0xFACE)
        for r in range(runs):
            sampler = RobustL0SamplerSW(
                alpha,
                dim,
                spec,
                window_capacity=capacity,
                seed=seed * 7919 + r,
                expected_stream_length=len(points),
            )
            for p in points:
                sampler.insert(p)
            sample = sampler.sample(query_rng)
            group = label_of[sample.index]
            if group in counts:
                counts[group] += 1
            else:
                violations += 1
        report = deviation_report(
            {i: c for i, (g, c) in enumerate(sorted(counts.items()))},
            num_groups=len(truth),
        )
        uniformity_rows.append(
            [
                model,
                len(truth),
                runs,
                violations,
                round(report.std_dev_nm, 4),
                round(report.noise_floor, 4),
                round(report.p_value, 4),
                "uniform" if report.is_consistent_with_uniform() else "BIASED",
            ]
        )
        data_rows.append(
            {
                "model": model,
                "window_groups": len(truth),
                "runs": runs,
                "out_of_window_samples": violations,
                "std_dev_nm": report.std_dev_nm,
                "noise_floor": report.noise_floor,
                "p_value": report.p_value,
            }
        )

    # Space growth with the window size.
    space_rows = []
    space_data = []
    for w in (window_size // 2, window_size, window_size * 2):
        sampler = RobustL0SamplerSW(
            alpha,
            dim,
            SequenceWindow(w),
            seed=seed,
            expected_stream_length=len(points),
        )
        for p in points:
            sampler.insert(p)
        space_rows.append([w, sampler.num_levels, sampler.peak_space_words])
        space_data.append(
            {
                "window": w,
                "levels": sampler.num_levels,
                "peak_words": sampler.peak_space_words,
            }
        )

    text = "\n\n".join(
        [
            format_table(
                [
                    "window model",
                    "groups in window",
                    "runs",
                    "out-of-window",
                    "stdDevNm",
                    "noiseFloor",
                    "chi2 p",
                    "verdict",
                ],
                uniformity_rows,
                title=(
                    "Theorem 2.7: sliding-window sampling uniformity\n"
                    "(out-of-window must be 0; stdDevNm ~ noiseFloor)\n"
                ),
            ),
            format_table(
                ["window w", "levels", "peak words"],
                space_rows,
                title="Space vs window size (O(log w log m) words)\n",
            ),
        ]
    )
    return ExperimentOutput(
        experiment_id="thm27",
        title="Sliding-window uniformity and space",
        text=text,
        data={"uniformity": data_rows, "space": space_data},
    )
