"""Section 5: robust F0 estimation.

* Infinite window: the robust estimator (accept threshold kappa_B/eps^2,
  estimate |S_acc| * R, median of copies) against the true group count and
  against noiseless sketches fed with oracle group identities (BJKST,
  HyperLogLog) and fed with raw noisy points (showing why noiseless
  sketches fail on near-duplicates).
* Sliding window: the FM-style level estimator against the exact number
  of groups in the window.
"""

from __future__ import annotations

import random

from repro.baselines.bjkst import BJKSTSketch
from repro.baselines.hyperloglog import HyperLogLog
from repro.core.f0_infinite import RobustF0EstimatorIW
from repro.core.f0_sliding import RobustF0EstimatorSW
from repro.core.fixed_rate import FixedRateSlidingSampler
from repro.datasets.near_duplicates import add_near_duplicates
from repro.datasets.synthetic import random_points
from repro.experiments.registry import ExperimentOutput, format_table
from repro.streams.point import StreamPoint
from repro.streams.windows import SequenceWindow

PROFILES = {
    "quick": {"group_counts": [100, 300], "epsilon": 0.3, "copies": 5},
    "standard": {"group_counts": [100, 300, 1000], "epsilon": 0.2, "copies": 9},
    "full": {"group_counts": [100, 1000, 10000], "epsilon": 0.1, "copies": 15},
}


def _noisy_stream(num_groups: int, dim: int, seed: int, copies: int = 8):
    rng = random.Random(seed)
    base = random_points(num_groups, dim, rng=rng)
    counts = [rng.randint(1, copies) for _ in range(num_groups)]
    vectors, labels, alpha = add_near_duplicates(base, rng=rng, counts=counts)
    order = list(range(len(vectors)))
    rng.shuffle(order)
    points = [StreamPoint(vectors[j], i) for i, j in enumerate(order)]
    stream_labels = [labels[j] for j in order]
    return points, stream_labels, alpha


def run(
    *,
    profile: str = "standard",
    seed: int = 0,
    group_counts: list[int] | None = None,
    epsilon: float | None = None,
    copies: int | None = None,
    dim: int = 5,
) -> ExperimentOutput:
    """Reproduce the Section 5 F0 estimators."""
    settings = PROFILES[profile]
    group_counts = group_counts if group_counts is not None else settings["group_counts"]
    epsilon = epsilon if epsilon is not None else settings["epsilon"]
    copies = copies if copies is not None else settings["copies"]

    iw_rows = []
    iw_data = []
    for n in group_counts:
        points, labels, alpha = _noisy_stream(n, dim, seed)
        robust = RobustF0EstimatorIW(
            alpha, dim, epsilon=epsilon, copies=copies, seed=seed
        )
        oracle = BJKSTSketch(epsilon=epsilon, seed=seed)
        hll_oracle = HyperLogLog(bucket_bits=10, seed=seed)
        raw = BJKSTSketch(epsilon=epsilon, seed=seed)
        for p, label in zip(points, labels):
            robust.insert(p)
            oracle.insert(label)  # oracle: exact group identity
            hll_oracle.insert(label)
            raw.insert(p.vector)  # broken: raw noisy coordinates
        estimate = robust.estimate()
        iw_rows.append(
            [
                n,
                len(points),
                round(estimate, 1),
                round(abs(estimate - n) / n, 3),
                round(oracle.estimate(), 1),
                round(hll_oracle.estimate(), 1),
                round(raw.estimate(), 1),
            ]
        )
        iw_data.append(
            {
                "groups": n,
                "points": len(points),
                "robust_estimate": estimate,
                "robust_rel_error": abs(estimate - n) / n,
                "bjkst_oracle": oracle.estimate(),
                "hll_oracle": hll_oracle.estimate(),
                "bjkst_on_raw_points": raw.estimate(),
            }
        )

    # Sliding window.
    sw_rows = []
    sw_data = []
    n = group_counts[0]
    points, labels, alpha = _noisy_stream(n, dim, seed + 1)
    for w in (len(points) // 4, len(points) // 2):
        window = SequenceWindow(w)
        estimator = RobustF0EstimatorSW(
            alpha,
            dim,
            window,
            copies=max(8, copies),
            seed=seed,
        )
        from repro.core.base import SamplerConfig

        tracker = FixedRateSlidingSampler(
            SamplerConfig.create(alpha, dim, seed=seed), 1, window
        )
        for p in points:
            estimator.insert(p)
            tracker.insert(p)
        tracker.evict(points[-1])
        truth = tracker.accepted_count
        estimate = estimator.estimate()
        sw_rows.append(
            [
                w,
                truth,
                round(estimate, 1),
                round(abs(estimate - truth) / truth, 3) if truth else "-",
            ]
        )
        sw_data.append(
            {
                "window": w,
                "true_window_groups": truth,
                "estimate": estimate,
                "rel_error": abs(estimate - truth) / truth if truth else None,
            }
        )

    text = "\n\n".join(
        [
            format_table(
                [
                    "groups",
                    "points",
                    "robust est",
                    "rel err",
                    "BJKST(oracle)",
                    "HLL(oracle)",
                    "BJKST(raw pts)",
                ],
                iw_rows,
                title=(
                    "Section 5 (infinite window): robust F0 vs noiseless "
                    "sketches\n(robust est tracks 'groups'; BJKST on raw "
                    "points counts every near-duplicate - the failure the "
                    "paper motivates)\n"
                ),
            ),
            format_table(
                ["window w", "true groups", "estimate", "rel err"],
                sw_rows,
                title=(
                    "Section 5 (sliding window): FM-style level estimator\n"
                    "(order-of-magnitude estimator, as in FM sketches)\n"
                ),
            ),
        ]
    )
    return ExperimentOutput(
        experiment_id="sec5",
        title="Robust F0 estimation",
        text=text,
        data={"infinite": iw_data, "sliding": sw_data},
    )
